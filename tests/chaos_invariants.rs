//! Chaos-harness integration tests:
//!
//! * a proptest sweep feeding random seeds through the full scenario
//!   generator + executor + invariant stack;
//! * replay of the regression corpus under `tests/corpus/`;
//! * determinism — the same seed must yield a byte-identical trace;
//! * the broken-kernel canary — with forwarding addresses disabled (the
//!   paper's rejected design, §4) the harness must find a violating seed
//!   quickly and shrink it to a handful of schedule events.

use demos_chaos::{run, run_full, shrink, RunConfig, Scenario};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated scenario upholds every cluster invariant: exactly-once
    /// delivery, acyclic forwarding chains, process conservation, transport
    /// counter sanity, link convergence at quiescence, and workload counter
    /// reconciliation.
    #[test]
    fn random_scenarios_uphold_invariants(seed in 0u64..1_000_000) {
        let sc = Scenario::generate(seed);
        let report = run(&sc, &RunConfig::default());
        prop_assert!(
            report.passed(),
            "seed {} violated: {}",
            seed,
            report.violation.unwrap()
        );
    }
}

/// Every scenario in `tests/corpus/` replays clean. Drop any shrunk repro
/// (`target/chaos/repro-*.seed`) into that directory to pin a regression.
#[test]
fn corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "seed"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "corpus holds the seed regressions");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let sc = Scenario::from_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = run(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "{}: {}",
            path.display(),
            report.violation.unwrap()
        );
    }
}

/// Two executions of the same seed produce byte-identical JSON-lines
/// traces — the property that makes every corpus file and every shrunk
/// repro replayable forever. This is the runtime half of the D001/D002
/// lints (`demos-lint`): the static pass bans the nondeterminism sources,
/// this test catches any that slip through a new code path. Exercised on
/// both the plain generator and the crash-heavy recovery generator, whose
/// heartbeat/checkpoint/re-homing machinery is the newest code.
#[test]
fn same_seed_is_byte_identical() {
    for sc in [Scenario::generate(2026), Scenario::generate_recovery(2026)] {
        let (ra, ta) = run_full(&sc, &RunConfig::default());
        let (rb, tb) = run_full(&sc, &RunConfig::default());
        assert_eq!(ra.fingerprint, rb.fingerprint, "trace fingerprints match");
        assert!(ta == tb, "JSON-lines exports are byte-identical");
        assert!(!ta.is_empty(), "the run produced a trace");
        assert_eq!(ra.violation, rb.violation);
    }
}

/// With forwarding disabled the kernel is the paper's rejected design:
/// messages chasing a migrated process bounce. The sweep must catch it
/// within 200 seeds and the shrinker must cut the schedule to at most 10
/// events while the violation still reproduces.
#[test]
fn broken_forwarding_caught_and_shrunk() {
    let cfg = RunConfig {
        disable_forwarding: true,
        ..RunConfig::default()
    };
    let mut caught = None;
    for seed in 0..200 {
        let sc = Scenario::generate(seed);
        if let Some(v) = run(&sc, &cfg).violation {
            caught = Some((seed, sc, v));
            break;
        }
    }
    let (seed, sc, v) = caught.expect("broken kernel caught within 200 seeds");
    let res = shrink(&sc, &cfg, &v, 200);
    assert!(
        res.scenario.events.len() <= 10,
        "seed {seed} shrunk to {} events",
        res.scenario.events.len()
    );
    let again = run(&res.scenario, &cfg).violation;
    assert!(again.is_some(), "shrunk repro still violates");
    // And the healthy kernel passes the very same shrunk scenario.
    assert!(
        run(&res.scenario, &RunConfig::default()).passed(),
        "violation is the ablation's fault, not the scenario's"
    );
}

/// Crash-heavy recovery scenarios — permanent machine deaths with the
/// heartbeat detector and checkpoint re-homing active — pass the full
/// recovery-aware invariant stack deterministically.
#[test]
fn recovery_scenarios_uphold_invariants() {
    for seed in 0..200 {
        let sc = Scenario::generate_recovery(seed);
        let report = run(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "recovery seed {seed} violated: {}",
            report.violation.unwrap()
        );
    }
}

/// With the recovery machinery ablated (no detector, no checkpoints, no
/// re-homing) the same crash-heavy scenarios must be caught as a vanished
/// process within a handful of seeds, and the shrinker must reduce the
/// schedule while the healthy stack still passes the shrunk scenario.
#[test]
fn recovery_disabled_ablation_is_caught_and_shrunk() {
    let cfg = RunConfig {
        disable_recovery: true,
        ..RunConfig::default()
    };
    let mut caught = None;
    for seed in 0..50 {
        let sc = Scenario::generate_recovery(seed);
        if let Some(v) = run(&sc, &cfg).violation {
            caught = Some((seed, sc, v));
            break;
        }
    }
    let (seed, sc, v) = caught.expect("recovery ablation caught within 50 seeds");
    assert!(
        matches!(v, demos_chaos::Violation::ProcessVanished { .. }),
        "seed {seed}: the orphaned process is the symptom: {v}"
    );
    let res = shrink(&sc, &cfg, &v, 200);
    assert!(
        res.scenario.events.len() <= 5,
        "seed {seed} shrunk to {} events",
        res.scenario.events.len()
    );
    assert!(
        run(&res.scenario, &cfg).violation.is_some(),
        "shrunk repro still violates"
    );
    assert!(
        run(&res.scenario, &RunConfig::default()).passed(),
        "the recovery stack survives the very same shrunk scenario"
    );
}
