//! Chaos-harness integration tests:
//!
//! * a proptest sweep feeding random seeds through the full scenario
//!   generator + executor + invariant stack;
//! * replay of the regression corpus under `tests/corpus/`;
//! * determinism — the same seed must yield a byte-identical trace;
//! * the broken-kernel canary — with forwarding addresses disabled (the
//!   paper's rejected design, §4) the harness must find a violating seed
//!   quickly and shrink it to a handful of schedule events.

use demos_chaos::{
    campaign, run, run_full, run_with_coverage, shrink, CampaignConfig, Generator, RunConfig,
    Scenario,
};
use demos_obs::features::{class, feature, unpack, FeatureSet};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated scenario upholds every cluster invariant: exactly-once
    /// delivery, acyclic forwarding chains, process conservation, transport
    /// counter sanity, link convergence at quiescence, and workload counter
    /// reconciliation.
    #[test]
    fn random_scenarios_uphold_invariants(seed in 0u64..1_000_000) {
        let sc = Scenario::generate(seed);
        let report = run(&sc, &RunConfig::default());
        prop_assert!(
            report.passed(),
            "seed {} violated: {}",
            seed,
            report.violation.unwrap()
        );
    }
}

/// Every scenario in `tests/corpus/` replays clean. Drop any shrunk repro
/// (`target/chaos/repro-*.seed`) into that directory to pin a regression.
#[test]
fn corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "seed"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "corpus holds the seed regressions");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let sc = Scenario::from_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = run(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "{}: {}",
            path.display(),
            report.violation.unwrap()
        );
    }
}

/// Two executions of the same seed produce byte-identical JSON-lines
/// traces — the property that makes every corpus file and every shrunk
/// repro replayable forever. This is the runtime half of the D001/D002
/// lints (`demos-lint`): the static pass bans the nondeterminism sources,
/// this test catches any that slip through a new code path. Exercised on
/// both the plain generator and the crash-heavy recovery generator, whose
/// heartbeat/checkpoint/re-homing machinery is the newest code.
#[test]
fn same_seed_is_byte_identical() {
    for sc in [Scenario::generate(2026), Scenario::generate_recovery(2026)] {
        let (ra, ta) = run_full(&sc, &RunConfig::default());
        let (rb, tb) = run_full(&sc, &RunConfig::default());
        assert_eq!(ra.fingerprint, rb.fingerprint, "trace fingerprints match");
        assert!(ta == tb, "JSON-lines exports are byte-identical");
        assert!(!ta.is_empty(), "the run produced a trace");
        assert_eq!(ra.violation, rb.violation);
    }
}

/// With forwarding disabled the kernel is the paper's rejected design:
/// messages chasing a migrated process bounce. The sweep must catch it
/// within 200 seeds and the shrinker must cut the schedule to at most 10
/// events while the violation still reproduces.
#[test]
fn broken_forwarding_caught_and_shrunk() {
    let cfg = RunConfig {
        disable_forwarding: true,
        ..RunConfig::default()
    };
    let mut caught = None;
    for seed in 0..200 {
        let sc = Scenario::generate(seed);
        if let Some(v) = run(&sc, &cfg).violation {
            caught = Some((seed, sc, v));
            break;
        }
    }
    let (seed, sc, v) = caught.expect("broken kernel caught within 200 seeds");
    let res = shrink(&sc, &cfg, &v, 200);
    assert!(
        res.scenario.events.len() <= 10,
        "seed {seed} shrunk to {} events",
        res.scenario.events.len()
    );
    let again = run(&res.scenario, &cfg).violation;
    assert!(again.is_some(), "shrunk repro still violates");
    // And the healthy kernel passes the very same shrunk scenario.
    assert!(
        run(&res.scenario, &RunConfig::default()).passed(),
        "violation is the ablation's fault, not the scenario's"
    );
}

/// The two handwritten corpus seeds don't just replay clean — each hits
/// the rare interleaving it was written for, visible in its schedule
/// coverage. `crossing-migrations-during-partition` must forward
/// messages for migrated processes (forwarding-depth features), and
/// `recovery-during-recovery` must overlap two recovery episodes
/// (overlap depth 2).
#[test]
fn handwritten_corpus_seeds_hit_their_target_coverage() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let load = |name: &str| {
        let text = std::fs::read_to_string(format!("{dir}/{name}")).expect("corpus seed exists");
        Scenario::from_corpus(&text).expect("corpus seed parses")
    };

    let crossing = load("crossing-migrations-during-partition.seed");
    let (report, cov) = run_with_coverage(&crossing, &RunConfig::default());
    assert!(
        report.passed(),
        "crossing migrations violated: {}",
        report.violation.unwrap()
    );
    assert!(
        cov.iter().any(|f| unpack(f).0 == class::FWD_DEPTH),
        "crossing migrations must exercise forwarded delivery"
    );

    let nested = load("recovery-during-recovery.seed");
    let (report, cov) = run_with_coverage(&nested, &RunConfig::default());
    assert!(
        report.passed(),
        "recovery-during-recovery violated: {}",
        report.violation.unwrap()
    );
    assert!(
        cov.contains(feature(class::RECOVERY_OVERLAP, 2, 0)),
        "the two crashes must produce overlapping recovery episodes"
    );
}

/// The acceptance criterion for the parallel fuzzer: the same campaign
/// seed produces a byte-identical outcome — report fingerprint AND the
/// repro artifacts written for the bugs it finds — whether it runs on
/// one worker or four. Workers only execute; candidate derivation and
/// result folding are sequential, so thread scheduling cannot leak in.
#[test]
fn campaign_artifacts_are_byte_identical_across_jobs() {
    let run_campaign = |jobs: usize| {
        let cfg = CampaignConfig {
            seed: 7,
            generator: Generator::Classic,
            fault: RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
            jobs,
            batch: 8,
            max_execs: Some(64),
            stop_on_violation: true,
            ..CampaignConfig::default()
        };
        campaign(&cfg, &|| true)
    };
    let a = run_campaign(1);
    let b = run_campaign(4);
    assert_eq!(a.fingerprint(), b.fingerprint(), "campaign digests match");
    assert_eq!(a.execs, b.execs);
    assert!(!a.bugs.is_empty(), "the forwarding ablation is found");

    // Shrink + emit artifacts from each run into separate directories;
    // every file must be byte-identical.
    let emit = |report: &demos_chaos::CampaignReport, tag: &str| {
        let bug = &report.bugs[0];
        let fault = RunConfig {
            disable_forwarding: true,
            ..RunConfig::default()
        };
        let res = shrink(&bug.scenario, &fault, &bug.violation, 200);
        let (_, trace, flight) = demos_chaos::run_capture(&res.scenario, &fault);
        let dir = std::env::temp_dir().join(format!("demos-chaos-jobs-invariance-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = demos_chaos::write_artifacts(
            &dir,
            &res.scenario,
            &fault,
            &res.violation,
            &trace,
            &flight,
        )
        .expect("artifacts written");
        (dir, paths)
    };
    let (dir_a, paths_a) = emit(&a, "j1");
    let (dir_b, paths_b) = emit(&b, "j4");
    for (pa, pb) in [
        (&paths_a.scenario, &paths_b.scenario),
        (&paths_a.snippet, &paths_b.snippet),
        (&paths_a.trace, &paths_b.trace),
        (&paths_a.flight, &paths_b.flight),
    ] {
        assert_eq!(
            pa.file_name(),
            pb.file_name(),
            "artifact names match across jobs"
        );
        assert_eq!(
            std::fs::read(pa).unwrap(),
            std::fs::read(pb).unwrap(),
            "{} is byte-identical across jobs",
            pa.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The distilled corpus is the campaign's executable summary: replaying
/// `tests/corpus/distilled/` must pass every invariant and re-cover
/// every feature recorded in its `FEATURES.txt` manifest.
#[test]
fn distilled_corpus_recovers_its_manifest() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/distilled");
    let manifest =
        std::fs::read_to_string(format!("{dir}/FEATURES.txt")).expect("FEATURES.txt exists");
    let want = FeatureSet::parse_text(&manifest).expect("manifest parses");
    assert!(!want.is_empty(), "manifest records campaign coverage");

    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus/distilled exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "seed"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "distilled corpus is non-empty");

    let mut got = FeatureSet::new();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable distilled seed");
        let sc = Scenario::from_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let (report, cov) = run_with_coverage(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "{}: {}",
            path.display(),
            report.violation.unwrap()
        );
        got.merge(&cov);
    }
    assert!(
        want.is_subset(&got),
        "distilled corpus re-covers its manifest ({} of {} features hit)",
        want.iter().filter(|f| got.contains(*f)).count(),
        want.len()
    );
}

/// Crash-heavy recovery scenarios — permanent machine deaths with the
/// heartbeat detector and checkpoint re-homing active — pass the full
/// recovery-aware invariant stack deterministically.
#[test]
fn recovery_scenarios_uphold_invariants() {
    for seed in 0..200 {
        let sc = Scenario::generate_recovery(seed);
        let report = run(&sc, &RunConfig::default());
        assert!(
            report.passed(),
            "recovery seed {seed} violated: {}",
            report.violation.unwrap()
        );
    }
}

/// With the recovery machinery ablated (no detector, no checkpoints, no
/// re-homing) the same crash-heavy scenarios must be caught as a vanished
/// process within a handful of seeds, and the shrinker must reduce the
/// schedule while the healthy stack still passes the shrunk scenario.
#[test]
fn recovery_disabled_ablation_is_caught_and_shrunk() {
    let cfg = RunConfig {
        disable_recovery: true,
        ..RunConfig::default()
    };
    let mut caught = None;
    for seed in 0..50 {
        let sc = Scenario::generate_recovery(seed);
        if let Some(v) = run(&sc, &cfg).violation {
            caught = Some((seed, sc, v));
            break;
        }
    }
    let (seed, sc, v) = caught.expect("recovery ablation caught within 50 seeds");
    assert!(
        matches!(v, demos_chaos::Violation::ProcessVanished { .. }),
        "seed {seed}: the orphaned process is the symptom: {v}"
    );
    let res = shrink(&sc, &cfg, &v, 200);
    assert!(
        res.scenario.events.len() <= 5,
        "seed {seed} shrunk to {} events",
        res.scenario.events.len()
    );
    assert!(
        run(&res.scenario, &cfg).violation.is_some(),
        "shrunk repro still violates"
    );
    assert!(
        run(&res.scenario, &RunConfig::default()).passed(),
        "the recovery stack survives the very same shrunk scenario"
    );
}
