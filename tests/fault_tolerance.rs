//! Fault-injection tests spanning the whole stack: lossy links,
//! partitions during migration, and crashing processors.

use demos_mp::core::{AcceptPolicy, MigrationConfig};
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{cargo_received, pingpong_rallies, Cargo, PingPong};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn rallies(cluster: &Cluster, pid: ProcessId) -> u64 {
    let machine = cluster.where_is(pid).unwrap();
    let p = cluster.node(machine).kernel.process(pid).unwrap();
    pingpong_rallies(&p.program.as_ref().unwrap().save())
}

fn pingpong_pair(cluster: &mut Cluster) -> (ProcessId, ProcessId) {
    let pa = cluster
        .spawn(
            m(0),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            m(1),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    (pa, pb)
}

#[test]
fn migration_survives_packet_loss() {
    // 5% loss on every edge: retransmission recovers everything, the
    // delivery guarantee holds, and migration completes.
    let topo = Topology::full_mesh(
        3,
        demos_mp::net::EdgeParams {
            latency: Duration::from_micros(300),
            ns_per_byte: 200,
            loss: 0.05,
        },
    );
    let mut cluster = ClusterBuilder::new(3).topology(topo).seed(77).build();
    let (pa, pb) = pingpong_pair(&mut cluster);
    cluster.run_for(Duration::from_millis(300));
    assert!(rallies(&cluster, pa) > 10);

    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_secs(2));
    assert_eq!(cluster.where_is(pb), Some(m(2)));
    let before = rallies(&cluster, pa);
    cluster.run_for(Duration::from_secs(1));
    assert!(
        rallies(&cluster, pa) > before,
        "rally survives loss + migration"
    );
    // The network really was lossy.
    assert!(cluster.net().stats().frames_dropped > 0);
}

#[test]
fn heavy_loss_still_delivers_exactly_once() {
    let topo = Topology::full_mesh(
        2,
        demos_mp::net::EdgeParams {
            latency: Duration::from_micros(200),
            ns_per_byte: 100,
            loss: 0.25,
        },
    );
    let mut cluster = ClusterBuilder::new(2).topology(topo).seed(5).build();
    let (pa, pb) = pingpong_pair(&mut cluster);
    cluster.run_for(Duration::from_secs(3));
    let a = rallies(&cluster, pa);
    let b = rallies(&cluster, pb);
    // In-order exactly-once delivery keeps the rally counts within 1 of
    // each other even at 25% loss — duplicates would inflate one side,
    // drops would stall the rally entirely.
    assert!(a > 20, "rally made progress under 25% loss: {a}");
    assert!(a.abs_diff(b) <= 1, "exactly-once: {a} vs {b}");
    assert!(
        cluster.net().stats().frames_dropped > 20,
        "the loss was real"
    );
}

#[test]
fn destination_crash_aborts_migration_and_process_survives() {
    let mut cluster = ClusterBuilder::new(3)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Always,
            timeout: Duration::from_millis(200),
            ..MigrationConfig::default()
        })
        .build();
    let (pa, pb) = pingpong_pair(&mut cluster);
    cluster.run_for(Duration::from_millis(50));
    let before = rallies(&cluster, pb);

    // Crash the destination, then try to migrate into it.
    cluster.crash(m(2));
    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_secs(2));

    // The source timed out, thawed the process, and the rally resumed.
    assert_eq!(
        cluster.where_is(pb),
        Some(m(1)),
        "process survived at the source"
    );
    assert!(
        rallies(&cluster, pb) > before,
        "rally resumed after the aborted migration"
    );
    assert_eq!(cluster.node(m(1)).engine.stats().aborted, 1);
    assert_eq!(
        cluster.node(m(1)).engine.in_flight(),
        0,
        "no leaked migration state"
    );
    let _ = pa;
}

#[test]
fn partition_during_migration_heals() {
    let mut cluster = ClusterBuilder::new(2)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Always,
            timeout: Duration::from_secs(10),
            ..MigrationConfig::default()
        })
        .build();
    let pid = cluster
        .spawn(
            m(0),
            "cargo",
            &Cargo::state(100_000),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(10));

    cluster.migrate(pid, m(1)).unwrap();
    // Cut the link mid-transfer (the image takes several ms to move).
    cluster.run_for(Duration::from_millis(2));
    cluster.net_mut().topology_mut().clear_edge(m(0), m(1));
    cluster.run_for(Duration::from_millis(100));
    // The process is still on the source, frozen, while retransmissions
    // beat against the partition.
    assert_eq!(cluster.where_is(pid), Some(m(0)));
    assert!(cluster.node(m(0)).kernel.process(pid).unwrap().in_migration);

    // Heal: retransmissions resume and the migration completes.
    cluster
        .net_mut()
        .topology_mut()
        .set_edge(m(0), m(1), demos_mp::net::EdgeParams::default());
    cluster.run_for(Duration::from_secs(2));
    assert_eq!(
        cluster.where_is(pid),
        Some(m(1)),
        "migration completed after the heal"
    );
    let p = cluster.node(m(1)).kernel.process(pid).unwrap();
    assert_eq!(cargo_received(&p.program.as_ref().unwrap().save()), 0);
    assert_eq!(
        p.program.as_ref().unwrap().save().len(),
        8 + 100_000,
        "ballast intact"
    );
}

#[test]
fn partition_heal_delivers_queued_messages_exactly_once() {
    // Sever the only edge of a two-machine rally: the in-flight ball is
    // purged by the partition, the sender's reliable channel keeps
    // retransmitting into the void, and after the heal exactly one copy
    // arrives — the rally resumes with the counts still in lock-step.
    let mut cluster = ClusterBuilder::new(2).seed(9).build();
    let (pa, pb) = pingpong_pair(&mut cluster);
    cluster.run_for(Duration::from_millis(50));
    let before = rallies(&cluster, pa);
    assert!(before > 5, "rally warmed up");

    assert!(
        cluster.partition(m(0), m(1)),
        "edge existed and was severed"
    );
    cluster.run_for(Duration::from_millis(300));
    let during = rallies(&cluster, pa);
    assert!(
        during.abs_diff(before) <= 1,
        "rally stalled during the partition: {before} → {during}"
    );

    assert!(cluster.heal(m(0), m(1)), "edge restored");
    cluster.run_for(Duration::from_secs(2));
    let after_a = rallies(&cluster, pa);
    let after_b = rallies(&cluster, pb);
    assert!(after_a > during + 5, "rally resumed after the heal");
    assert!(
        after_a.abs_diff(after_b) <= 1,
        "exactly-once across the partition: {after_a} vs {after_b}"
    );
    // The queued messages really were carried by retransmission.
    let retransmits: u64 = (0..2)
        .map(|i| cluster.node(m(i)).kernel.channel_stats().retransmits)
        .sum();
    assert!(retransmits > 0, "the partition forced retransmissions");
    let dedup: u64 = (0..2)
        .map(|i| cluster.node(m(i)).kernel.channel_stats().dedup_drops)
        .sum();
    let delivered: u64 = (0..2)
        .map(|i| cluster.node(m(i)).kernel.stats().delivered_local)
        .sum();
    assert!(
        dedup < delivered,
        "dedup suppressed duplicates without eating deliveries"
    );
}

#[test]
fn crossing_aborts_do_not_double_count() {
    // Two sources migrate into the same destination concurrently, so both
    // transfers carry the same source-local context number. One of them is
    // cut by a partition and both of its ends time out, launching Abort
    // messages that cross on the wire and land after their records are
    // already gone. Each abort must resolve exactly the migration it
    // names: the regression was a crossing Abort matching an unrelated
    // record that reused the context number and double-counting `aborted`.
    // Slow links: the 150 KB images take tens of milliseconds to move, so
    // the partition below is guaranteed to land mid-transfer.
    let topo = Topology::full_mesh(
        3,
        demos_mp::net::EdgeParams {
            latency: Duration::from_micros(300),
            ns_per_byte: 200,
            loss: 0.0,
        },
    );
    let mut cluster = ClusterBuilder::new(3)
        .topology(topo)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Always,
            timeout: Duration::from_millis(150),
            ..MigrationConfig::default()
        })
        .build();
    let pa = cluster
        .spawn(
            m(0),
            "cargo",
            &Cargo::state(150_000),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            m(1),
            "cargo",
            &Cargo::state(150_000),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(10));

    cluster.migrate(pa, m(2)).unwrap();
    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(2));
    // Isolate m1 entirely (a mesh would otherwise route around a single
    // severed edge via m0), stranding its outgoing transfer mid-flight.
    assert!(cluster.partition(m(1), m(2)), "cut the transfer edge");
    assert!(cluster.partition(m(1), m(0)), "cut the detour");
    // Both ends of the cut migration time out; the other completes.
    cluster.run_for(Duration::from_millis(400));
    assert!(cluster.heal(m(1), m(2)), "edge restored");
    assert!(cluster.heal(m(1), m(0)), "detour restored");
    cluster.run_for(Duration::from_secs(1));

    assert_eq!(cluster.where_is(pa), Some(m(2)), "healthy transfer landed");
    assert_eq!(cluster.where_is(pb), Some(m(1)), "cut transfer thawed home");
    let s0 = cluster.node(m(0)).engine.stats();
    assert_eq!((s0.started, s0.completed_out, s0.aborted), (1, 1, 0));
    let s1 = cluster.node(m(1)).engine.stats();
    assert_eq!(
        (s1.started, s1.completed_out, s1.aborted),
        (1, 0, 1),
        "the cut source aborted exactly once"
    );
    let s2 = cluster.node(m(2)).engine.stats();
    assert_eq!(s2.completed_in, 1);
    assert_eq!(
        s2.aborted, 1,
        "the destination aborted the cut transfer exactly once"
    );
    for i in 0..3 {
        assert_eq!(
            cluster.node(m(i)).engine.in_flight(),
            0,
            "no leaked migration state on m{i}"
        );
    }
}

#[test]
fn aborted_migration_retries_to_alternate_destination() {
    // The destination is dead, so the first attempt times out; with a
    // retry budget the engine re-offers the frozen process to the next
    // peer after bounded backoff, and the process lands there.
    let mut cluster = ClusterBuilder::new(3)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Always,
            timeout: Duration::from_millis(100),
            retries: 2,
            retry_backoff: Duration::from_millis(10),
        })
        .build();
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(4_096), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(10));
    cluster.crash(m(1));
    cluster.migrate(pid, m(1)).unwrap();
    cluster.run_for(Duration::from_secs(1));

    assert_eq!(
        cluster.where_is(pid),
        Some(m(2)),
        "re-offered to the surviving alternate"
    );
    let s = cluster.node(m(0)).engine.stats();
    assert_eq!(s.started, 2, "original attempt plus one retry");
    assert_eq!(s.aborted, 1, "the dead-destination attempt aborted once");
    assert_eq!(s.retried, 1);
    assert_eq!(s.completed_out, 1);
    assert_eq!(cluster.node(m(0)).engine.in_flight(), 0);
}

#[test]
fn evacuated_machine_forwarding_addresses_lost_with_it() {
    // If the machine holding a forwarding address crashes, messages routed
    // via the stale hint are dropped by the transport until retransmission
    // gives up — but a sender whose link was already updated is fine.
    let mut cluster = Cluster::mesh(3);
    let (pa, pb) = pingpong_pair(&mut cluster);
    cluster.run_for(Duration::from_millis(50));
    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(500));
    // pa's link was updated to m2; crash m1 (which holds the forwarding
    // address). The rally must keep going because nothing routes via m1.
    cluster.crash(m(1));
    let before = rallies(&cluster, pa);
    cluster.run_for(Duration::from_millis(500));
    assert!(
        rallies(&cluster, pa) > before,
        "updated links bypass the dead forwarder"
    );
    let _ = pb;
}
