//! Property-based tests of the system's core invariants:
//!
//! * **exactly-once delivery** — every message sent to a process is
//!   delivered exactly once, no matter how many times the process
//!   migrates while the messages are in flight;
//! * **deterministic replay** — identical configuration and seed yield a
//!   bit-identical event trace;
//! * **link-update convergence** — after a migration and a bounded number
//!   of exchanges, every link in the sender's table points at the
//!   process's true location;
//! * **state conservation** — migrating a process any number of times
//!   never corrupts its serialized program state.

use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{cargo_received, Cargo, PingPong};
use proptest::prelude::*;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleave message posts with migrations; every message must be
    /// delivered exactly once (held during migration, forwarded after).
    #[test]
    fn exactly_once_delivery_under_migration(
        seed in 0u64..1000,
        lossy in any::<bool>(),
        // Each step: Some(dest 0..3) = migrate, None = post a message.
        steps in proptest::collection::vec(proptest::option::of(0u16..4), 5..40),
    ) {
        let loss = if lossy { 0.05 } else { 0.0 };
        let topo = Topology::full_mesh(
            4,
            demos_mp::net::EdgeParams {
                latency: Duration::from_micros(400),
                ns_per_byte: 300,
                loss,
            },
        );
        let mut cluster = ClusterBuilder::new(4).topology(topo).seed(seed).build();
        let pid = cluster
            .spawn(m(0), "cargo", &Cargo::state(512), ImageLayout::default())
            .unwrap();
        cluster.run_for(Duration::from_millis(5));
        let mut posted = 0u64;
        for step in steps {
            match step {
                Some(dest) => {
                    // Migration may legitimately fail (already migrating /
                    // same machine) — that must not affect delivery.
                    let _ = cluster.migrate(pid, m(dest));
                    cluster.run_for(Duration::from_millis(3));
                }
                None => {
                    cluster
                        .post(pid, tags::USER_BASE + 9, bytes::Bytes::from_static(b"x"), vec![])
                        .unwrap();
                    posted += 1;
                }
            }
        }
        // Drain everything.
        cluster.run_quiescent(Duration::from_secs(30));
        let machine = cluster.where_is(pid).expect("process alive");
        let p = cluster.node(machine).kernel.process(pid).unwrap();
        prop_assert!(p.queue.is_empty(), "queue drained");
        let received = cargo_received(&p.program.as_ref().unwrap().save());
        prop_assert_eq!(received, posted, "every message delivered exactly once");
    }

    /// Same seed ⇒ identical trace; different seeds with loss ⇒ the runs
    /// are reproducible independently.
    #[test]
    fn deterministic_replay(seed in 0u64..500) {
        let run = || {
            let topo = Topology::full_mesh(
                3,
                demos_mp::net::EdgeParams {
                    latency: Duration::from_micros(400),
                    ns_per_byte: 300,
                    loss: 0.02,
                },
            );
            let mut cluster = ClusterBuilder::new(3).topology(topo).seed(seed).build();
            let pa = cluster
                .spawn(m(0), "pingpong", &PingPong::state(0, 30), ImageLayout::default())
                .unwrap();
            let pb = cluster
                .spawn(m(1), "pingpong", &PingPong::state(0, 30), ImageLayout::default())
                .unwrap();
            let la = cluster.link_to(pa).unwrap();
            let lb = cluster.link_to(pb).unwrap();
            cluster.post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb]).unwrap();
            cluster.post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la]).unwrap();
            cluster.run_for(Duration::from_millis(30));
            let _ = cluster.migrate(pb, m(2));
            cluster.run_for(Duration::from_millis(150));
            cluster.trace().fingerprint()
        };
        prop_assert_eq!(run(), run());
    }

    /// After migration and continued traffic, the peer's links converge to
    /// the true location, and forwarding stops.
    #[test]
    fn link_update_convergence(seed in 0u64..500, dest in 2u16..5) {
        let mut cluster = ClusterBuilder::new(5).seed(seed).build();
        let pa = cluster
            .spawn(m(0), "pingpong", &PingPong::state(0, 40), ImageLayout::default())
            .unwrap();
        let pb = cluster
            .spawn(m(1), "pingpong", &PingPong::state(0, 40), ImageLayout::default())
            .unwrap();
        let la = cluster.link_to(pa).unwrap();
        let lb = cluster.link_to(pb).unwrap();
        cluster.post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb]).unwrap();
        cluster.post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la]).unwrap();
        cluster.run_for(Duration::from_millis(50));
        cluster.migrate(pb, m(dest)).unwrap();
        cluster.run_for(Duration::from_millis(400));

        // Convergence: pa's links to pb all carry the true location.
        let pa_proc = cluster.node(m(0)).kernel.process(pa).unwrap();
        for (_, l) in pa_proc.links.iter().filter(|(_, l)| l.target() == pb) {
            prop_assert_eq!(l.addr.last_known_machine, m(dest));
        }
        // Quiescence of forwarding: further traffic takes the direct path.
        let f1 = cluster.trace().forwards_for(pb);
        cluster.run_for(Duration::from_millis(200));
        let f2 = cluster.trace().forwards_for(pb);
        prop_assert!(f2 - f1 <= 1, "forwarding stopped: {} → {}", f1, f2);
        // §6: at most 2 messages went over the stale link before update.
        prop_assert!(f1 <= 2, "stale sends bounded: {}", f1);
    }

    /// Program state survives arbitrary migration chains bit-for-bit.
    #[test]
    fn state_conserved_over_chains(
        seed in 0u64..500,
        ballast in 1usize..5000,
        path in proptest::collection::vec(0u16..4, 1..6),
    ) {
        let mut cluster = ClusterBuilder::new(4).seed(seed).build();
        let pid = cluster
            .spawn(m(0), "cargo", &Cargo::state(ballast), ImageLayout::default())
            .unwrap();
        cluster.run_for(Duration::from_millis(5));
        for dest in path {
            let _ = cluster.migrate(pid, m(dest));
            cluster.run_quiescent(Duration::from_secs(10));
        }
        let machine = cluster.where_is(pid).expect("alive");
        let p = cluster.node(machine).kernel.process(pid).unwrap();
        let state = p.program.as_ref().unwrap().save();
        prop_assert_eq!(state.len(), 8 + ballast);
        prop_assert_eq!(cargo_received(&state), 0);
        prop_assert!(state[8..].iter().all(|&b| b == 0xA5), "ballast bytes intact");
    }
}
