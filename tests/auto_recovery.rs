//! End-to-end failure detection and automatic recovery: a machine dies
//! permanently mid-service, surviving kernels' heartbeat detectors
//! confirm the death, the recovery manager re-homes the dead machine's
//! processes from their checkpoints, link-update traffic re-points the
//! clients, and the workload resumes making progress — with the delivery
//! ledger still clean.

use demos_mp::sim::export::machine_registry;
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{client_stats, Client, EchoServer};
use demos_mp::sim::span::ledger_of;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn recovery_cluster(n: usize) -> Cluster {
    ClusterBuilder::new(n)
        .seed(11)
        .kernel_config(KernelConfig {
            heartbeat_every: Duration::from_millis(2),
            suspect_after: 3,
            dead_after: 10,
            ..KernelConfig::default()
        })
        .recovery(RecoveryConfig {
            checkpoint_every: Duration::from_millis(5),
            protect_all: false,
        })
        .build()
}

/// The tentpole scenario: crash the echo server's machine, watch the
/// detector confirm it, the server re-home onto a survivor, and the
/// client's replies resume flowing.
#[test]
fn crashed_server_is_detected_rehomed_and_service_resumes() {
    let mut cluster = recovery_cluster(3);
    let server = cluster
        .spawn(
            m(1),
            "echo_server",
            &EchoServer::state(20),
            ImageLayout::default(),
        )
        .unwrap();
    let client = cluster
        .spawn(
            m(0),
            "client",
            &Client::state(400, 1_000, 64),
            ImageLayout::default(),
        )
        .unwrap();
    let ls = cluster.link_to(server).unwrap();
    cluster
        .post(client, wl::INIT, bytes::Bytes::new(), vec![ls])
        .unwrap();
    cluster.protect(server);
    cluster.run_for(Duration::from_millis(50));
    let warm = {
        let p = cluster.node(m(0)).kernel.process(client).unwrap();
        client_stats(&p.program.as_ref().unwrap().save())
    };
    assert!(warm.recv > 10, "service warmed up: {} replies", warm.recv);

    // Permanent death of the server's machine.
    cluster.crash(m(1));
    cluster.run_for(Duration::from_millis(200));

    let r = cluster.recovery().expect("recovery manager attached");
    let ep = r
        .episodes()
        .iter()
        .find(|e| e.machine == m(1))
        .expect("death detected and recovery episode recorded");
    assert_eq!(ep.rehomed, 1, "the protected server was re-homed");
    let crashed_at = ep.crashed_at.expect("ground-truth crash time known");
    assert!(ep.detected_at > crashed_at, "detection follows the crash");
    assert!(
        ep.recovered_at >= ep.detected_at,
        "re-homing follows detection"
    );
    let home = cluster.where_is(server).expect("server is back");
    assert_ne!(home, m(1), "re-homed onto a survivor");

    // The recovery pass pulled the dead machine's black box.
    let (pm_machine, pm_text) = r
        .postmortems()
        .iter()
        .find(|(machine, _)| *machine == m(1))
        .expect("post-mortem captured for the dead machine");
    assert_eq!(*pm_machine, m(1));
    assert!(
        pm_text.contains("flight recorder m1"),
        "post-mortem names the machine: {pm_text}"
    );

    // The client keeps getting answers from the re-homed server.
    let mid = {
        let p = cluster.node(m(0)).kernel.process(client).unwrap();
        client_stats(&p.program.as_ref().unwrap().save())
    };
    cluster.run_for(Duration::from_millis(300));
    let after = {
        let p = cluster.node(m(0)).kernel.process(client).unwrap();
        client_stats(&p.program.as_ref().unwrap().save())
    };
    assert!(
        after.recv > mid.recv,
        "replies resumed after recovery: {} → {}",
        mid.recv,
        after.recv
    );

    // Surviving kernels reached the dead verdict and bounced dead-bound
    // traffic instead of retransmitting forever.
    let det = cluster.node(m(0)).kernel.detector_stats();
    assert_eq!(det.confirmed_dead, 1, "m0 confirmed exactly one death");
    assert_eq!(det.false_positives, 0, "no premature verdicts");

    // Exactly-once held across the whole episode.
    let ledger = ledger_of(cluster.trace());
    assert!(
        ledger.duplicates().is_empty(),
        "no duplicated deliveries across crash + re-home"
    );
}

/// Detector soundness under no faults: heartbeats flow, but nothing is
/// ever suspected-then-confirmed — false positives stay zero on every
/// machine, asserted both on the kernel counters and through the
/// metrics-registry export.
#[test]
fn no_fault_run_has_zero_false_positives() {
    let mut cluster = recovery_cluster(4);
    let server = cluster
        .spawn(
            m(2),
            "echo_server",
            &EchoServer::state(20),
            ImageLayout::default(),
        )
        .unwrap();
    let client = cluster
        .spawn(
            m(3),
            "client",
            &Client::state(200, 500, 32),
            ImageLayout::default(),
        )
        .unwrap();
    let ls = cluster.link_to(server).unwrap();
    cluster
        .post(client, wl::INIT, bytes::Bytes::new(), vec![ls])
        .unwrap();
    cluster.run_for(Duration::from_millis(400));

    for i in 0..4 {
        let reg = machine_registry(cluster.node(m(i)));
        assert!(reg.counter("hb_sent") > 0, "m{i} heartbeated");
        assert_eq!(
            reg.counter("false_positives"),
            0,
            "m{i} suspected a live peer and heard it again"
        );
        assert_eq!(
            reg.counter("peers_confirmed_dead"),
            0,
            "m{i} confirmed a live peer dead"
        );
        let det = cluster.node(m(i)).kernel.detector_stats();
        assert_eq!(det.confirmed_dead, 0);
        assert_eq!(det.false_positives, 0);
    }
}
