//! Context reuse across a source reboot, end to end.
//!
//! Companion to `crates/core/tests/duplicate_offer.rs` (the engine-level
//! pin of the duplicate-offer reservation leak found by `demos-lint`
//! D007). Context numbers are per-source in-memory counters, so a source
//! that reboots mid-migration restarts numbering from 1 — the exact
//! collision the engine's `RejectReason::Protocol` guard defends against.
//! End to end, the collision must not even form: the destination's
//! channel sees the new incarnation, aborts the dead incarnation's
//! in-flight migration, and releases its reservation, so the rebooted
//! source's reused context is fresh traffic and migrates cleanly.

use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::EchoServer;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

#[test]
fn rebooted_source_reusing_a_context_neither_collides_nor_leaks() {
    let mut cluster = Cluster::mesh(2);
    // A bulky image so the first migration is still streaming when the
    // source dies: the destination holds a live reservation for
    // (m0, ctx=1) at the moment of the crash.
    let bulky = ImageLayout {
        code: 256 * 1024,
        data: 64 * 1024,
        stack: 64 * 1024,
    };
    let p1 = cluster
        .spawn(m(0), "echo_server", &EchoServer::state(50), bulky)
        .unwrap();
    cluster.run_for(Duration::from_millis(10));
    let mem_idle = cluster.node(m(1)).kernel.mem_used();

    // Steps 1–3: offer sent, accepted, reservation made at m1.
    cluster.migrate(p1, m(1)).unwrap();
    let mut guard = 0u32;
    while cluster.node(m(1)).engine.in_flight() == 0 {
        assert!(
            cluster.step(),
            "event queue drained before the offer landed"
        );
        guard += 1;
        assert!(guard < 2_000_000, "offer never reached the destination");
    }
    assert_eq!(
        cluster.where_is(p1),
        Some(m(0)),
        "the transfer must still be in flight when the source dies"
    );
    assert!(cluster.node(m(1)).kernel.mem_used() > mem_idle, "reserved");

    // The source dies mid-transfer and reboots immediately. Its fresh
    // engine restarts context numbering from 1.
    cluster.crash(m(0));
    cluster.revive(m(0));

    let p2 = cluster
        .spawn(
            m(0),
            "echo_server",
            &EchoServer::state(50),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(20));
    cluster.migrate(p2, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(500));

    // The new incarnation's traffic made the destination abort the dead
    // incarnation's migration — so the reused ctx=1 was fresh, accepted,
    // and completed; nothing was overwritten and nothing rejected.
    let dst = cluster.node(m(1)).engine.stats();
    assert_eq!(dst.aborted, 1, "stale incoming purged on reboot: {dst:?}");
    assert_eq!(dst.completed_in, 1, "reused context accepted: {dst:?}");
    assert_eq!(dst.rejected, 0, "no protocol violation end to end: {dst:?}");
    assert_eq!(cluster.where_is(p2), Some(m(1)));

    // And the leak guard: the aborted migration's reservation was
    // released — only p2's (default-layout) image remains accounted.
    let settled = cluster.node(m(1)).kernel.mem_used();
    assert!(
        settled < mem_idle + u64::from(256 * 1024u32),
        "stale bulky reservation must be released (mem_used {settled})"
    );
}
