//! Shard-count equality over the committed chaos corpus.
//!
//! The sharded executor (`demos_sim::shard`) promises bit-determinism:
//! for any shard count, a replay produces the same invariant verdict,
//! the same trace fingerprint, the same JSON-lines trace export, and the
//! same flight-recorder dump as the sequential loop. These tests replay
//! every committed corpus seed — the classic/recovery set and the
//! distilled covering corpus — at S ∈ {2, 4} (and the distilled set at
//! S = 8) against the S = 1 baseline.
//!
//! Lossy scenarios exercise the executor's sequential *fallback* (the
//! loss RNG is global, so they cannot shard); that path must also be
//! byte-identical, and is — trivially — because it is the same code. To
//! make sure the corpus genuinely drives the parallel path too, the
//! suite asserts that a replay at S = 2 executes a non-zero number of
//! parallel segments somewhere in the corpus, and replays the lossy
//! seeds again with loss stripped (`lossless`) so even those schedules
//! cover the parallel machinery.

use std::path::{Path, PathBuf};

use demos_chaos::{run_capture, RunConfig, Scenario};

fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Load every `*.seed` under `dir` (non-recursive), path-sorted.
fn load(dir: &Path) -> Vec<(String, Scenario)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seed"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "empty corpus dir {}", dir.display());
    paths
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("read seed");
            let sc =
                Scenario::from_corpus(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (name, sc)
        })
        .collect()
}

fn cfg(shards: usize, lossless: bool) -> RunConfig {
    RunConfig {
        shards,
        lossless,
        ..RunConfig::default()
    }
}

/// Replay every seed in `dir` at each shard count in `counts`, asserting
/// byte-identical results against the S = 1 baseline. Returns the total
/// parallel segments executed across all replays (baseline excluded).
fn assert_corpus_equal(dir: &Path, counts: &[usize], lossless: bool) -> u64 {
    let mut parallel = 0u64;
    for (name, sc) in load(dir) {
        let (base, base_trace, base_flight) = run_capture(&sc, &cfg(1, lossless));
        assert_eq!(
            base.parallel_segments, 0,
            "{name}: S=1 must use the sequential loop"
        );
        for &s in counts {
            let (rep, trace, flight) = run_capture(&sc, &cfg(s, lossless));
            assert_eq!(
                rep.violation.as_ref().map(|v| v.to_string()),
                base.violation.as_ref().map(|v| v.to_string()),
                "{name}: verdict diverged at S={s}"
            );
            assert_eq!(
                rep.fingerprint, base.fingerprint,
                "{name}: trace fingerprint diverged at S={s}"
            );
            assert_eq!(
                rep.end_us, base.end_us,
                "{name}: end time diverged at S={s}"
            );
            assert_eq!(
                trace, base_trace,
                "{name}: JSON-lines trace diverged at S={s}"
            );
            assert_eq!(
                flight, base_flight,
                "{name}: flight-recorder dump diverged at S={s}"
            );
            parallel += rep.parallel_segments;
        }
    }
    parallel
}

/// The classic + recovery corpus at S ∈ {2, 4}. Recovery and lossy
/// scenarios take the sequential fallback inside the sharded executor;
/// loss-free classic ones run genuinely parallel.
#[test]
fn corpus_replays_identically_at_2_and_4_shards() {
    assert_corpus_equal(&corpus_root(), &[2, 4], false);
}

/// The distilled covering corpus at S ∈ {2, 4, 8}.
#[test]
fn distilled_corpus_replays_identically_up_to_8_shards() {
    assert_corpus_equal(&corpus_root().join("distilled"), &[2, 4, 8], false);
}

/// Loss stripped from every scenario: all non-recovery seeds must now
/// take the parallel path, and the parallel replays must still agree
/// with the (equally lossless) sequential baseline.
#[test]
fn lossless_corpus_drives_the_parallel_path() {
    let parallel = assert_corpus_equal(&corpus_root(), &[2, 4], true);
    assert!(
        parallel > 0,
        "stripping loss must engage the parallel executor"
    );
}

/// The committed corpus as-is must also exercise the parallel path at
/// S = 2 — if every seed fell back to sequential, the equality above
/// would be vacuous.
#[test]
fn committed_corpus_exercises_parallel_segments() {
    let mut parallel = 0u64;
    for dir in [corpus_root(), corpus_root().join("distilled")] {
        for (_, sc) in load(&dir) {
            let (rep, _, _) = run_capture(&sc, &cfg(2, false));
            parallel += rep.parallel_segments;
        }
    }
    assert!(
        parallel > 0,
        "no corpus seed engaged the parallel executor; the equality suite is vacuous"
    );
}
