//! Whole-stack scenario test: everything at once, the way the paper's
//! system actually ran — system processes booted, user processes doing
//! file I/O and computation, migrations of user *and* system processes
//! driven through the process manager, with policies running — and the
//! invariants still hold.

use demos_mp::policy::{Hysteresis, LoadBalance};
use demos_mp::sim::boot::{
    boot_system, spawn_fs_clients, spawn_shell, total_client_errors, total_client_ops, BootConfig,
};
use demos_mp::sim::prelude::*;
use demos_mp::sysproc::{shell_stats, Cmd, ScriptEntry};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

#[test]
fn kitchen_sink() {
    let mut cluster = ClusterBuilder::new(5).seed(99).build();
    let handles = boot_system(
        &mut cluster,
        BootConfig {
            control_machine: m(0),
            fs_machine: m(1),
            ..Default::default()
        },
    )
    .unwrap();

    // File-system clients on two machines.
    let clients = spawn_fs_clients(&mut cluster, &handles, m(2), 2, 2, 2_500, 128, 60).unwrap();
    let clients2 = spawn_fs_clients(&mut cluster, &handles, m(3), 2, 2, 2_500, 128, 60).unwrap();
    let all_clients: Vec<ProcessId> = clients.into_iter().chain(clients2).collect();

    // A scripted operator session: spawn burners, migrate one around.
    let script = vec![
        ScriptEntry {
            delay_us: 5_000,
            cmd: Cmd::Spawn {
                machine: m(2),
                program: "cpu_burner".into(),
                state: demos_mp::sim::programs::CpuBurner::state(0, 700, 1_000),
                layout: ImageLayout::default(),
            },
        },
        ScriptEntry {
            delay_us: 5_000,
            cmd: Cmd::Spawn {
                machine: m(2),
                program: "cpu_burner".into(),
                state: demos_mp::sim::programs::CpuBurner::state(0, 700, 1_000),
                layout: ImageLayout::default(),
            },
        },
        ScriptEntry {
            delay_us: 100_000,
            cmd: Cmd::Migrate { nth: 0, dest: m(4) },
        },
        ScriptEntry {
            delay_us: 200_000,
            cmd: Cmd::Migrate { nth: 1, dest: m(4) },
        },
    ];
    let shell = spawn_shell(&mut cluster, &handles, m(0), &script).unwrap();

    // A load balancer watching the whole time.
    let policy = LoadBalance::new(
        3,
        Hysteresis::new(Duration::from_millis(100), Duration::from_millis(20)),
    );
    let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(50));

    // Phase 1: everything runs together.
    driver.run(&mut cluster, Duration::from_millis(600));

    // Phase 2: migrate the file server while all of it keeps going.
    cluster.migrate(handles.fs_file, m(4)).unwrap();
    driver.run(&mut cluster, Duration::from_millis(600));

    // Phase 3: and the switchboard too (a long-lived server with
    // registered links in its table).
    cluster.migrate(handles.switchboard, m(2)).unwrap();
    driver.run(&mut cluster, Duration::from_millis(600));

    // --- Invariants ---
    // The operator session succeeded end to end.
    let sm = cluster.where_is(shell).unwrap();
    let (spawned_ok, spawn_failed, mig_ok, mig_failed) = shell_stats(
        &cluster
            .node(sm)
            .kernel
            .process(shell)
            .unwrap()
            .program
            .as_ref()
            .unwrap()
            .save(),
    );
    assert_eq!((spawned_ok, spawn_failed), (2, 0));
    assert_eq!(
        (mig_ok, mig_failed),
        (2, 0),
        "both PM-driven migrations acknowledged"
    );

    // The file system kept serving without a single client-visible error.
    assert!(total_client_ops(&cluster, &all_clients) > 200);
    assert_eq!(total_client_errors(&cluster, &all_clients), 0);
    assert_eq!(cluster.where_is(handles.fs_file), Some(m(4)));
    assert_eq!(cluster.where_is(handles.switchboard), Some(m(2)));

    // The switchboard still answers lookups at its new home via the old
    // (stale) registration links others hold.
    use demos_mp::sysproc::{sys, SbMsg};
    use demos_mp::types::wire::Wire;
    let probe = cluster
        .spawn(
            m(3),
            "cargo",
            &demos_mp::sim::programs::Cargo::state(0),
            ImageLayout::default(),
        )
        .unwrap();
    let reply = cluster.link_to(probe).unwrap();
    cluster
        .post(
            handles.switchboard,
            sys::SWITCHBOARD,
            SbMsg::Lookup { name: "fs".into() }.to_bytes(),
            vec![reply],
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(100));
    let p = cluster.node(m(3)).kernel.process(probe).unwrap();
    assert!(
        p.links.iter().any(|(_, l)| l.target() == handles.fs_file),
        "switchboard lookup works after its own migration"
    );

    // No migration state leaked anywhere.
    for i in 0..5 {
        assert_eq!(
            cluster.node(m(i)).engine.in_flight(),
            0,
            "m{i} has no stuck migrations"
        );
    }
}

#[test]
fn interdomain_refusal_and_retry_elsewhere() {
    // §3.2: "The destination processor may simply refuse to accept any
    // migrations not fitting its criteria. The source processor, once
    // rebuffed, has the option of looking elsewhere."
    fn no_big_images(info: &demos_mp::core::OfferInfo) -> bool {
        info.image_len < 10_000
    }
    let mut cluster = ClusterBuilder::new(3)
        .migration_config(demos_mp::core::MigrationConfig {
            accept: demos_mp::core::AcceptPolicy::Custom(no_big_images),
            ..Default::default()
        })
        .build();
    let big = cluster
        .spawn(
            m(0),
            "cargo",
            &demos_mp::sim::programs::Cargo::state(64),
            ImageLayout {
                code: 64 * 1024,
                data: 4096,
                stack: 2048,
            },
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(5));

    // First attempt: m1 refuses (image too big for its admission filter).
    cluster.migrate(big, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(500));
    assert_eq!(
        cluster.where_is(big),
        Some(m(0)),
        "rebuffed; process resumed at source"
    );
    assert_eq!(cluster.node(m(1)).engine.stats().rejected, 1);

    // "Looking elsewhere": a small process is accepted fine.
    let small = cluster
        .spawn(
            m(0),
            "cargo",
            &demos_mp::sim::programs::Cargo::state(16),
            ImageLayout {
                code: 2048,
                data: 1024,
                stack: 512,
            },
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    cluster.migrate(small, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(500));
    assert_eq!(
        cluster.where_is(small),
        Some(m(1)),
        "small process admitted"
    );
}
