//! Crash recovery via checkpoints (§1): "migrate" a process from a
//! processor that has crashed, using the same state the migration
//! mechanism transports, saved to stable storage.

use demos_mp::kernel::Outbox;
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{client_stats, server_served, Client, EchoServer};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

#[test]
fn checkpointed_server_survives_processor_crash() {
    let mut cluster = Cluster::mesh(3);
    let server = cluster
        .spawn(
            m(0),
            "echo_server",
            &EchoServer::state(50),
            ImageLayout::default(),
        )
        .unwrap();
    let client = cluster
        .spawn(
            m(1),
            "client",
            &Client::state(0, 5_000, 32),
            ImageLayout::default(),
        )
        .unwrap();
    let link = cluster.link_to(server).unwrap();
    cluster
        .post(client, wl::INIT, bytes::Bytes::new(), vec![link])
        .unwrap();
    cluster.run_for(Duration::from_millis(200));

    // Periodic checkpoint to "stable storage".
    let now = cluster.now();
    let ck = cluster
        .node_mut(m(0))
        .kernel
        .checkpoint(now, server)
        .unwrap();
    let served_at_ck = {
        let p = cluster.node(m(0)).kernel.process(server).unwrap();
        server_served(&p.program.as_ref().unwrap().save())
    };
    assert!(served_at_ck > 10);
    // Stable storage means it survives as bytes.
    let stable_bytes = demos_mp::types::wire::Wire::to_bytes(&ck);

    // Some more work happens after the checkpoint…
    cluster.run_for(Duration::from_millis(100));

    // …then m0 dies.
    cluster.crash(m(0));
    cluster.run_for(Duration::from_millis(100));
    assert_eq!(cluster.where_is(server), None);

    // Recovery: restore the checkpoint on m2.
    let ck_back: demos_mp::kernel::Checkpoint =
        demos_mp::types::wire::Wire::from_bytes(&stable_bytes).unwrap();
    let now = cluster.now();
    let mut out = Outbox::default();
    let restored = cluster
        .node_mut(m(2))
        .kernel
        .restore_checkpoint(now, &ck_back, &mut out)
        .unwrap();
    assert_eq!(restored, server, "identity survives crash recovery");
    {
        let p = cluster.node(m(2)).kernel.process(server).unwrap();
        let served = server_served(&p.program.as_ref().unwrap().save());
        assert_eq!(
            served, served_at_ck,
            "rolled back to the checkpoint, not beyond"
        );
    }

    // Revive m0 empty and write the recovery forwarding address so the
    // client's stale link finds the restored server (§4's remark that the
    // process recovery mechanism covers forwarding addresses too).
    cluster.revive(m(0));
    let mut out = Outbox::default();
    cluster
        .node_mut(m(0))
        .kernel
        .install_forwarding(server, m(2), &mut out);

    // The client — whose link still says m0 — resumes getting replies.
    let before = {
        let p = cluster.node(m(1)).kernel.process(client).unwrap();
        client_stats(&p.program.as_ref().unwrap().save()).recv
    };
    cluster.run_for(Duration::from_millis(500));
    let after = {
        let p = cluster.node(m(1)).kernel.process(client).unwrap();
        client_stats(&p.program.as_ref().unwrap().save()).recv
    };
    assert!(
        after > before + 20,
        "service resumed transparently: {before} → {after}"
    );
    // And the client's link was patched to the new home by the usual §5
    // machinery.
    let p = cluster.node(m(1)).kernel.process(client).unwrap();
    for (_, l) in p.links.iter().filter(|(_, l)| l.target() == server) {
        assert_eq!(l.addr.last_known_machine, m(2));
    }
}

#[test]
fn revive_without_recovery_reports_nondeliverable() {
    // Revive the machine but do NOT restore the process: senders get
    // non-deliverable notices and dead links (the §4 "process terminated"
    // path), instead of hanging forever.
    let mut cluster = Cluster::mesh(2);
    let server = cluster
        .spawn(
            m(0),
            "echo_server",
            &EchoServer::state(10),
            ImageLayout::default(),
        )
        .unwrap();
    let client = cluster
        .spawn(
            m(1),
            "client",
            &Client::state(0, 5_000, 16),
            ImageLayout::default(),
        )
        .unwrap();
    let link = cluster.link_to(server).unwrap();
    cluster
        .post(client, wl::INIT, bytes::Bytes::new(), vec![link])
        .unwrap();
    cluster.run_for(Duration::from_millis(100));

    cluster.crash(m(0));
    cluster.run_for(Duration::from_millis(50));
    cluster.revive(m(0));
    cluster.run_for(Duration::from_millis(300));

    let p = cluster.node(m(1)).kernel.process(client).unwrap();
    let dead = p
        .links
        .iter()
        .filter(|(_, l)| l.target() == server)
        .all(|(_, l)| {
            l.attrs
                .contains(<demos_mp::types::LinkAttrs as demos_mp::kernel::LinkAttrsExt>::DEAD)
        });
    assert!(
        dead,
        "client's links to the unrecovered process are marked dead"
    );
    assert!(cluster.node(m(0)).kernel.stats().nondeliverable > 0);
}

#[test]
fn checkpoint_then_migrate_then_crash_uses_latest_location() {
    // Checkpoints interact with later migrations: the checkpoint names the
    // machine it was taken on, but restore works anywhere.
    let mut cluster = Cluster::mesh(3);
    let pid = cluster
        .spawn(
            m(0),
            "cargo",
            &demos_mp::sim::programs::Cargo::state(4096),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(10));
    let now = cluster.now();
    let ck = cluster.node_mut(m(0)).kernel.checkpoint(now, pid).unwrap();
    assert_eq!(ck.taken_on, m(0));

    cluster.migrate(pid, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    cluster.crash(m(1));
    cluster.run_for(Duration::from_millis(50));
    assert_eq!(cluster.where_is(pid), None);

    let now = cluster.now();
    let mut out = Outbox::default();
    let restored = cluster
        .node_mut(m(2))
        .kernel
        .restore_checkpoint(now, &ck, &mut out)
        .unwrap();
    assert_eq!(restored, pid);
    assert_eq!(cluster.where_is(pid), Some(m(2)));
    // m0's old forwarding address (→ m1, dead) can be repointed.
    let mut out = Outbox::default();
    cluster
        .node_mut(m(0))
        .kernel
        .install_forwarding(pid, m(2), &mut out);
    assert_eq!(cluster.node(m(0)).kernel.forwarding_table()[&pid].to, m(2));
}
