//! Native mode: the same kernels on real OS threads (paper §2: DEMOS/MP
//! ran "on a network of Z8000 microprocessors, as well as in simulation
//! mode … essentially the same software runs on both systems").
//!
//! This example reruns the quickstart scenario — a cross-machine rally
//! with a live migration — on `demos_rt::NativeCluster`, where frames
//! genuinely race over crossbeam channels.
//!
//! Run: `cargo run --example native_mode`

use demos_mp::kernel::{ImageLayout, KernelConfig, Registry};
use demos_mp::rt::NativeCluster;
use demos_mp::types::{Duration as VDuration, LinkAttrs, MachineId};
use std::time::Duration;

struct Pinger {
    rallies: u64,
    peer: u32,
}

impl demos_mp::kernel::Program for Pinger {
    fn on_message(
        &mut self,
        ctx: &mut demos_mp::kernel::Ctx<'_>,
        msg: demos_mp::kernel::Delivered,
    ) {
        const INIT: u16 = demos_mp::types::tags::USER_BASE;
        const BALL: u16 = demos_mp::types::tags::USER_BASE + 1;
        match msg.msg_type {
            INIT => {
                if let Some(&peer) = msg.links.first() {
                    self.peer = peer.0;
                    if msg.payload.first() == Some(&1) {
                        let _ = ctx.send(peer, BALL, bytes::Bytes::new(), &[]);
                    }
                }
            }
            BALL => {
                self.rallies += 1;
                ctx.cpu(VDuration::from_micros(10));
                if self.peer != 0 {
                    let _ = ctx.send(
                        demos_mp::types::LinkIdx(self.peer),
                        BALL,
                        bytes::Bytes::new(),
                        &[],
                    );
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut v = self.rallies.to_be_bytes().to_vec();
        v.extend_from_slice(&self.peer.to_be_bytes());
        v
    }
}

fn rallies_of(state: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&state[..8]);
    u64::from_be_bytes(b)
}

fn main() {
    println!("DEMOS/MP native mode: real threads, real races\n");
    let mut registry = Registry::new();
    registry.register("pinger", |state| {
        let mut rallies = [0u8; 8];
        let mut peer = [0u8; 4];
        if state.len() >= 12 {
            rallies.copy_from_slice(&state[..8]);
            peer.copy_from_slice(&state[8..12]);
        }
        Box::new(Pinger {
            rallies: u64::from_be_bytes(rallies),
            peer: u32::from_be_bytes(peer),
        })
    });

    let m = MachineId;
    let cluster = NativeCluster::new(
        3,
        registry,
        KernelConfig::default(),
        demos_mp::core::MigrationConfig::default(),
    );
    let pa = cluster
        .spawn(m(0), "pinger", &[0u8; 12], ImageLayout::default())
        .unwrap();
    let pb = cluster
        .spawn(m(1), "pinger", &[0u8; 12], ImageLayout::default())
        .unwrap();
    let la = demos_mp::types::Link {
        addr: pa.at(m(0)),
        attrs: LinkAttrs::NONE,
        area: None,
    };
    let lb = demos_mp::types::Link {
        addr: pb.at(m(1)),
        attrs: LinkAttrs::NONE,
        area: None,
    };
    const INIT: u16 = demos_mp::types::tags::USER_BASE;
    cluster
        .post(m(1), pb, INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    cluster
        .post(m(0), pa, INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();

    std::thread::sleep(Duration::from_millis(300));
    let r0 = rallies_of(&cluster.query_state(m(0), pa).unwrap().unwrap());
    println!("after 300ms of wall-clock: {r0} rallies across machine threads");

    println!("\n>> migrating pb to m2 while the rally runs …");
    cluster.migrate(m(1), pb, m(2)).unwrap();
    std::thread::sleep(Duration::from_millis(500));

    println!(
        "pb now on {:?}; rally at {} (was {r0})",
        cluster.where_is(pb).unwrap(),
        rallies_of(&cluster.query_state(m(0), pa).unwrap().unwrap()),
    );
    let (s1, _) = cluster.stats(m(1)).unwrap();
    println!(
        "m1 forwarded {} stale messages and sent {} link updates",
        s1.forwarded, s1.link_updates_sent
    );
    cluster.shutdown();
    println!("\nall machine threads joined cleanly.");
}
