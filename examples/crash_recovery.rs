//! Fault recovery by checkpoint (§1): "If the information necessary to
//! transport a process is saved in stable storage, it may be possible to
//! 'migrate' a process from a processor that has crashed to a working
//! one."
//!
//! An echo server is checkpointed, its processor crashes, the checkpoint
//! is restored on another machine, and the revived processor gets a
//! recovery forwarding address — after which the client (whose link still
//! points at the dead machine's address) resumes service transparently.
//!
//! Run: `cargo run --example crash_recovery`

use demos_mp::kernel::Outbox;
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{client_stats, server_served, Client, EchoServer};
use demos_mp::types::wire::Wire;

fn client_recv(cluster: &Cluster, client: ProcessId) -> u64 {
    let m = cluster.where_is(client).unwrap();
    client_stats(
        &cluster
            .node(m)
            .kernel
            .process(client)
            .unwrap()
            .program
            .as_ref()
            .unwrap()
            .save(),
    )
    .recv
}

fn main() {
    println!("DEMOS/MP: migrating a process off a processor that already crashed\n");
    let mut cluster = Cluster::mesh(3);
    let server = cluster
        .spawn(
            MachineId(0),
            "echo_server",
            &EchoServer::state(50),
            ImageLayout::default(),
        )
        .unwrap();
    let client = cluster
        .spawn(
            MachineId(1),
            "client",
            &Client::state(0, 5_000, 32),
            ImageLayout::default(),
        )
        .unwrap();
    let link = cluster.link_to(server).unwrap();
    cluster
        .post(client, wl::INIT, bytes::Bytes::new(), vec![link])
        .unwrap();
    cluster.run_for(Duration::from_millis(200));
    println!(
        "t={}  server on m0 has replied to {} requests",
        cluster.now(),
        client_recv(&cluster, client)
    );

    let now = cluster.now();
    let ck = cluster
        .node_mut(MachineId(0))
        .kernel
        .checkpoint(now, server)
        .unwrap();
    let stable = ck.to_bytes();
    println!(
        "t={}  checkpoint written to stable storage: {} bytes (resident {} + swappable {} + image {})",
        cluster.now(),
        stable.len(),
        ck.resident.len(),
        ck.swappable.len(),
        ck.image.len()
    );
    let served_at_ck = {
        let p = cluster.node(MachineId(0)).kernel.process(server).unwrap();
        server_served(&p.program.as_ref().unwrap().save())
    };

    cluster.run_for(Duration::from_millis(100));
    println!("\n>> m0 crashes!\n");
    cluster.crash(MachineId(0));
    cluster.run_for(Duration::from_millis(100));
    let stalled = client_recv(&cluster, client);
    println!(
        "t={}  client stalled at {} replies (its link points at a dead machine)",
        cluster.now(),
        stalled
    );

    // Recovery.
    let ck_back: demos_mp::kernel::Checkpoint = Wire::from_bytes(&stable).unwrap();
    let now = cluster.now();
    let mut out = Outbox::default();
    cluster
        .node_mut(MachineId(2))
        .kernel
        .restore_checkpoint(now, &ck_back, &mut out)
        .unwrap();
    cluster.revive(MachineId(0));
    let mut out = Outbox::default();
    cluster
        .node_mut(MachineId(0))
        .kernel
        .install_forwarding(server, MachineId(2), &mut out);
    println!(
        "t={}  checkpoint restored on m2 (rolled back to {} requests served);",
        cluster.now(),
        served_at_ck
    );
    println!("        m0 revived empty with a recovery forwarding address → m2");

    cluster.run_for(Duration::from_millis(500));
    println!(
        "\nt={}  client back in business: {} replies (link patched to {})",
        cluster.now(),
        client_recv(&cluster, client),
        cluster.where_is(server).unwrap()
    );
}
