//! Fault recovery by migration (§1): "working processes may be migrated
//! from a dying processor — like rats leaving a sinking ship — before it
//! completely fails."
//!
//! Machine m0 begins to degrade; the evacuation policy notices its health
//! and moves every process off; then m0 crashes for good. All four jobs
//! survive and keep computing.
//!
//! Run: `cargo run --example sinking_ship`

use demos_mp::policy::Evacuate;
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{burner_done, CpuBurner};

fn report(cluster: &Cluster, pids: &[ProcessId], label: &str) {
    print!("{label}: ");
    for &pid in pids {
        match cluster.where_is(pid) {
            Some(m) => {
                let done = cluster
                    .node(m)
                    .kernel
                    .process(pid)
                    .and_then(|p| p.program.as_ref().map(|q| burner_done(&q.save())))
                    .unwrap_or(0);
                print!("{pid:?}@{m}({done})  ");
            }
            None => print!("{pid:?}: DEAD  "),
        }
    }
    println!();
}

fn main() {
    println!("DEMOS/MP: evacuating a dying processor\n");
    let mut cluster = Cluster::mesh(3);
    let pids: Vec<ProcessId> = (0..4)
        .map(|_| {
            cluster
                .spawn(
                    MachineId(0),
                    "cpu_burner",
                    &CpuBurner::state(0, 500, 1_000),
                    ImageLayout::default(),
                )
                .unwrap()
        })
        .collect();
    cluster.run_for(Duration::from_millis(200));
    report(&cluster, &pids, "healthy        ");

    println!("\n>> m0 starts failing: 10x slowdown (health 0.1)\n");
    cluster.degrade(MachineId(0), 10.0);
    let mut driver = PolicyDriver::new(Box::new(Evacuate::new(0.5)), Duration::from_millis(50));
    driver.run(&mut cluster, Duration::from_millis(600));
    report(&cluster, &pids, "after evacuation");
    println!("   ({} evacuation orders issued)", driver.orders_issued);

    println!("\n>> m0 crashes completely\n");
    cluster.crash(MachineId(0));
    cluster.run_for(Duration::from_secs(1));
    report(&cluster, &pids, "after the crash ");

    let survivors = pids
        .iter()
        .filter(|&&p| cluster.where_is(p).is_some())
        .count();
    println!("\n{survivors}/4 processes survived the processor failure and kept working.");
}
