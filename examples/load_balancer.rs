//! Dynamic load balancing (§1): CPU-bound jobs all arrive on one machine;
//! the threshold policy with hysteresis spreads them over the cluster and
//! total throughput approaches the 4-CPU ideal.
//!
//! Run: `cargo run --example load_balancer`

use demos_mp::policy::{Hysteresis, LoadBalance};
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{burner_done, CpuBurner};

fn main() {
    println!("DEMOS/MP: dynamic load balancing across 4 machines\n");
    let mut cluster = Cluster::mesh(4);
    let pids: Vec<ProcessId> = (0..12)
        .map(|_| {
            cluster
                .spawn(
                    MachineId(0),
                    "cpu_burner",
                    &CpuBurner::state(0, 900, 1_000),
                    ImageLayout::default(),
                )
                .unwrap()
        })
        .collect();
    println!("12 CPU-bound jobs spawned, all on m0.");

    let policy = LoadBalance::new(
        2,
        Hysteresis::new(Duration::from_millis(50), Duration::from_millis(10)),
    );
    let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(20));

    for step in 1..=8 {
        driver.run(&mut cluster, Duration::from_millis(250));
        let counts: Vec<usize> = (0..4)
            .map(|i| cluster.node(MachineId(i)).kernel.nprocs())
            .collect();
        let done: u64 = pids
            .iter()
            .filter_map(|&pid| {
                let m = cluster.where_is(pid)?;
                let p = cluster.node(m).kernel.process(pid)?;
                Some(burner_done(&p.program.as_ref()?.save()))
            })
            .sum();
        println!(
            "t={:>8}  processes per machine: {:?}   iterations: {:>6}   migrations: {}",
            format!("{}", cluster.now()),
            counts,
            done,
            driver.orders_issued
        );
        let _ = step;
    }

    println!("\nCPU busy time per machine (work followed the processes):");
    for i in 0..4 {
        println!("  m{i}: {}", cluster.cpu_busy(MachineId(i)));
    }
}
