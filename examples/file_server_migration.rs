//! The paper's own test scenario (§2.3): "It migrates a file system
//! process while several user processes are performing I/O. This is more
//! difficult than moving a user process."
//!
//! We boot the full system-process set (switchboard, process manager,
//! memory scheduler, the four file-system processes), put four clients on
//! two machines doing mixed read/write traffic, and relocate the
//! client-facing file server while they hammer it.
//!
//! Run: `cargo run --example file_server_migration`

use demos_mp::sim::boot::{
    boot_system, spawn_fs_clients, total_client_errors, total_client_ops, BootConfig,
};
use demos_mp::sim::prelude::*;
use demos_mp::sysproc::fs_client_stats;

fn main() {
    println!("DEMOS/MP: migrating the file server under live client I/O\n");
    let mut cluster = Cluster::mesh(4);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    println!(
        "system processes booted on m0: switchboard={:?} pm={:?} fs_file={:?} fs_disk={:?}",
        handles.switchboard, handles.procmgr, handles.fs_file, handles.fs_disk
    );

    let mut clients =
        spawn_fs_clients(&mut cluster, &handles, MachineId(1), 2, 2, 2_000, 128, 50).unwrap();
    clients.extend(
        spawn_fs_clients(&mut cluster, &handles, MachineId(2), 2, 2, 2_000, 128, 50).unwrap(),
    );
    cluster.run_for(Duration::from_millis(300));
    println!(
        "\nt={}  warm-up: {} client ops completed, {} errors",
        cluster.now(),
        total_client_ops(&cluster, &clients),
        total_client_errors(&cluster, &clients)
    );

    println!("\n>> migrating the file server m0 → m3 while I/O is in flight …");
    cluster.migrate(handles.fs_file, MachineId(3)).unwrap();
    cluster.run_for(Duration::from_millis(700));

    println!(
        "\nt={}  file server now on {}; {} total ops, {} errors",
        cluster.now(),
        cluster.where_is(handles.fs_file).unwrap(),
        total_client_ops(&cluster, &clients),
        total_client_errors(&cluster, &clients)
    );
    println!(
        "messages forwarded for the server: {}   client links patched: {}",
        cluster.trace().forwards_for(handles.fs_file),
        cluster.trace().count(|r| matches!(r.event,
            TraceEvent::LinkUpdateApplied { migrated, patched, .. }
                if migrated == handles.fs_file && patched > 0))
    );

    println!("\nper-client view (nobody saw an error):");
    for &c in &clients {
        let m = cluster.where_is(c).unwrap();
        let stats = fs_client_stats(
            &cluster
                .node(m)
                .kernel
                .process(c)
                .unwrap()
                .program
                .as_ref()
                .unwrap()
                .save(),
        );
        println!(
            "  client {c:?} on {m}: {} ops ({} reads / {} writes), {} errors, mean latency {}us",
            stats.ops, stats.reads, stats.writes, stats.errors, stats.lat_mean_us
        );
    }
}
