//! Inter-domain migration (§3.2): "the destination processor belongs to a
//! collection of machines under a different administrative control than
//! the source processor, and may be suspicious of the source processor and
//! the incoming process. The destination processor may simply refuse to
//! accept any migrations not fitting its criteria. The source processor,
//! once rebuffed, has the option of looking elsewhere."
//!
//! Two domains share one network: machines m0–m1 (domain A, open) and
//! m2–m3 (domain B, which only admits small processes). A big process is
//! rebuffed by B and placed inside A instead; a small one crosses the
//! domain boundary; and a process running in B keeps exchanging messages
//! with its partner in A throughout — links do not care about domains, as
//! §3.2 observes ("so long as [message delivery] continues to be provided,
//! the process can continue to run").
//!
//! Run: `cargo run --example interdomain`

use demos_mp::core::OfferInfo;
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{pingpong_rallies, Cargo, PingPong};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// The cluster-wide admission rule: domain A's machines (m0, m1) accept
/// anything; domain B's machines (m2, m3) refuse images over 16 KiB.
fn admission(info: &OfferInfo) -> bool {
    if info.dest.0 <= 1 {
        true
    } else {
        info.image_len < 16 * 1024
    }
}

fn main() {
    println!("DEMOS/MP inter-domain migration (§3.2)\n");
    // One shared admission function; each engine passes its own machine
    // as `info.dest`, so the rule is per-domain.
    let mut cluster = ClusterBuilder::new(4)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Custom(admission),
            ..Default::default()
        })
        .build();

    println!("domain A = {{m0, m1}} (open)   domain B = {{m2, m3}} (admits <16 KiB only)\n");

    // A big process: B refuses it; A's other machine takes it.
    let big = cluster
        .spawn(
            m(0),
            "cargo",
            &Cargo::state(64),
            ImageLayout {
                code: 64 * 1024,
                data: 4096,
                stack: 2048,
            },
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    cluster.migrate(big, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    println!(
        "big process (68 KiB image): asked to enter domain B → {} (rejections at m2: {})",
        if cluster.where_is(big) == Some(m(0)) {
            "REFUSED, stayed in A"
        } else {
            "accepted?!"
        },
        cluster.node(m(2)).engine.stats().rejected
    );
    cluster.migrate(big, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    println!(
        "  …looked elsewhere: now on {} (inside domain A)",
        cluster.where_is(big).unwrap()
    );

    // A small process crosses into B and keeps talking to its partner in A.
    let pa = cluster
        .spawn(
            m(0),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout {
                code: 4096,
                data: 2048,
                stack: 1024,
            },
        )
        .unwrap();
    let pb = cluster
        .spawn(
            m(1),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout {
                code: 4096,
                data: 2048,
                stack: 1024,
            },
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    cluster.run_for(Duration::from_millis(100));

    cluster.migrate(pb, m(3)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    let machine = cluster.where_is(pb).unwrap();
    let r = {
        let p = cluster.node(machine).kernel.process(pb).unwrap();
        pingpong_rallies(&p.program.as_ref().unwrap().save())
    };
    println!(
        "\nsmall process (7 KiB image): admitted into domain B, now on {machine}; \
         cross-domain rally at {r} and counting"
    );
    cluster.run_for(Duration::from_millis(300));
    let r2 = {
        let p = cluster.node(machine).kernel.process(pb).unwrap();
        pingpong_rallies(&p.program.as_ref().unwrap().save())
    };
    println!("  …{r2} after another 300ms — links don't care about domain borders (§3.2)");
}
