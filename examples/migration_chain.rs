//! Forwarding chains and their collapse (§4–§5).
//!
//! A server is migrated four times, leaving a chain of 8-byte forwarding
//! addresses. A client that still holds the original (maximally stale)
//! link sends a request: the message chases the whole chain, the
//! forwarding kernel tells the client's kernel where the server went, and
//! the next request goes direct.
//!
//! Run: `cargo run --example migration_chain`

use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{client_stats, Client, EchoServer};

fn main() {
    println!("DEMOS/MP: forwarding chains after repeated migration\n");
    let n = 6usize;
    let mut cluster = Cluster::mesh(n);
    let server = cluster
        .spawn(
            MachineId(0),
            "echo_server",
            &EchoServer::state(20),
            ImageLayout::default(),
        )
        .unwrap();
    let client = cluster
        .spawn(
            MachineId(5),
            "client",
            &Client::state(3, 100_000, 16),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(10));

    for dest in 1..=4u16 {
        cluster.migrate(server, MachineId(dest)).unwrap();
        cluster.run_for(Duration::from_millis(300));
        println!("server migrated → {}", MachineId(dest));
    }

    println!("\nforwarding chain left behind (8 bytes per entry, §4):");
    for i in 0..n as u16 {
        if let Some(e) = cluster
            .node(MachineId(i))
            .kernel
            .forwarding_table()
            .get(&server)
        {
            println!(
                "  m{i}: {server:?} → {}   (forwards so far: {})",
                e.to, e.forwards
            );
        }
    }

    // Hand the client the original, maximally stale link.
    let stale = demos_mp::types::Link::to(server.at(MachineId(0)));
    cluster
        .post(client, wl::INIT, bytes::Bytes::new(), vec![stale])
        .unwrap();
    cluster.run_for(Duration::from_millis(600));

    println!("\nrequest hops observed at the server:");
    for r in cluster.trace().records() {
        if let TraceEvent::Enqueued {
            pid,
            msg_type,
            hops,
            forwarded,
            ..
        } = r.event
        {
            if pid == server && msg_type == wl::REQ {
                println!(
                    "  t={:>9}  REQ arrived with {} forwarding hops{}",
                    format!("{}", r.at),
                    hops,
                    if forwarded {
                        " (chased the chain)"
                    } else {
                        " (direct)"
                    }
                );
            }
        }
    }

    let m = cluster.where_is(client).unwrap();
    let stats = client_stats(
        &cluster
            .node(m)
            .kernel
            .process(client)
            .unwrap()
            .program
            .as_ref()
            .unwrap()
            .save(),
    );
    println!(
        "\nclient: {} requests sent, {} replies received — the stale link was",
        stats.sent, stats.recv
    );
    println!("patched after the first exchange, exactly as §5 describes.");
}
