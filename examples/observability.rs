//! The observability layer end to end: causal message spans, the
//! migration-phase profiler, the always-on flight recorder, sampled
//! gauges, and the `demos-top` cluster report.
//!
//! A ping-pong pair rallies across machines while one end is migrated.
//! Every message was stamped with a correlation id at its first kernel,
//! so the flat trace decomposes into per-message journeys: the balls
//! that chased the forwarding address show an extra hop (§4) and the
//! link update that repaired the sender's table (§5). The same trace
//! stitches into one migration lifecycle span — the §6 phase table with
//! per-step durations and byte counts. And independent of the trace,
//! every machine's flight recorder kept a bounded ring of compact
//! records: the black box a post-mortem (or the `demos-trace` CLI)
//! reads after a crash.
//!
//! Run: `cargo run --example observability`

use demos_mp::obs::recorder::{merge, parse_dump, PhaseTable};
use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::PingPong;
use demos_mp::sim::{latency_histogram, migration_spans_of, spans_of};

fn main() {
    println!("DEMOS/MP: watching a live migration through the observability layer\n");
    let mut cluster = ClusterBuilder::new(3)
        .sample_every(Duration::from_micros(500))
        .build();
    let pa = cluster
        .spawn(
            MachineId(0),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            MachineId(1),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let (la, lb) = (cluster.link_to(pa).unwrap(), cluster.link_to(pb).unwrap());
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    cluster.run_for(Duration::from_millis(50));

    println!(">> migrating pb to m2 while balls are in flight …\n");
    cluster.migrate(pb, MachineId(2)).unwrap();
    cluster.run_for(Duration::from_millis(300));

    // Per-message journeys, reconstructed from correlation ids alone.
    let spans = spans_of(cluster.trace());
    let delivered = spans.iter().filter(|s| s.latency().is_some()).count();
    println!(
        "{} message journeys traced, {delivered} delivered",
        spans.len()
    );

    println!("\njourneys that chased the forwarding address (§4):");
    for s in spans.iter().filter(|s| s.forward_hops() >= 1) {
        let hops: Vec<String> = s
            .hops
            .iter()
            .map(|h| format!("{:?}@m{}", h.kind, h.machine.0))
            .collect();
        println!(
            "  {:?} → {}  ({} forward hop(s), {} link update(s), end-to-end {})",
            s.corr,
            hops.join(" → "),
            s.forward_hops(),
            s.link_updates_sent,
            s.latency().unwrap(),
        );
    }

    // Log-bucketed HDR-style histogram: p50/p90/p99/p999 in microseconds.
    let h = latency_histogram(spans.iter().filter(|s| s.forward_hops() == 0));
    println!("\ndirect delivery latency: {}", h.summary());

    // The same trace stitched as one migration lifecycle — §6's table.
    println!("\nmigration lifecycle (the §6 phase table):");
    print!("{}", cluster.phase_report());
    for m in migration_spans_of(cluster.trace()) {
        println!(
            "  residual forwarding: {} message(s) chased pb after cleanup",
            m.forwards
        );
    }

    // The flight recorder's view: serialize every machine's black box,
    // parse it back as demos-trace would, and rebuild the phase costs
    // from the 32-byte records alone.
    let dump = cluster.recorder_dump();
    let nodes = parse_dump(&dump).expect("own dump parses");
    println!(
        "\nflight recorder: {} bytes across {} machine rings",
        dump.len(),
        nodes.len()
    );
    let table = PhaseTable::from_records(&merge(&nodes));
    print!("{}", table.render());

    // The sampled pending-queue gauge caught step 6 in the act.
    let series = cluster.series().expect("sampling enabled");
    let pending = series.series("m1.pending").expect("gauge sampled");
    println!(
        "\nm1 pending-queue gauge (sampled every 500us): peak {} held, now {}",
        pending.max(),
        pending.last().map(|(_, v)| v).unwrap_or(0),
    );

    println!("\n{}", cluster.report());
}
