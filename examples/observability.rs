//! The observability layer end to end: causal message spans, sampled
//! gauges, and the `demos-top` cluster report.
//!
//! A ping-pong pair rallies across machines while one end is migrated.
//! Every message was stamped with a correlation id at its first kernel,
//! so the flat trace decomposes into per-message journeys: the balls
//! that chased the forwarding address show an extra hop (§4) and the
//! link update that repaired the sender's table (§5). Meanwhile the
//! simulator sampled every kernel's gauges on a virtual-time cadence —
//! the pending-queue gauge catches the messages held during migration
//! (§3.1 step 6) in the act.
//!
//! Run: `cargo run --example observability`

use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::PingPong;
use demos_mp::sim::{latency_histogram, spans_of};

fn main() {
    println!("DEMOS/MP: watching a live migration through the observability layer\n");
    let mut cluster = ClusterBuilder::new(3)
        .sample_every(Duration::from_micros(500))
        .build();
    let pa = cluster
        .spawn(
            MachineId(0),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            MachineId(1),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let (la, lb) = (cluster.link_to(pa).unwrap(), cluster.link_to(pb).unwrap());
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    cluster.run_for(Duration::from_millis(50));

    println!(">> migrating pb to m2 while balls are in flight …\n");
    cluster.migrate(pb, MachineId(2)).unwrap();
    cluster.run_for(Duration::from_millis(300));

    // Per-message journeys, reconstructed from correlation ids alone.
    let spans = spans_of(cluster.trace());
    let delivered = spans.iter().filter(|s| s.latency().is_some()).count();
    println!(
        "{} message journeys traced, {delivered} delivered",
        spans.len()
    );

    println!("\njourneys that chased the forwarding address (§4):");
    for s in spans.iter().filter(|s| s.forward_hops() >= 1) {
        let hops: Vec<String> = s
            .hops
            .iter()
            .map(|h| format!("{:?}@m{}", h.kind, h.machine.0))
            .collect();
        println!(
            "  {:?} → {}  ({} forward hop(s), {} link update(s), end-to-end {})",
            s.corr,
            hops.join(" → "),
            s.forward_hops(),
            s.link_updates_sent,
            s.latency().unwrap(),
        );
    }

    let h = latency_histogram(spans.iter().filter(|s| s.forward_hops() == 0));
    println!(
        "\ndirect deliveries: {} messages, mean latency {}, p99 {}",
        h.count(),
        h.mean(),
        h.quantile(0.99),
    );

    // The sampled pending-queue gauge caught step 6 in the act.
    let series = cluster.series().expect("sampling enabled");
    let pending = series.series("m1.pending").expect("gauge sampled");
    println!(
        "\nm1 pending-queue gauge (sampled every 500us): peak {} held, now {}",
        pending.max(),
        pending.last().map(|(_, v)| v).unwrap_or(0),
    );

    println!("\n{}", cluster.report());
}
