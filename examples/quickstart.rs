//! Quickstart: transparent migration of a chattering process.
//!
//! Two ping-pong processes rally a message between machines m0 and m1;
//! we migrate one of them to m2 mid-conversation and watch the rally
//! continue without either process noticing — the forwarding address
//! redirects the first stale ball and the link update re-aims the
//! sender's link (paper §4–§5).
//!
//! Run: `cargo run --example quickstart`

use demos_mp::sim::prelude::*;
use demos_mp::sim::programs::{pingpong_rallies, PingPong};

fn rallies(cluster: &Cluster, pid: ProcessId) -> u64 {
    let m = cluster.where_is(pid).expect("alive");
    let p = cluster.node(m).kernel.process(pid).unwrap();
    pingpong_rallies(&p.program.as_ref().unwrap().save())
}

fn main() {
    println!("DEMOS/MP quickstart: migrate a process mid-conversation\n");
    let mut cluster = Cluster::mesh(3);

    let pa = cluster
        .spawn(
            MachineId(0),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            MachineId(1),
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();

    cluster.run_for(Duration::from_millis(100));
    println!(
        "t={}  rally running: pa@{} has {} rallies, pb@{} has {}",
        cluster.now(),
        cluster.where_is(pa).unwrap(),
        rallies(&cluster, pa),
        cluster.where_is(pb).unwrap(),
        rallies(&cluster, pb),
    );

    println!("\n>> migrating pb to m2 while balls are in flight …\n");
    cluster.migrate(pb, MachineId(2)).unwrap();
    cluster.run_for(Duration::from_millis(400));

    println!(
        "t={}  pb now lives on {} with {} rallies; pa kept playing ({} rallies)",
        cluster.now(),
        cluster.where_is(pb).unwrap(),
        rallies(&cluster, pb),
        rallies(&cluster, pa),
    );
    println!(
        "forwarded messages: {}   link updates applied: {}",
        cluster.trace().forwards_for(pb),
        cluster.trace().link_updates_for(pa),
    );
    let fwd = cluster.node(MachineId(1)).kernel.forwarding_table();
    println!(
        "m1 keeps an 8-byte forwarding address: {:?} → {}",
        pb,
        fwd.get(&pb).map(|e| e.to).unwrap()
    );

    // The eight steps of §3.1, reconstructed from the trace.
    println!("\nmigration timeline (§3.1):");
    for report in demos_mp::sim::migrations_of(cluster.trace(), pb) {
        print!("{}", demos_mp::sim::render(&report));
    }
}
