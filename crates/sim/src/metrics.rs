//! Measurement utilities: histograms and summary statistics.
//!
//! Dependency-free (no external stats crates): a simple log-bucketed
//! histogram for latencies and an exact reservoir for small samples.

use demos_types::Duration;

/// A log₂-bucketed histogram of microsecond durations.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` microseconds (bucket 0 covers 0–1).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 40],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 40],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros();
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(39);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(us);
        self.min = self.min.min(us);
        self.max = self.max.max(us);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or zero when empty.
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.sum.checked_div(self.count).unwrap_or(0))
    }

    /// Minimum sample (zero when empty).
    pub fn min(&self) -> Duration {
        Duration::from_micros(if self.count == 0 { 0 } else { self.min })
    }

    /// Maximum sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max)
    }

    /// Approximate quantile (bucket upper bound), `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Duration::from_micros(1u64 << (i + 1));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// Mean of an iterator of f64 (0.0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population standard deviation (0.0 when fewer than 2 samples).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values.iter().copied());
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for us in [1u64, 2, 4, 8, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Duration::from_micros(1));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(
            h.mean(),
            Duration::from_micros((1 + 2 + 4 + 8 + 100 + 1000) / 6)
        );
        assert!(h.quantile(0.5) <= Duration::from_micros(16));
        assert!(h.quantile(1.0) >= Duration::from_micros(1000));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_micros(1000));
        assert_eq!(a.min(), Duration::from_micros(10));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-9);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
