//! Summary statistics for experiment harnesses.
//!
//! Latency histograms live in `demos-obs` ([`demos_obs::Histogram`], a
//! log-bucketed HDR-style engine with p50/p90/p99/p999); what remains
//! here are the dependency-free scalar helpers.

/// Mean of an iterator of f64 (0.0 when empty).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Population standard deviation (0.0 when fewer than 2 samples).
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values.iter().copied());
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-9);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
