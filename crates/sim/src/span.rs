//! Span reconstruction: from the flat event [`Trace`] to per-message
//! journeys.
//!
//! Every message is stamped with a [`CorrId`] by the first kernel that
//! sees it, and the id rides along through retransmission, forwarding
//! (§4), pending-queue resubmission (§3.1 step 6) and the §5 link-update
//! by-product. Grouping trace events by that id therefore recovers each
//! message's complete causal journey — which machines touched it, in what
//! order, and how much virtual time each hop took — without any parsing
//! of wire bytes.

use std::collections::BTreeMap;

use demos_kernel::{MigrationPhase, TraceEvent};
use demos_obs::Histogram;
use demos_types::{CorrId, Duration, MachineId, ProcessId, Time};

use crate::trace::Trace;

/// What happened to a message at one point of its journey.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// Stamped and entered the delivery system.
    Submitted,
    /// Hit a forwarding address; resubmitted towards `to` (§4).
    Forwarded {
        /// Machine the forwarding address pointed to.
        to: MachineId,
    },
    /// Placed on the destination process's message queue.
    Enqueued,
    /// Received by the kernel (`DELIVERTOKERNEL`).
    KernelReceived,
    /// Dropped as non-deliverable.
    NonDeliverable,
}

/// One observed step of a message's journey.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Virtual time of the event.
    pub at: Time,
    /// Machine whose kernel observed it.
    pub machine: MachineId,
    /// What happened.
    pub kind: HopKind,
}

/// One message's reconstructed journey.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The correlation id tying the hops together.
    pub corr: CorrId,
    /// Destination process (from the first event carrying one).
    pub dest: ProcessId,
    /// Message type tag.
    pub msg_type: u16,
    /// Every observed hop, in trace (= virtual time) order.
    pub hops: Vec<Hop>,
    /// §5 link-update messages this journey triggered (annotation; the
    /// update inherits the chased message's id).
    pub link_updates_sent: usize,
    /// Links rewritten when those updates were applied.
    pub links_patched: usize,
}

impl Span {
    /// When the message was stamped, if its submission was traced.
    pub fn submitted_at(&self) -> Option<Time> {
        self.hops
            .iter()
            .find(|h| h.kind == HopKind::Submitted)
            .map(|h| h.at)
    }

    /// When (and where) the message finally reached a process queue or
    /// the kernel. A held-then-forwarded message is enqueued more than
    /// once; delivery is the *last* such event.
    pub fn delivered(&self) -> Option<Hop> {
        self.hops
            .iter()
            .rev()
            .find(|h| matches!(h.kind, HopKind::Enqueued | HopKind::KernelReceived))
            .copied()
    }

    /// Forwarding hops the journey took (§4 chains can stack several).
    pub fn forward_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| matches!(h.kind, HopKind::Forwarded { .. }))
            .count()
    }

    /// Whether the message ended non-deliverable.
    pub fn failed(&self) -> bool {
        self.hops.iter().any(|h| h.kind == HopKind::NonDeliverable)
    }

    /// End-to-end virtual-time latency: submission to final delivery.
    pub fn latency(&self) -> Option<Duration> {
        let start = self.submitted_at()?;
        let end = self.delivered()?.at;
        Some(Duration::from_micros(
            end.as_micros().saturating_sub(start.as_micros()),
        ))
    }

    /// Virtual time between consecutive hops, in order; `hops.len() - 1`
    /// entries. Per-hop cost of a forwarding chain.
    pub fn hop_latencies(&self) -> Vec<Duration> {
        self.hops
            .windows(2)
            .map(|w| Duration::from_micros(w[1].at.as_micros().saturating_sub(w[0].at.as_micros())))
            .collect()
    }
}

fn hop_of(event: &TraceEvent) -> Option<HopKind> {
    match *event {
        TraceEvent::Submitted { .. } => Some(HopKind::Submitted),
        TraceEvent::Enqueued { .. } => Some(HopKind::Enqueued),
        TraceEvent::KernelReceived { .. } => Some(HopKind::KernelReceived),
        TraceEvent::ForwardedMessage { to, .. } => Some(HopKind::Forwarded { to }),
        TraceEvent::NonDeliverable { .. } => Some(HopKind::NonDeliverable),
        // Listed explicitly (not `_`) so a new event type must decide
        // whether it is a hop in a message's journey.
        TraceEvent::Spawned { .. }
        | TraceEvent::Exited { .. }
        | TraceEvent::LinkUpdateSent { .. }
        | TraceEvent::LinkUpdateApplied { .. }
        | TraceEvent::Migration { .. }
        | TraceEvent::ForwardingInstalled { .. }
        | TraceEvent::ForwardingCollected { .. }
        | TraceEvent::MoveDataDone { .. }
        | TraceEvent::Log { .. } => None,
    }
}

/// Reconstruct every traced message journey, keyed and ordered by
/// correlation id. Events without a correlation id (locally synthesized
/// timer ticks, pre-observability traces) are skipped.
pub fn spans_of(trace: &Trace) -> Vec<Span> {
    let mut spans: BTreeMap<CorrId, Span> = BTreeMap::new();
    for r in trace.records() {
        let Some(corr) = r.event.corr() else { continue };
        let span = spans.entry(corr).or_insert_with(|| Span {
            corr,
            dest: ProcessId {
                creating_machine: MachineId(0),
                local_uid: 0,
            },
            msg_type: 0,
            hops: Vec::new(),
            link_updates_sent: 0,
            links_patched: 0,
        });
        match &r.event {
            TraceEvent::Submitted { dest, msg_type, .. } => {
                span.dest = *dest;
                span.msg_type = *msg_type;
            }
            TraceEvent::Enqueued { pid, msg_type, .. }
            | TraceEvent::KernelReceived { pid, msg_type, .. }
            | TraceEvent::ForwardedMessage { pid, msg_type, .. }
            | TraceEvent::NonDeliverable { pid, msg_type, .. }
                if span.hops.is_empty() =>
            {
                span.dest = *pid;
                span.msg_type = *msg_type;
            }
            TraceEvent::LinkUpdateSent { .. } => span.link_updates_sent += 1,
            TraceEvent::LinkUpdateApplied { patched, .. } => span.links_patched += patched,
            // Later hops: dest/msg_type were already fixed by the first one.
            TraceEvent::Enqueued { .. }
            | TraceEvent::KernelReceived { .. }
            | TraceEvent::ForwardedMessage { .. }
            | TraceEvent::NonDeliverable { .. } => {}
            // Listed explicitly (not `_`) so a new corr-carrying event
            // cannot silently contribute nothing to its span.
            TraceEvent::Spawned { .. }
            | TraceEvent::Exited { .. }
            | TraceEvent::Migration { .. }
            | TraceEvent::ForwardingInstalled { .. }
            | TraceEvent::ForwardingCollected { .. }
            | TraceEvent::MoveDataDone { .. }
            | TraceEvent::Log { .. } => {}
        }
        if let Some(kind) = hop_of(&r.event) {
            span.hops.push(Hop {
                at: r.at,
                machine: r.machine,
                kind,
            });
        }
    }
    spans.into_values().collect()
}

/// Reduce the trace to a [`DeliveryLedger`](demos_obs::DeliveryLedger)
/// over **user-plane** messages (`msg_type >= tags::USER_BASE`) — the
/// messages the paper's transparency claim is about. Kernel control
/// traffic (migration protocol, link maintenance, timers) has hold /
/// re-deliver semantics of its own and is excluded.
///
/// Two subtleties make a naive "one `Enqueued` per journey" rule wrong:
///
/// * §4 forwarding re-enqueues the message at the next hop — the trace
///   carries an explicit [`TraceEvent::ForwardedMessage`] between the
///   deliveries, which the ledger uses to reset its duplicate counter;
/// * §3.1 step 6 re-homes messages pending on a frozen process's queue
///   *silently* (no per-message forward event), but increments the
///   message's hop count. A second `Enqueued` with strictly greater
///   `hops` is therefore a legitimate re-home, and a synthetic
///   `Forwarded` is fed to the ledger; equal hops means the kernel
///   really delivered the same message twice.
pub fn ledger_of(trace: &Trace) -> demos_obs::DeliveryLedger {
    use demos_obs::DeliveryEvent;
    use demos_types::tags;
    let mut ledger = demos_obs::DeliveryLedger::new();
    let mut last_hops: std::collections::BTreeMap<demos_types::CorrId, u8> =
        std::collections::BTreeMap::new();
    for r in trace.records() {
        let Some(corr) = r.event.corr() else { continue };
        let ev = match r.event {
            TraceEvent::Submitted { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Submitted
            }
            TraceEvent::Enqueued { msg_type, hops, .. } if msg_type >= tags::USER_BASE => {
                let rehomed = last_hops.get(&corr).is_some_and(|&h| hops > h);
                if rehomed {
                    ledger.record(corr, DeliveryEvent::Forwarded);
                }
                last_hops.insert(corr, hops);
                DeliveryEvent::Delivered
            }
            TraceEvent::KernelReceived { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Delivered
            }
            TraceEvent::ForwardedMessage { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Forwarded
            }
            TraceEvent::NonDeliverable { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Failed
            }
            // Kernel-internal message types (guards above failed): not part
            // of the user-visible delivery ledger.
            TraceEvent::Submitted { .. }
            | TraceEvent::Enqueued { .. }
            | TraceEvent::KernelReceived { .. }
            | TraceEvent::ForwardedMessage { .. }
            | TraceEvent::NonDeliverable { .. } => continue,
            // Listed explicitly (not `_`) so a new corr-carrying event must
            // decide how it affects delivery accounting.
            TraceEvent::Spawned { .. }
            | TraceEvent::Exited { .. }
            | TraceEvent::LinkUpdateSent { .. }
            | TraceEvent::LinkUpdateApplied { .. }
            | TraceEvent::Migration { .. }
            | TraceEvent::ForwardingInstalled { .. }
            | TraceEvent::ForwardingCollected { .. }
            | TraceEvent::MoveDataDone { .. }
            | TraceEvent::Log { .. } => continue,
        };
        ledger.record(corr, ev);
    }
    ledger
}

/// Histogram of end-to-end delivery latencies over `spans` (delivered
/// journeys only), in microseconds.
pub fn latency_histogram<'a>(spans: impl IntoIterator<Item = &'a Span>) -> Histogram {
    let mut h = Histogram::new();
    for s in spans {
        if let Some(l) = s.latency() {
            h.record_duration(l);
        }
    }
    h
}

// ---------------------------------------------------------------------
// Migration lifecycle spans (the §6 phase profiler)
// ---------------------------------------------------------------------

/// How a migration lifecycle ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// Step 8 reached: the process restarted at the destination.
    Completed,
    /// The destination refused the offer (§3.2).
    Rejected,
    /// Abandoned mid-protocol (timeout, crash); resumed at the source.
    Aborted,
    /// The trace ended before the protocol did.
    InFlight,
}

/// One migration of one process, stitched from its
/// [`MigrationPhase`] trace events — §3.1's eight steps plus the
/// §4 residual: how long the forwarding address kept fielding traffic
/// after the process had left.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationSpan {
    /// The migrating process.
    pub pid: ProcessId,
    /// Machine that froze it (from the `Frozen` record).
    pub src: Option<MachineId>,
    /// Machine that took it (from the destination-side records).
    pub dest: Option<MachineId>,
    /// Step 1: removed from execution.
    pub frozen: Option<Time>,
    /// Step 2: offer sent.
    pub offered: Option<Time>,
    /// Step 3: destination allocated.
    pub allocated: Option<Time>,
    /// Step 4 complete: process state arrived.
    pub state_transferred: Option<Time>,
    /// Step 5 complete: image arrived.
    pub image_transferred: Option<Time>,
    /// Step 6: pending messages forwarded.
    pub pending_forwarded: Option<Time>,
    /// Step 7: source cleaned up, forwarding address installed.
    pub cleaned_up: Option<Time>,
    /// Step 8: restarted at the destination.
    pub restarted: Option<Time>,
    /// When a rejection/abort ended the lifecycle instead.
    pub ended: Option<Time>,
    /// How the lifecycle ended.
    pub outcome: MigrationOutcome,
    /// Total size stamped on the offer (resident + swappable + image).
    pub bytes_offered: u64,
    /// State bytes received by step 4's completion.
    pub bytes_state: u64,
    /// Full transferred total stamped at step 5.
    pub bytes_total: u64,
    /// Messages that chased the forwarding address after cleanup (§4).
    pub forwards: u64,
    /// Last time the forwarding address fielded a message.
    pub last_forward: Option<Time>,
    /// When the forwarding address was garbage-collected, if observed.
    pub forwarding_collected: Option<Time>,
}

impl MigrationSpan {
    fn open(pid: ProcessId, src: MachineId, at: Time) -> Self {
        MigrationSpan {
            pid,
            src: Some(src),
            dest: None,
            frozen: Some(at),
            offered: None,
            allocated: None,
            state_transferred: None,
            image_transferred: None,
            pending_forwarded: None,
            cleaned_up: None,
            restarted: None,
            ended: None,
            outcome: MigrationOutcome::InFlight,
            bytes_offered: 0,
            bytes_state: 0,
            bytes_total: 0,
            forwards: 0,
            last_forward: None,
            forwarding_collected: None,
        }
    }

    /// Whether step 8 was reached.
    pub fn completed(&self) -> bool {
        self.outcome == MigrationOutcome::Completed
    }

    /// Steps 1–3: freeze through destination allocation (the offer
    /// negotiation, including the §3.2 policy decision).
    pub fn negotiation(&self) -> Option<Duration> {
        Some(self.allocated?.since(self.frozen?))
    }

    /// Steps 4–5: allocation through image arrival — the state-transfer
    /// window the paper's §6 table prices by image size.
    pub fn transfer(&self) -> Option<Duration> {
        Some(self.image_transferred?.since(self.allocated?))
    }

    /// Step 8: image arrival through restart (cleanup confirmation
    /// round-trip plus scheduling).
    pub fn restart(&self) -> Option<Duration> {
        Some(self.restarted?.since(self.image_transferred?))
    }

    /// The whole off-cpu window: freeze through restart.
    pub fn frozen_total(&self) -> Option<Duration> {
        Some(self.restarted?.since(self.frozen?))
    }

    /// Residual forwarding lifetime (§4): cleanup until the forwarding
    /// address was collected, or until its last observed use.
    pub fn residual(&self) -> Option<Duration> {
        let start = self.cleaned_up?;
        let end = self.forwarding_collected.or(self.last_forward)?;
        Some(end.since(start))
    }
}

/// Stitch every migration lifecycle out of the trace, in freeze order.
///
/// The kernel's `AlreadyMigrating` guard means a process has at most one
/// lifecycle open at a time, so a per-pid "open span" map is sound.
/// `Restarted` events with no open lifecycle (checkpoint restores, the
/// engine's duplicate restart marker) are ignored. Residual forwarding
/// events after step 7 are credited to the pid's most recent span.
pub fn migration_spans_of(trace: &Trace) -> Vec<MigrationSpan> {
    let mut out: Vec<MigrationSpan> = Vec::new();
    let mut open: BTreeMap<ProcessId, usize> = BTreeMap::new();
    let mut latest: BTreeMap<ProcessId, usize> = BTreeMap::new();
    for r in trace.records() {
        match &r.event {
            TraceEvent::Migration { pid, phase, bytes } => {
                if *phase == MigrationPhase::Frozen {
                    out.push(MigrationSpan::open(*pid, r.machine, r.at));
                    open.insert(*pid, out.len() - 1);
                    latest.insert(*pid, out.len() - 1);
                    continue;
                }
                let Some(&i) = open.get(pid) else { continue };
                let s = &mut out[i];
                match phase {
                    MigrationPhase::Offered => {
                        s.offered = s.offered.or(Some(r.at));
                        s.bytes_offered = s.bytes_offered.max(*bytes);
                    }
                    MigrationPhase::Allocated => {
                        s.allocated = s.allocated.or(Some(r.at));
                        s.dest = s.dest.or(Some(r.machine));
                    }
                    MigrationPhase::StateTransferred => {
                        s.state_transferred = s.state_transferred.or(Some(r.at));
                        s.bytes_state = s.bytes_state.max(*bytes);
                    }
                    MigrationPhase::ImageTransferred => {
                        s.image_transferred = s.image_transferred.or(Some(r.at));
                        s.bytes_total = s.bytes_total.max(*bytes);
                        s.dest = s.dest.or(Some(r.machine));
                    }
                    MigrationPhase::PendingForwarded => {
                        s.pending_forwarded = s.pending_forwarded.or(Some(r.at));
                    }
                    MigrationPhase::CleanedUp => {
                        s.cleaned_up = s.cleaned_up.or(Some(r.at));
                    }
                    MigrationPhase::Restarted => {
                        s.restarted = Some(r.at);
                        s.dest = s.dest.or(Some(r.machine));
                        s.outcome = MigrationOutcome::Completed;
                        open.remove(pid);
                    }
                    MigrationPhase::Rejected => {
                        s.ended = Some(r.at);
                        s.outcome = MigrationOutcome::Rejected;
                        open.remove(pid);
                    }
                    MigrationPhase::Aborted => {
                        s.ended = Some(r.at);
                        s.outcome = MigrationOutcome::Aborted;
                        open.remove(pid);
                    }
                    MigrationPhase::Frozen => {
                        // Handled above; listed so the match stays
                        // exhaustive without a catch-all.
                    }
                }
            }
            TraceEvent::ForwardedMessage { pid, .. } => {
                if let Some(&i) = latest.get(pid) {
                    let s = &mut out[i];
                    if s.cleaned_up.is_some_and(|c| r.at >= c) {
                        s.forwards += 1;
                        s.last_forward = Some(r.at);
                    }
                }
            }
            TraceEvent::ForwardingInstalled { pid, to } => {
                if let Some(&i) = latest.get(pid) {
                    let s = &mut out[i];
                    s.dest = s.dest.or(Some(*to));
                }
            }
            TraceEvent::ForwardingCollected { pid } => {
                if let Some(&i) = latest.get(pid) {
                    let s = &mut out[i];
                    s.forwarding_collected = s.forwarding_collected.or(Some(r.at));
                }
            }
            // Listed explicitly (not `_`) so a new event type must decide
            // whether it participates in migration lifecycles.
            TraceEvent::Spawned { .. }
            | TraceEvent::Exited { .. }
            | TraceEvent::Submitted { .. }
            | TraceEvent::Enqueued { .. }
            | TraceEvent::KernelReceived { .. }
            | TraceEvent::LinkUpdateSent { .. }
            | TraceEvent::LinkUpdateApplied { .. }
            | TraceEvent::NonDeliverable { .. }
            | TraceEvent::MoveDataDone { .. }
            | TraceEvent::Log { .. } => {}
        }
    }
    out
}

/// Per-phase duration histograms over a set of migration spans — the §6
/// cost table's raw material. All values are microseconds except
/// `bytes` (total transferred bytes of completed migrations).
#[derive(Debug, Clone, Default)]
pub struct PhaseHistograms {
    /// Freeze → allocation.
    pub negotiation: Histogram,
    /// Allocation → image arrival.
    pub transfer: Histogram,
    /// Image arrival → restart.
    pub restart: Histogram,
    /// Freeze → restart.
    pub total: Histogram,
    /// Residual forwarding lifetimes (spans that forwarded anything or
    /// were collected).
    pub residual: Histogram,
    /// Transferred byte totals.
    pub bytes: Histogram,
}

/// Aggregate spans into per-phase histograms (completed lifecycles feed
/// the duration rows; residuals feed from any span that has one).
pub fn phase_histograms<'a>(spans: impl IntoIterator<Item = &'a MigrationSpan>) -> PhaseHistograms {
    let mut h = PhaseHistograms::default();
    for s in spans {
        if let Some(d) = s.negotiation() {
            h.negotiation.record_duration(d);
        }
        if let Some(d) = s.transfer() {
            h.transfer.record_duration(d);
        }
        if let Some(d) = s.restart() {
            h.restart.record_duration(d);
        }
        if let Some(d) = s.frozen_total() {
            h.total.record_duration(d);
        }
        if let Some(d) = s.residual() {
            h.residual.record_duration(d);
        }
        if s.completed() && s.bytes_total > 0 {
            h.bytes.record(s.bytes_total);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(uid: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: uid,
        }
    }

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    /// Hand-built trace: message 1 is submitted on m0, forwarded on m1,
    /// delivered on m2; message 2 dies non-deliverable.
    fn sample_trace() -> Trace {
        let c1 = CorrId::new(MachineId(0), 1);
        let c2 = CorrId::new(MachineId(0), 2);
        let mut tr = Trace::enabled();
        tr.extend(
            t(0),
            MachineId(0),
            [TraceEvent::Submitted {
                corr: c1,
                dest: pid(7),
                msg_type: 42,
            }],
        );
        tr.extend(
            t(150),
            MachineId(1),
            [
                TraceEvent::ForwardedMessage {
                    corr: c1,
                    pid: pid(7),
                    to: MachineId(2),
                    msg_type: 42,
                },
                TraceEvent::LinkUpdateSent {
                    corr: c1,
                    sender: pid(3),
                    migrated: pid(7),
                    new_machine: MachineId(2),
                },
            ],
        );
        tr.extend(
            t(400),
            MachineId(2),
            [TraceEvent::Enqueued {
                corr: c1,
                pid: pid(7),
                msg_type: 42,
                forwarded: true,
                hops: 1,
            }],
        );
        tr.extend(
            t(500),
            MachineId(0),
            [
                TraceEvent::LinkUpdateApplied {
                    corr: c1,
                    sender: pid(3),
                    migrated: pid(7),
                    patched: 2,
                },
                TraceEvent::Submitted {
                    corr: c2,
                    dest: pid(9),
                    msg_type: 42,
                },
                TraceEvent::NonDeliverable {
                    corr: c2,
                    pid: pid(9),
                    msg_type: 42,
                },
            ],
        );
        tr
    }

    #[test]
    fn reconstructs_forwarded_journey() {
        let spans = spans_of(&sample_trace());
        assert_eq!(spans.len(), 2);
        let s = &spans[0];
        assert_eq!(s.corr, CorrId::new(MachineId(0), 1));
        assert_eq!(s.dest, pid(7));
        assert_eq!(s.forward_hops(), 1);
        assert!(!s.failed());
        assert_eq!(s.delivered().unwrap().machine, MachineId(2));
        assert_eq!(s.latency(), Some(Duration::from_micros(400)));
        assert_eq!(
            s.hop_latencies(),
            vec![Duration::from_micros(150), Duration::from_micros(250)]
        );
        assert_eq!(s.link_updates_sent, 1);
        assert_eq!(s.links_patched, 2);
    }

    #[test]
    fn nondeliverable_journey_is_failed_and_unlatencied() {
        let spans = spans_of(&sample_trace());
        let s = &spans[1];
        assert!(s.failed());
        assert!(s.delivered().is_none());
        assert!(s.latency().is_none());
    }

    #[test]
    fn histogram_counts_only_delivered() {
        let spans = spans_of(&sample_trace());
        let h = latency_histogram(&spans);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 400);
    }

    fn mig(p: ProcessId, ph: MigrationPhase, bytes: u64) -> TraceEvent {
        TraceEvent::Migration {
            pid: p,
            phase: ph,
            bytes,
        }
    }

    /// Hand-built trace: pid 1 completes a full eight-step migration with
    /// residual forwarding afterwards; pid 2 is rejected; pid 1's second
    /// attempt aborts.
    fn migration_trace() -> Trace {
        let mut tr = Trace::enabled();
        let (p1, p2) = (pid(1), pid(2));
        tr.extend(t(10), MachineId(0), [mig(p1, MigrationPhase::Frozen, 0)]);
        tr.extend(t(12), MachineId(0), [mig(p1, MigrationPhase::Offered, 900)]);
        tr.extend(t(14), MachineId(0), [mig(p2, MigrationPhase::Frozen, 0)]);
        tr.extend(t(16), MachineId(0), [mig(p2, MigrationPhase::Offered, 300)]);
        tr.extend(t(20), MachineId(1), [mig(p1, MigrationPhase::Allocated, 0)]);
        tr.extend(t(22), MachineId(1), [mig(p2, MigrationPhase::Rejected, 0)]);
        tr.extend(
            t(40),
            MachineId(1),
            [mig(p1, MigrationPhase::StateTransferred, 400)],
        );
        tr.extend(
            t(55),
            MachineId(1),
            [mig(p1, MigrationPhase::ImageTransferred, 900)],
        );
        tr.extend(
            t(60),
            MachineId(0),
            [mig(p1, MigrationPhase::PendingForwarded, 0)],
        );
        tr.extend(
            t(61),
            MachineId(0),
            [
                mig(p1, MigrationPhase::CleanedUp, 0),
                TraceEvent::ForwardingInstalled {
                    pid: p1,
                    to: MachineId(1),
                },
            ],
        );
        tr.extend(t(70), MachineId(1), [mig(p1, MigrationPhase::Restarted, 0)]);
        // Residual traffic chases the forwarding address.
        tr.extend(
            t(80),
            MachineId(0),
            [TraceEvent::ForwardedMessage {
                corr: CorrId::new(MachineId(0), 5),
                pid: p1,
                to: MachineId(1),
                msg_type: 42,
            }],
        );
        tr.extend(
            t(95),
            MachineId(0),
            [TraceEvent::ForwardedMessage {
                corr: CorrId::new(MachineId(0), 6),
                pid: p1,
                to: MachineId(1),
                msg_type: 42,
            }],
        );
        tr.extend(
            t(120),
            MachineId(0),
            [TraceEvent::ForwardingCollected { pid: p1 }],
        );
        // A second attempt by p1 that gets abandoned.
        tr.extend(t(200), MachineId(1), [mig(p1, MigrationPhase::Frozen, 0)]);
        tr.extend(
            t(202),
            MachineId(1),
            [mig(p1, MigrationPhase::Offered, 900)],
        );
        tr.extend(t(260), MachineId(1), [mig(p1, MigrationPhase::Aborted, 0)]);
        tr
    }

    #[test]
    fn migration_spans_golden() {
        let spans = migration_spans_of(&migration_trace());
        assert_eq!(spans.len(), 3, "two p1 attempts + one p2 attempt");

        let done = &spans[0];
        assert_eq!(done.pid, pid(1));
        assert_eq!(done.outcome, MigrationOutcome::Completed);
        assert_eq!(done.src, Some(MachineId(0)));
        assert_eq!(done.dest, Some(MachineId(1)));
        assert_eq!(done.bytes_offered, 900);
        assert_eq!(done.bytes_state, 400);
        assert_eq!(done.bytes_total, 900);
        assert_eq!(done.negotiation(), Some(Duration::from_micros(10)));
        assert_eq!(done.transfer(), Some(Duration::from_micros(35)));
        assert_eq!(done.restart(), Some(Duration::from_micros(15)));
        assert_eq!(done.frozen_total(), Some(Duration::from_micros(60)));
        assert_eq!(done.forwards, 2, "both residual messages credited");
        assert_eq!(done.residual(), Some(Duration::from_micros(59)));

        let rejected = &spans[1];
        assert_eq!(rejected.pid, pid(2));
        assert_eq!(rejected.outcome, MigrationOutcome::Rejected);
        assert_eq!(rejected.ended, Some(t(22)));
        assert_eq!(rejected.negotiation(), None);
        assert_eq!(rejected.frozen_total(), None);

        let aborted = &spans[2];
        assert_eq!(aborted.pid, pid(1));
        assert_eq!(aborted.outcome, MigrationOutcome::Aborted);
        assert_eq!(aborted.ended, Some(t(260)));
        assert_eq!(aborted.forwards, 0, "earlier residuals stay on span 1");
    }

    #[test]
    fn duplicate_restarted_events_are_ignored() {
        // The engine emits Restarted on both the kernel and engine paths;
        // checkpoint restores add more. Only an open lifecycle absorbs one.
        let mut tr = Trace::enabled();
        tr.extend(
            t(5),
            MachineId(1),
            [mig(pid(1), MigrationPhase::Restarted, 0)],
        );
        tr.extend(
            t(10),
            MachineId(0),
            [mig(pid(1), MigrationPhase::Frozen, 0)],
        );
        tr.extend(
            t(30),
            MachineId(1),
            [mig(pid(1), MigrationPhase::Restarted, 0)],
        );
        tr.extend(
            t(31),
            MachineId(1),
            [mig(pid(1), MigrationPhase::Restarted, 0)],
        );
        let spans = migration_spans_of(&tr);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].restarted, Some(t(30)));
        assert_eq!(spans[0].outcome, MigrationOutcome::Completed);
    }

    #[test]
    fn phase_histograms_aggregate_completed_spans() {
        let spans = migration_spans_of(&migration_trace());
        let h = phase_histograms(&spans);
        assert_eq!(h.total.count(), 1);
        assert_eq!(h.negotiation.count(), 1);
        assert_eq!(h.transfer.count(), 1);
        assert_eq!(h.restart.count(), 1);
        assert_eq!(h.residual.count(), 1);
        assert_eq!(h.bytes.count(), 1);
        assert_eq!(h.total.max(), 60);
        assert_eq!(h.bytes.max(), 900);
    }
}
