//! Span reconstruction: from the flat event [`Trace`] to per-message
//! journeys.
//!
//! Every message is stamped with a [`CorrId`] by the first kernel that
//! sees it, and the id rides along through retransmission, forwarding
//! (§4), pending-queue resubmission (§3.1 step 6) and the §5 link-update
//! by-product. Grouping trace events by that id therefore recovers each
//! message's complete causal journey — which machines touched it, in what
//! order, and how much virtual time each hop took — without any parsing
//! of wire bytes.

use std::collections::BTreeMap;

use demos_kernel::TraceEvent;
use demos_types::{CorrId, Duration, MachineId, ProcessId, Time};

use crate::metrics::Histogram;
use crate::trace::Trace;

/// What happened to a message at one point of its journey.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// Stamped and entered the delivery system.
    Submitted,
    /// Hit a forwarding address; resubmitted towards `to` (§4).
    Forwarded {
        /// Machine the forwarding address pointed to.
        to: MachineId,
    },
    /// Placed on the destination process's message queue.
    Enqueued,
    /// Received by the kernel (`DELIVERTOKERNEL`).
    KernelReceived,
    /// Dropped as non-deliverable.
    NonDeliverable,
}

/// One observed step of a message's journey.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Virtual time of the event.
    pub at: Time,
    /// Machine whose kernel observed it.
    pub machine: MachineId,
    /// What happened.
    pub kind: HopKind,
}

/// One message's reconstructed journey.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The correlation id tying the hops together.
    pub corr: CorrId,
    /// Destination process (from the first event carrying one).
    pub dest: ProcessId,
    /// Message type tag.
    pub msg_type: u16,
    /// Every observed hop, in trace (= virtual time) order.
    pub hops: Vec<Hop>,
    /// §5 link-update messages this journey triggered (annotation; the
    /// update inherits the chased message's id).
    pub link_updates_sent: usize,
    /// Links rewritten when those updates were applied.
    pub links_patched: usize,
}

impl Span {
    /// When the message was stamped, if its submission was traced.
    pub fn submitted_at(&self) -> Option<Time> {
        self.hops
            .iter()
            .find(|h| h.kind == HopKind::Submitted)
            .map(|h| h.at)
    }

    /// When (and where) the message finally reached a process queue or
    /// the kernel. A held-then-forwarded message is enqueued more than
    /// once; delivery is the *last* such event.
    pub fn delivered(&self) -> Option<Hop> {
        self.hops
            .iter()
            .rev()
            .find(|h| matches!(h.kind, HopKind::Enqueued | HopKind::KernelReceived))
            .copied()
    }

    /// Forwarding hops the journey took (§4 chains can stack several).
    pub fn forward_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| matches!(h.kind, HopKind::Forwarded { .. }))
            .count()
    }

    /// Whether the message ended non-deliverable.
    pub fn failed(&self) -> bool {
        self.hops.iter().any(|h| h.kind == HopKind::NonDeliverable)
    }

    /// End-to-end virtual-time latency: submission to final delivery.
    pub fn latency(&self) -> Option<Duration> {
        let start = self.submitted_at()?;
        let end = self.delivered()?.at;
        Some(Duration::from_micros(
            end.as_micros().saturating_sub(start.as_micros()),
        ))
    }

    /// Virtual time between consecutive hops, in order; `hops.len() - 1`
    /// entries. Per-hop cost of a forwarding chain.
    pub fn hop_latencies(&self) -> Vec<Duration> {
        self.hops
            .windows(2)
            .map(|w| Duration::from_micros(w[1].at.as_micros().saturating_sub(w[0].at.as_micros())))
            .collect()
    }
}

fn hop_of(event: &TraceEvent) -> Option<HopKind> {
    match *event {
        TraceEvent::Submitted { .. } => Some(HopKind::Submitted),
        TraceEvent::Enqueued { .. } => Some(HopKind::Enqueued),
        TraceEvent::KernelReceived { .. } => Some(HopKind::KernelReceived),
        TraceEvent::ForwardedMessage { to, .. } => Some(HopKind::Forwarded { to }),
        TraceEvent::NonDeliverable { .. } => Some(HopKind::NonDeliverable),
        // Listed explicitly (not `_`) so a new event type must decide
        // whether it is a hop in a message's journey.
        TraceEvent::Spawned { .. }
        | TraceEvent::Exited { .. }
        | TraceEvent::LinkUpdateSent { .. }
        | TraceEvent::LinkUpdateApplied { .. }
        | TraceEvent::Migration { .. }
        | TraceEvent::ForwardingInstalled { .. }
        | TraceEvent::ForwardingCollected { .. }
        | TraceEvent::MoveDataDone { .. }
        | TraceEvent::Log { .. } => None,
    }
}

/// Reconstruct every traced message journey, keyed and ordered by
/// correlation id. Events without a correlation id (locally synthesized
/// timer ticks, pre-observability traces) are skipped.
pub fn spans_of(trace: &Trace) -> Vec<Span> {
    let mut spans: BTreeMap<CorrId, Span> = BTreeMap::new();
    for r in trace.records() {
        let Some(corr) = r.event.corr() else { continue };
        let span = spans.entry(corr).or_insert_with(|| Span {
            corr,
            dest: ProcessId {
                creating_machine: MachineId(0),
                local_uid: 0,
            },
            msg_type: 0,
            hops: Vec::new(),
            link_updates_sent: 0,
            links_patched: 0,
        });
        match &r.event {
            TraceEvent::Submitted { dest, msg_type, .. } => {
                span.dest = *dest;
                span.msg_type = *msg_type;
            }
            TraceEvent::Enqueued { pid, msg_type, .. }
            | TraceEvent::KernelReceived { pid, msg_type, .. }
            | TraceEvent::ForwardedMessage { pid, msg_type, .. }
            | TraceEvent::NonDeliverable { pid, msg_type, .. }
                if span.hops.is_empty() =>
            {
                span.dest = *pid;
                span.msg_type = *msg_type;
            }
            TraceEvent::LinkUpdateSent { .. } => span.link_updates_sent += 1,
            TraceEvent::LinkUpdateApplied { patched, .. } => span.links_patched += patched,
            // Later hops: dest/msg_type were already fixed by the first one.
            TraceEvent::Enqueued { .. }
            | TraceEvent::KernelReceived { .. }
            | TraceEvent::ForwardedMessage { .. }
            | TraceEvent::NonDeliverable { .. } => {}
            // Listed explicitly (not `_`) so a new corr-carrying event
            // cannot silently contribute nothing to its span.
            TraceEvent::Spawned { .. }
            | TraceEvent::Exited { .. }
            | TraceEvent::Migration { .. }
            | TraceEvent::ForwardingInstalled { .. }
            | TraceEvent::ForwardingCollected { .. }
            | TraceEvent::MoveDataDone { .. }
            | TraceEvent::Log { .. } => {}
        }
        if let Some(kind) = hop_of(&r.event) {
            span.hops.push(Hop {
                at: r.at,
                machine: r.machine,
                kind,
            });
        }
    }
    spans.into_values().collect()
}

/// Reduce the trace to a [`DeliveryLedger`](demos_obs::DeliveryLedger)
/// over **user-plane** messages (`msg_type >= tags::USER_BASE`) — the
/// messages the paper's transparency claim is about. Kernel control
/// traffic (migration protocol, link maintenance, timers) has hold /
/// re-deliver semantics of its own and is excluded.
///
/// Two subtleties make a naive "one `Enqueued` per journey" rule wrong:
///
/// * §4 forwarding re-enqueues the message at the next hop — the trace
///   carries an explicit [`TraceEvent::ForwardedMessage`] between the
///   deliveries, which the ledger uses to reset its duplicate counter;
/// * §3.1 step 6 re-homes messages pending on a frozen process's queue
///   *silently* (no per-message forward event), but increments the
///   message's hop count. A second `Enqueued` with strictly greater
///   `hops` is therefore a legitimate re-home, and a synthetic
///   `Forwarded` is fed to the ledger; equal hops means the kernel
///   really delivered the same message twice.
pub fn ledger_of(trace: &Trace) -> demos_obs::DeliveryLedger {
    use demos_obs::DeliveryEvent;
    use demos_types::tags;
    let mut ledger = demos_obs::DeliveryLedger::new();
    let mut last_hops: std::collections::BTreeMap<demos_types::CorrId, u8> =
        std::collections::BTreeMap::new();
    for r in trace.records() {
        let Some(corr) = r.event.corr() else { continue };
        let ev = match r.event {
            TraceEvent::Submitted { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Submitted
            }
            TraceEvent::Enqueued { msg_type, hops, .. } if msg_type >= tags::USER_BASE => {
                let rehomed = last_hops.get(&corr).is_some_and(|&h| hops > h);
                if rehomed {
                    ledger.record(corr, DeliveryEvent::Forwarded);
                }
                last_hops.insert(corr, hops);
                DeliveryEvent::Delivered
            }
            TraceEvent::KernelReceived { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Delivered
            }
            TraceEvent::ForwardedMessage { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Forwarded
            }
            TraceEvent::NonDeliverable { msg_type, .. } if msg_type >= tags::USER_BASE => {
                DeliveryEvent::Failed
            }
            // Kernel-internal message types (guards above failed): not part
            // of the user-visible delivery ledger.
            TraceEvent::Submitted { .. }
            | TraceEvent::Enqueued { .. }
            | TraceEvent::KernelReceived { .. }
            | TraceEvent::ForwardedMessage { .. }
            | TraceEvent::NonDeliverable { .. } => continue,
            // Listed explicitly (not `_`) so a new corr-carrying event must
            // decide how it affects delivery accounting.
            TraceEvent::Spawned { .. }
            | TraceEvent::Exited { .. }
            | TraceEvent::LinkUpdateSent { .. }
            | TraceEvent::LinkUpdateApplied { .. }
            | TraceEvent::Migration { .. }
            | TraceEvent::ForwardingInstalled { .. }
            | TraceEvent::ForwardingCollected { .. }
            | TraceEvent::MoveDataDone { .. }
            | TraceEvent::Log { .. } => continue,
        };
        ledger.record(corr, ev);
    }
    ledger
}

/// Histogram of end-to-end delivery latencies over `spans` (delivered
/// journeys only).
pub fn latency_histogram<'a>(spans: impl IntoIterator<Item = &'a Span>) -> Histogram {
    let mut h = Histogram::new();
    for s in spans {
        if let Some(l) = s.latency() {
            h.record(l);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(uid: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: uid,
        }
    }

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    /// Hand-built trace: message 1 is submitted on m0, forwarded on m1,
    /// delivered on m2; message 2 dies non-deliverable.
    fn sample_trace() -> Trace {
        let c1 = CorrId::new(MachineId(0), 1);
        let c2 = CorrId::new(MachineId(0), 2);
        let mut tr = Trace::enabled();
        tr.extend(
            t(0),
            MachineId(0),
            [TraceEvent::Submitted {
                corr: c1,
                dest: pid(7),
                msg_type: 42,
            }],
        );
        tr.extend(
            t(150),
            MachineId(1),
            [
                TraceEvent::ForwardedMessage {
                    corr: c1,
                    pid: pid(7),
                    to: MachineId(2),
                    msg_type: 42,
                },
                TraceEvent::LinkUpdateSent {
                    corr: c1,
                    sender: pid(3),
                    migrated: pid(7),
                    new_machine: MachineId(2),
                },
            ],
        );
        tr.extend(
            t(400),
            MachineId(2),
            [TraceEvent::Enqueued {
                corr: c1,
                pid: pid(7),
                msg_type: 42,
                forwarded: true,
                hops: 1,
            }],
        );
        tr.extend(
            t(500),
            MachineId(0),
            [
                TraceEvent::LinkUpdateApplied {
                    corr: c1,
                    sender: pid(3),
                    migrated: pid(7),
                    patched: 2,
                },
                TraceEvent::Submitted {
                    corr: c2,
                    dest: pid(9),
                    msg_type: 42,
                },
                TraceEvent::NonDeliverable {
                    corr: c2,
                    pid: pid(9),
                    msg_type: 42,
                },
            ],
        );
        tr
    }

    #[test]
    fn reconstructs_forwarded_journey() {
        let spans = spans_of(&sample_trace());
        assert_eq!(spans.len(), 2);
        let s = &spans[0];
        assert_eq!(s.corr, CorrId::new(MachineId(0), 1));
        assert_eq!(s.dest, pid(7));
        assert_eq!(s.forward_hops(), 1);
        assert!(!s.failed());
        assert_eq!(s.delivered().unwrap().machine, MachineId(2));
        assert_eq!(s.latency(), Some(Duration::from_micros(400)));
        assert_eq!(
            s.hop_latencies(),
            vec![Duration::from_micros(150), Duration::from_micros(250)]
        );
        assert_eq!(s.link_updates_sent, 1);
        assert_eq!(s.links_patched, 2);
    }

    #[test]
    fn nondeliverable_journey_is_failed_and_unlatencied() {
        let spans = spans_of(&sample_trace());
        let s = &spans[1];
        assert!(s.failed());
        assert!(s.delivered().is_none());
        assert!(s.latency().is_none());
    }

    #[test]
    fn histogram_counts_only_delivered() {
        let spans = spans_of(&sample_trace());
        let h = latency_histogram(&spans);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Duration::from_micros(400));
    }
}
