//! Migration reports: reconstruct the eight-step timeline of Figure 3-1
//! from the event trace, with per-phase durations — the view an operator
//! (or the process manager's accounting) would want of each migration.

use demos_types::{Duration, ProcessId, Time};

use crate::span::{migration_spans_of, MigrationOutcome};
use crate::trace::Trace;

/// One reconstructed migration of one process.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The process that moved.
    pub pid: ProcessId,
    /// Step 1: removed from execution.
    pub frozen: Time,
    /// Step 2: offer sent.
    pub offered: Option<Time>,
    /// Step 3: destination allocated the empty state.
    pub allocated: Option<Time>,
    /// Step 4 complete: resident + swappable state arrived.
    pub state_transferred: Option<Time>,
    /// Step 5 complete: image arrived, process reconstructed.
    pub image_transferred: Option<Time>,
    /// Step 6: pending messages forwarded.
    pub pending_forwarded: Option<Time>,
    /// Step 7: source cleaned up, forwarding address installed.
    pub cleaned_up: Option<Time>,
    /// Step 8: restarted at the destination (`None` for aborted/rejected
    /// migrations).
    pub restarted: Option<Time>,
    /// Whether the migration ended in rejection or abort instead.
    pub failed: bool,
}

impl MigrationReport {
    /// Total freeze-to-restart latency, if the migration completed.
    pub fn total(&self) -> Option<Duration> {
        self.restarted.map(|r| r.since(self.frozen))
    }

    /// Duration of the state+image transfer (allocation → image complete).
    pub fn transfer(&self) -> Option<Duration> {
        match (self.allocated, self.image_transferred) {
            (Some(a), Some(i)) => Some(i.since(a)),
            _ => None,
        }
    }

    /// `(label, at)` rows for rendering, in step order.
    pub fn rows(&self) -> Vec<(&'static str, Option<Time>)> {
        vec![
            ("1 frozen", Some(self.frozen)),
            ("2 offered", self.offered),
            ("3 allocated", self.allocated),
            ("4 state transferred", self.state_transferred),
            ("5 image transferred", self.image_transferred),
            ("6 pending forwarded", self.pending_forwarded),
            ("7 cleaned up", self.cleaned_up),
            ("8 restarted", self.restarted),
        ]
    }
}

/// Extract every migration of `pid` recorded in the trace, in order.
///
/// A thin per-process view over [`migration_spans_of`], which does the
/// actual lifecycle stitching for the whole trace.
pub fn migrations_of(trace: &Trace, pid: ProcessId) -> Vec<MigrationReport> {
    migration_spans_of(trace)
        .into_iter()
        .filter(|s| s.pid == pid)
        .map(|s| MigrationReport {
            pid,
            frozen: s.frozen.expect("stitched spans always have a freeze time"),
            offered: s.offered,
            allocated: s.allocated,
            state_transferred: s.state_transferred,
            image_transferred: s.image_transferred,
            pending_forwarded: s.pending_forwarded,
            cleaned_up: s.cleaned_up,
            restarted: s.restarted,
            failed: matches!(
                s.outcome,
                MigrationOutcome::Rejected | MigrationOutcome::Aborted
            ),
        })
        .collect()
}

/// Render one report as an indented text timeline.
pub fn render(report: &MigrationReport) -> String {
    let mut s = format!("migration of {}:\n", report.pid);
    for (label, at) in report.rows() {
        match at {
            Some(t) => s.push_str(&format!("  {label:<22} {t}\n")),
            None => s.push_str(&format!("  {label:<22} -\n")),
        }
    }
    if let Some(total) = report.total() {
        s.push_str(&format!("  total freeze→restart   {total}\n"));
    }
    if report.failed {
        s.push_str("  (rejected/aborted)\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::programs::Cargo;
    use demos_kernel::{ImageLayout, MigrationPhase, TraceEvent};
    use demos_types::MachineId;

    #[test]
    fn reconstructs_single_migration() {
        let mut cluster = Cluster::mesh(2);
        let pid = cluster
            .spawn(
                MachineId(0),
                "cargo",
                &Cargo::state(256),
                ImageLayout::default(),
            )
            .unwrap();
        cluster.run_for(demos_types::Duration::from_millis(5));
        cluster.migrate(pid, MachineId(1)).unwrap();
        cluster.run_for(demos_types::Duration::from_millis(400));

        let reports = migrations_of(cluster.trace(), pid);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(!r.failed);
        // Phases are totally ordered in time.
        let times: Vec<Time> = r.rows().iter().filter_map(|(_, t)| *t).collect();
        assert_eq!(times.len(), 8, "all eight steps observed");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "steps in order: {times:?}"
        );
        assert!(r.total().unwrap() > demos_types::Duration::ZERO);
        assert!(r.transfer().unwrap() <= r.total().unwrap());
        let text = render(r);
        assert!(text.contains("8 restarted"));
        assert!(text.contains("total freeze→restart"));
    }

    #[test]
    fn aborted_migration_interleaved_with_successful_one() {
        // Hand-built trace: pid's first attempt aborts after the offer;
        // a second attempt completes. Another process's migration is
        // interleaved throughout and must not bleed into pid's reports.
        let pid = ProcessId {
            creating_machine: MachineId(0),
            local_uid: 1,
        };
        let other = ProcessId {
            creating_machine: MachineId(0),
            local_uid: 2,
        };
        let ev = |p, ph| TraceEvent::Migration {
            pid: p,
            phase: ph,
            bytes: 0,
        };
        let mut tr = crate::trace::Trace::enabled();
        tr.extend(Time(10), MachineId(0), [ev(pid, MigrationPhase::Frozen)]);
        tr.extend(Time(12), MachineId(0), [ev(other, MigrationPhase::Frozen)]);
        tr.extend(Time(15), MachineId(0), [ev(pid, MigrationPhase::Offered)]);
        tr.extend(Time(18), MachineId(0), [ev(other, MigrationPhase::Offered)]);
        tr.extend(Time(20), MachineId(0), [ev(pid, MigrationPhase::Aborted)]);
        tr.extend(Time(30), MachineId(0), [ev(pid, MigrationPhase::Frozen)]);
        tr.extend(Time(32), MachineId(0), [ev(pid, MigrationPhase::Offered)]);
        tr.extend(Time(34), MachineId(1), [ev(pid, MigrationPhase::Allocated)]);
        tr.extend(
            Time(40),
            MachineId(1),
            [ev(pid, MigrationPhase::StateTransferred)],
        );
        tr.extend(
            Time(55),
            MachineId(1),
            [ev(pid, MigrationPhase::ImageTransferred)],
        );
        tr.extend(
            Time(60),
            MachineId(0),
            [ev(pid, MigrationPhase::PendingForwarded)],
        );
        tr.extend(Time(61), MachineId(0), [ev(pid, MigrationPhase::CleanedUp)]);
        tr.extend(Time(62), MachineId(0), [ev(other, MigrationPhase::Aborted)]);
        tr.extend(Time(70), MachineId(1), [ev(pid, MigrationPhase::Restarted)]);

        let reports = migrations_of(&tr, pid);
        assert_eq!(reports.len(), 2, "two attempts, two reports");
        assert!(reports[0].failed, "first attempt aborted");
        assert_eq!(reports[0].offered, Some(Time(15)));
        assert!(reports[0].restarted.is_none());
        assert_eq!(reports[0].total(), None);
        assert!(!reports[1].failed, "second attempt completed");
        assert_eq!(reports[1].frozen, Time(30));
        assert_eq!(reports[1].restarted, Some(Time(70)));
        assert_eq!(reports[1].total(), Some(Duration(40)));
        // The interleaved process gets its own single (failed) report.
        let others = migrations_of(&tr, other);
        assert_eq!(others.len(), 1);
        assert!(others[0].failed);
        assert_eq!(others[0].frozen, Time(12));
    }

    #[test]
    fn render_golden() {
        let report = MigrationReport {
            pid: ProcessId {
                creating_machine: MachineId(0),
                local_uid: 1,
            },
            frozen: Time(10),
            offered: Some(Time(15)),
            allocated: Some(Time(20)),
            state_transferred: Some(Time(40)),
            image_transferred: Some(Time(55)),
            pending_forwarded: Some(Time(60)),
            cleaned_up: Some(Time(61)),
            restarted: Some(Time(70)),
            failed: false,
        };
        assert_eq!(
            render(&report),
            "migration of p0.1:\n\
             \x20 1 frozen               10us\n\
             \x20 2 offered              15us\n\
             \x20 3 allocated            20us\n\
             \x20 4 state transferred    40us\n\
             \x20 5 image transferred    55us\n\
             \x20 6 pending forwarded    60us\n\
             \x20 7 cleaned up           61us\n\
             \x20 8 restarted            70us\n\
             \x20 total freeze→restart   60us\n"
        );
        let aborted = MigrationReport {
            offered: Some(Time(15)),
            allocated: None,
            state_transferred: None,
            image_transferred: None,
            pending_forwarded: None,
            cleaned_up: None,
            restarted: None,
            failed: true,
            ..report
        };
        let text = render(&aborted);
        assert!(text.contains("  3 allocated            -\n"), "{text}");
        assert!(text.ends_with("  (rejected/aborted)\n"), "{text}");
        assert!(!text.contains("total freeze→restart"), "{text}");
    }

    #[test]
    fn reconstructs_chains_and_failures() {
        let mut cluster = crate::cluster::ClusterBuilder::new(3)
            .migration_config(demos_core::MigrationConfig {
                accept: demos_core::AcceptPolicy::Never,
                ..Default::default()
            })
            .build();
        let pid = cluster
            .spawn(
                MachineId(0),
                "cargo",
                &Cargo::state(64),
                ImageLayout::default(),
            )
            .unwrap();
        cluster.run_for(demos_types::Duration::from_millis(5));
        cluster.migrate(pid, MachineId(1)).unwrap();
        cluster.run_for(demos_types::Duration::from_millis(400));
        let reports = migrations_of(cluster.trace(), pid);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].failed, "rejection recorded");
        assert!(reports[0].restarted.is_none());
        assert!(render(&reports[0]).contains("(rejected/aborted)"));
    }
}
