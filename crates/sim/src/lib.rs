//! Deterministic simulation harness for the DEMOS/MP reproduction.
//!
//! * [`cluster`] — the discrete-event loop driving one [`demos_core::Node`]
//!   per machine over the simulated network, with fault injection
//!   (crash, degradation) and deterministic replay;
//! * [`programs`] — seeded synthetic workload programs (ping-pong pairs,
//!   CPU burners, echo servers/clients, pipelines, inert cargo);
//! * [`recovery`] — checkpoint stable storage and automatic re-homing of
//!   processes from machines the failure detector confirmed dead;
//! * [`balance`] — drives `demos-policy` decision rules against the live
//!   cluster, playing the process manager's monitoring role;
//! * [`partition`] / [`shard`] — contiguous shard plans and the
//!   conservative parallel (PDES) executor that runs them, one worker
//!   thread per shard, bit-identical to the sequential loop;
//! * [`trace`] — the event log experiments are reconstructed from;
//! * [`span`] — per-message journey reconstruction from correlation ids,
//!   and per-migration lifecycle spans (the §6 phase profiler);
//! * [`flight`] — [`TraceEvent`](demos_kernel::TraceEvent) → flight
//!   recorder encoding (the always-on post-mortem ring, `demos-obs`);
//! * [`coverage`] — schedule-coverage feature extraction from the trace
//!   and recovery episodes (the chaos fuzzer's feedback signal);
//! * [`export`] — metrics registries, cluster snapshots, the JSON-lines
//!   exporter and the `demos-top` report (via `demos-obs`);
//! * [`metrics`] — summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod boot;
pub mod cluster;
pub mod coverage;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod partition;
pub mod programs;
pub mod recovery;
pub mod report;
pub mod shard;
pub mod span;
pub mod trace;

pub use balance::{snapshot, PolicyDriver};
pub use boot::{boot_system, BootConfig, SystemHandles};
pub use cluster::{Cluster, ClusterBuilder, StepStats};
pub use coverage::{coverage_of, features_of_trace};
pub use demos_obs::Histogram;
pub use export::machine_registry;
pub use flight::DEFAULT_RECORDER_CAPACITY;
pub use partition::ShardPlan;
pub use recovery::{RecoveryConfig, RecoveryEpisode, RecoveryManager, RecoveryStats};
pub use report::{migrations_of, render, MigrationReport};
pub use span::{
    latency_histogram, migration_spans_of, phase_histograms, spans_of, Hop, HopKind,
    MigrationOutcome, MigrationSpan, PhaseHistograms, Span,
};
pub use trace::Trace;

/// Convenience re-exports for harnesses and examples.
pub mod prelude {
    pub use crate::balance::{snapshot, PolicyDriver};
    pub use crate::boot::{boot_system, spawn_fs_clients, spawn_shell, BootConfig, SystemHandles};
    pub use crate::cluster::{Cluster, ClusterBuilder, StepStats};
    pub use crate::partition::ShardPlan;
    pub use crate::programs::{self, wl};
    pub use crate::recovery::{RecoveryConfig, RecoveryEpisode, RecoveryStats};
    pub use crate::trace::Trace;
    pub use demos_core::{AcceptPolicy, MigrationConfig, Node};
    pub use demos_kernel::{
        ExecStatus, ImageLayout, KernelConfig, MigrationPhase, Registry, TraceEvent,
    };
    pub use demos_net::{EdgeParams, Topology};
    pub use demos_obs::Histogram;
    pub use demos_types::{tags, Duration, Link, LinkAttrs, MachineId, ProcessId, Time};
}
