//! Trace collection and queries.
//!
//! Kernels emit [`TraceEvent`]s into their outboxes; the cluster
//! timestamps them into [`TraceRecord`]s. Experiments reconstruct the
//! paper's numbers from this log: administrative message counts, per-step
//! migration timings, forwarding overhead and link-update convergence.

use demos_kernel::{MigrationPhase, TraceEvent, TraceRecord};
use demos_types::{MachineId, ProcessId, Time};

/// An in-memory event log.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// A trace that records (enabled).
    pub fn enabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// A trace that drops everything (for long benchmark runs).
    pub fn disabled() -> Self {
        Trace {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append events from a kernel outbox.
    pub fn extend(
        &mut self,
        at: Time,
        machine: MachineId,
        events: impl IntoIterator<Item = TraceEvent>,
    ) {
        if self.enabled {
            self.records.extend(
                events
                    .into_iter()
                    .map(|event| TraceRecord { at, machine, event }),
            );
        }
    }

    /// All records, in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Count records matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceRecord) -> bool) -> usize {
        self.records.iter().filter(|r| pred(r)).count()
    }

    /// First record matching a predicate.
    pub fn find(&self, pred: impl Fn(&TraceRecord) -> bool) -> Option<&TraceRecord> {
        self.records.iter().find(|r| pred(r))
    }

    /// Time of the given migration phase for `pid` (first occurrence at or
    /// after `after`).
    pub fn phase_time(&self, pid: ProcessId, phase: MigrationPhase, after: Time) -> Option<Time> {
        self.records.iter().find_map(|r| {
            if let TraceEvent::Migration {
                pid: p, phase: ph, ..
            } = &r.event
            {
                if *p == pid && *ph == phase && r.at >= after {
                    return Some(r.at);
                }
            }
            None
        })
    }

    /// Messages forwarded for `pid` (forwarding-address redirections, §4).
    pub fn forwards_for(&self, pid: ProcessId) -> usize {
        self.count(|r| matches!(&r.event, TraceEvent::ForwardedMessage { pid: p, .. } if *p == pid))
    }

    /// Link updates applied that patched at least one link of `sender`.
    pub fn link_updates_for(&self, sender: ProcessId) -> usize {
        self.count(|r| {
            matches!(&r.event, TraceEvent::LinkUpdateApplied { sender: s, patched, .. }
                if *s == sender && *patched > 0)
        })
    }

    /// A compact deterministic fingerprint of the whole log, used by the
    /// replay-determinism property tests.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over a debug rendering: slow but dependency-free and
        // stable for identical logs.
        let mut h: u64 = 0xcbf29ce484222325;
        for r in &self.records {
            let s = format!("{}|{}|{:?}", r.at.as_micros(), r.machine.0, r.event);
            for b in s.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: u,
        }
    }

    #[test]
    fn extend_and_query() {
        let mut t = Trace::enabled();
        t.extend(
            Time(5),
            MachineId(0),
            vec![
                TraceEvent::Migration {
                    pid: pid(1),
                    phase: MigrationPhase::Frozen,
                    bytes: 0,
                },
                TraceEvent::ForwardedMessage {
                    corr: demos_types::CorrId::new(MachineId(0), 1),
                    pid: pid(1),
                    to: MachineId(1),
                    msg_type: 7,
                },
            ],
        );
        t.extend(
            Time(9),
            MachineId(1),
            vec![TraceEvent::Migration {
                pid: pid(1),
                phase: MigrationPhase::Restarted,
                bytes: 0,
            }],
        );
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.phase_time(pid(1), MigrationPhase::Restarted, Time(0)),
            Some(Time(9))
        );
        assert_eq!(
            t.phase_time(pid(1), MigrationPhase::Restarted, Time(10)),
            None
        );
        assert_eq!(t.forwards_for(pid(1)), 1);
        assert_eq!(t.forwards_for(pid(2)), 0);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.extend(
            Time(0),
            MachineId(0),
            vec![TraceEvent::Exited { pid: pid(1) }],
        );
        assert!(t.is_empty());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Trace::enabled();
        let mut b = Trace::enabled();
        let e1 = TraceEvent::Exited { pid: pid(1) };
        let e2 = TraceEvent::Exited { pid: pid(2) };
        a.extend(Time(0), MachineId(0), vec![e1.clone(), e2.clone()]);
        b.extend(Time(0), MachineId(0), vec![e2, e1]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.fingerprint());
    }
}
