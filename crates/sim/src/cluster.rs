//! The cluster: a deterministic discrete-event simulation of a
//! loosely-coupled multiprocessor running one DEMOS/MP node per machine.
//!
//! Three event sources interleave on a single virtual clock:
//!
//! * **frame arrivals** from the simulated network;
//! * **kernel deadlines** (process timers, transport retransmissions,
//!   migration timeouts);
//! * **CPU completions** — each machine has one CPU; a program activation
//!   occupies it for the activation's virtual cost (optionally scaled by a
//!   per-machine degradation factor, used by the sinking-ship experiment).
//!
//! All ties break deterministically (machine order, network sequence
//! numbers), and all randomness in the network is seeded, so a run with
//! the same configuration replays identically — the property the replay
//! tests pin with trace fingerprints.

use std::collections::BTreeMap;
use std::sync::Arc;

use demos_core::{MigrationConfig, Node};
use demos_kernel::{ImageLayout, KernelConfig, Outbox, Registry};
use demos_net::{EdgeParams, SimNetwork, Topology};
use demos_obs::SeriesStore;
use demos_types::{
    CorrId, DemosError, Duration, Link, MachineId, Message, MsgFlags, MsgHeader, ProcessId, Result,
    Time,
};

use crate::recovery::{RecoveryConfig, RecoveryEpisode, RecoveryManager};
use crate::trace::Trace;

/// Cluster construction.
pub struct ClusterBuilder {
    topology: Topology,
    seed: u64,
    kernel: KernelConfig,
    migration: MigrationConfig,
    registry: Registry,
    trace: bool,
    sample: Option<Duration>,
    recovery: Option<RecoveryConfig>,
}

impl ClusterBuilder {
    /// `n` machines on a full mesh with default edges.
    pub fn new(n: usize) -> Self {
        ClusterBuilder {
            topology: Topology::full_mesh(n, EdgeParams::default()),
            seed: 42,
            kernel: KernelConfig::default(),
            migration: MigrationConfig::default(),
            registry: crate::programs::registry(),
            trace: true,
            sample: None,
            recovery: None,
        }
    }

    /// Replace the topology (machine count comes from it).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Seed for all simulated randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Kernel configuration applied to every machine.
    pub fn kernel_config(mut self, cfg: KernelConfig) -> Self {
        self.kernel = cfg;
        self
    }

    /// Migration-engine configuration applied to every machine.
    pub fn migration_config(mut self, cfg: MigrationConfig) -> Self {
        self.migration = cfg;
        self
    }

    /// Register an additional program.
    pub fn register<F>(mut self, name: &str, ctor: F) -> Self
    where
        F: Fn(&[u8]) -> Box<dyn demos_kernel::Program> + Send + Sync + 'static,
    {
        self.registry.register(name, ctor);
        self
    }

    /// Disable trace collection (long benchmark runs).
    pub fn no_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Sample every kernel's metrics into time series on this virtual-time
    /// cadence (see [`Cluster::series`]). Off by default.
    pub fn sample_every(mut self, cadence: Duration) -> Self {
        self.sample = Some(cadence);
        self
    }

    /// Enable automatic crash recovery: periodic checkpoints plus
    /// re-homing when the kernels' failure detector confirms a machine
    /// dead. Pair with a non-zero
    /// [`demos_kernel::KernelConfig::heartbeat_every`], or deaths are
    /// never confirmed and the checkpoints only serve manual restores.
    pub fn recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Build the cluster.
    pub fn build(self) -> Cluster {
        let n = self.topology.len();
        let registry = self.registry.into_shared();
        let machines: Vec<MachineId> = (0..n).map(|i| MachineId(i as u16)).collect();
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| {
                Node::new(
                    MachineId(i as u16),
                    self.kernel,
                    self.migration,
                    Arc::clone(&registry),
                )
            })
            .collect();
        for node in &mut nodes {
            node.engine.set_peers(machines.clone());
            if self.kernel.heartbeat_every > Duration::ZERO {
                node.kernel
                    .watch_peers(Time::ZERO, machines.iter().copied());
            }
        }
        Cluster {
            now: Time::ZERO,
            nodes,
            net: SimNetwork::new(self.topology, self.seed),
            cpu_busy_until: vec![Time::ZERO; n],
            cpu_factor: vec![1.0; n],
            cpu_busy_total: vec![Duration::ZERO; n],
            crashed: vec![false; n],
            trace: if self.trace {
                Trace::enabled()
            } else {
                Trace::disabled()
            },
            outbox: Outbox::default(),
            registry,
            series: self.sample.map(SeriesStore::new),
            migration: self.migration,
            recovery: self.recovery.map(RecoveryManager::new),
            crash_log: BTreeMap::new(),
        }
    }
}

/// The simulated cluster.
pub struct Cluster {
    now: Time,
    nodes: Vec<Node>,
    net: SimNetwork,
    cpu_busy_until: Vec<Time>,
    cpu_factor: Vec<f64>,
    cpu_busy_total: Vec<Duration>,
    crashed: Vec<bool>,
    trace: Trace,
    outbox: Outbox,
    registry: Arc<Registry>,
    series: Option<SeriesStore>,
    migration: MigrationConfig,
    recovery: Option<RecoveryManager>,
    crash_log: BTreeMap<MachineId, Time>,
}

impl Cluster {
    /// Shorthand: `n` machines, default everything.
    pub fn mesh(n: usize) -> Cluster {
        ClusterBuilder::new(n).build()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shared program registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Immutable node access.
    pub fn node(&self, m: MachineId) -> &Node {
        &self.nodes[m.0 as usize]
    }

    /// Mutable node access (tests and bootstrap).
    pub fn node_mut(&mut self, m: MachineId) -> &mut Node {
        &mut self.nodes[m.0 as usize]
    }

    /// The network (statistics, topology).
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// Mutable network access (fault injection).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// The collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace (e.g. to clear between experiment phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// CPU time consumed by machine `m` so far.
    pub fn cpu_busy(&self, m: MachineId) -> Duration {
        self.cpu_busy_total[m.0 as usize]
    }

    /// The sampled metric time series, if the cluster was built with
    /// [`ClusterBuilder::sample_every`]. Keys are `"m{machine}.{metric}"`
    /// (`"m0.pending"`, `"m2.retransmits"`, …).
    pub fn series(&self) -> Option<&SeriesStore> {
        self.series.as_ref()
    }

    /// Take a sample now regardless of cadence (e.g. a final sample when
    /// an experiment ends between grid points). No-op without sampling.
    pub fn sample_now(&mut self) {
        let Some(store) = &mut self.series else {
            return;
        };
        for (i, node) in self.nodes.iter().enumerate() {
            if self.crashed[i] {
                continue;
            }
            store.record(
                self.now,
                MachineId(i as u16),
                &crate::export::machine_registry(node),
            );
        }
        store.advance(self.now);
    }

    fn maybe_sample(&mut self) {
        if self.series.as_ref().is_some_and(|s| s.due(self.now)) {
            self.sample_now();
        }
    }

    /// Which machine currently hosts `pid`, if any. Processes on crashed
    /// machines are gone (their state died with the processor).
    pub fn where_is(&self, pid: ProcessId) -> Option<MachineId> {
        self.nodes
            .iter()
            .enumerate()
            .find(|(i, n)| !self.crashed[*i] && n.kernel.process(pid).is_some())
            .map(|(_, n)| n.machine())
    }

    fn drain_outbox(&mut self, machine: MachineId) {
        let events = std::mem::take(&mut self.outbox.trace);
        self.trace.extend(self.now, machine, events);
        debug_assert!(
            self.outbox.migration_inbox.is_empty() && self.outbox.pull_done.is_empty(),
            "node must drain engine items"
        );
    }

    // ------------------------------------------------------------------
    // Bootstrap operations
    // ------------------------------------------------------------------

    /// Spawn a process on machine `m`.
    pub fn spawn(
        &mut self,
        m: MachineId,
        program: &str,
        state: &[u8],
        layout: ImageLayout,
    ) -> Result<ProcessId> {
        self.spawn_opt(m, program, state, layout, false)
    }

    /// Spawn with the privileged (system-process) flag.
    pub fn spawn_opt(
        &mut self,
        m: MachineId,
        program: &str,
        state: &[u8],
        layout: ImageLayout,
        privileged: bool,
    ) -> Result<ProcessId> {
        let now = self.now;
        let node = &mut self.nodes[m.0 as usize];
        let pid = node
            .kernel
            .spawn(now, program, state, layout, privileged, &mut self.outbox)?;
        self.drain_outbox(m);
        Ok(pid)
    }

    /// Mint a link to a process wherever it currently lives.
    pub fn link_to(&self, pid: ProcessId) -> Result<Link> {
        let m = self.where_is(pid).ok_or(DemosError::NoSuchProcess(pid))?;
        Ok(Link::to(pid.at(m)))
    }

    /// Deliver a message to `pid` from "outside" (modelling operator
    /// input; sent as the hosting machine's kernel).
    pub fn post(
        &mut self,
        pid: ProcessId,
        msg_type: u16,
        payload: impl Into<bytes::Bytes>,
        links: Vec<Link>,
    ) -> Result<()> {
        let m = self.where_is(pid).ok_or(DemosError::NoSuchProcess(pid))?;
        let now = self.now;
        let msg = Message {
            header: MsgHeader {
                dest: pid.at(m),
                src: ProcessId::kernel_of(m),
                src_machine: m,
                msg_type,
                flags: MsgFlags::FROM_KERNEL,
                hops: 0,
            },
            links,
            payload: payload.into(),
            corr: CorrId::NONE,
        };
        self.nodes[m.0 as usize].submit(now, msg, &mut self.net, &mut self.outbox);
        self.drain_outbox(m);
        Ok(())
    }

    /// Deliver a `DELIVERTOKERNEL` control message to `pid` from outside
    /// (modelling a system process's control op). Addressed to the given
    /// machine hint, which may be stale — the message follows forwarding
    /// addresses like any other (§2.2).
    pub fn post_dtk(
        &mut self,
        pid: ProcessId,
        hint: MachineId,
        msg_type: u16,
        payload: impl Into<bytes::Bytes>,
    ) -> Result<()> {
        let now = self.now;
        let origin = hint.0 as usize % self.nodes.len();
        let msg = Message {
            header: MsgHeader {
                dest: pid.at(hint),
                src: ProcessId::kernel_of(MachineId(origin as u16)),
                src_machine: MachineId(origin as u16),
                msg_type,
                flags: MsgFlags::FROM_KERNEL | MsgFlags::DELIVER_TO_KERNEL,
                hops: 0,
            },
            links: vec![],
            payload: payload.into(),
            corr: CorrId::NONE,
        };
        self.nodes[origin].submit(now, msg, &mut self.net, &mut self.outbox);
        self.drain_outbox(MachineId(origin as u16));
        Ok(())
    }

    /// Migrate `pid` to `dest` (harness-driven, like the paper's arbitrary
    /// test decisions). Returns an error if the process is unknown,
    /// already migrating, or already there.
    pub fn migrate(&mut self, pid: ProcessId, dest: MachineId) -> Result<()> {
        let m = self.where_is(pid).ok_or(DemosError::NoSuchProcess(pid))?;
        let now = self.now;
        let r =
            self.nodes[m.0 as usize].migrate(now, pid, dest, None, &mut self.net, &mut self.outbox);
        self.drain_outbox(m);
        r
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crash machine `m`: its CPU stops, its timers stop, and every frame
    /// to or from it is dropped.
    pub fn crash(&mut self, m: MachineId) {
        self.crashed[m.0 as usize] = true;
        self.crash_log.insert(m, self.now);
        self.net.set_down(m, true);
    }

    /// Ground-truth crash time of `m` (for latency metrics), if it was
    /// ever crashed.
    pub fn crashed_at(&self, m: MachineId) -> Option<Time> {
        self.crash_log.get(&m).copied()
    }

    /// Whether `m` is crashed.
    pub fn is_crashed(&self, m: MachineId) -> bool {
        self.crashed[m.0 as usize]
    }

    /// Revive a crashed machine with a **fresh, empty** kernel (its
    /// processes and forwarding addresses died with it). Every surviving
    /// machine's channel to it is reset — connection re-establishment —
    /// so sequence spaces restart cleanly; whatever they still had queued
    /// for the dead machine is lost. Recovery of processes is the
    /// caller's job via [`demos_kernel::Checkpoint`] restore plus
    /// [`demos_kernel::Kernel::install_forwarding`] here.
    pub fn revive(&mut self, m: MachineId) {
        let i = m.0 as usize;
        if !self.crashed[i] {
            return;
        }
        let node = &self.nodes[i];
        let kcfg = *node.kernel.config();
        // Build a brand-new node with the same identity and configuration.
        let mut fresh = Node::new(m, kcfg, self.migration, Arc::clone(&self.registry));
        let machines: Vec<MachineId> = (0..self.nodes.len()).map(|j| MachineId(j as u16)).collect();
        fresh.engine.set_peers(machines.clone());
        if kcfg.heartbeat_every > Duration::ZERO {
            fresh.kernel.watch_peers(self.now, machines);
        }
        self.nodes[i] = fresh;
        self.crashed[i] = false;
        self.cpu_busy_until[i] = self.now;
        self.cpu_factor[i] = 1.0;
        self.net.set_down(m, false);
        for j in 0..self.nodes.len() {
            if j != i {
                let now = self.now;
                self.nodes[j].peer_revived(now, m);
            }
        }
    }

    /// Sever the direct network edge between `a` and `b`, remembering its
    /// parameters so [`Cluster::heal`] can restore them. Frames in flight
    /// between machine pairs the cut disconnects are lost. Returns `false`
    /// if the machines are not directly connected.
    pub fn partition(&mut self, a: MachineId, b: MachineId) -> bool {
        self.net.partition(a, b)
    }

    /// Restore an edge severed by [`Cluster::partition`] with its original
    /// parameters. Returns `false` if the pair was not partitioned.
    pub fn heal(&mut self, a: MachineId, b: MachineId) -> bool {
        self.net.heal(a, b)
    }

    /// Restore every partitioned edge; returns how many were healed.
    pub fn heal_all(&mut self) -> usize {
        self.net.heal_all()
    }

    /// Degrade (or restore) machine `m`'s CPU: activation costs are
    /// multiplied by `factor` (1.0 = healthy). Models the paper's
    /// "gradual degradation of the processor" failure mode (§1).
    pub fn degrade(&mut self, m: MachineId, factor: f64) {
        self.cpu_factor[m.0 as usize] = factor.max(0.0);
    }

    /// Health of machine `m` as policies see it: 1.0 nominal, the inverse
    /// of the degradation factor when degraded, 0.0 when crashed.
    pub fn health(&self, m: MachineId) -> f64 {
        if self.crashed[m.0 as usize] {
            return 0.0;
        }
        let f = self.cpu_factor[m.0 as usize];
        if f <= 1.0 {
            1.0
        } else {
            1.0 / f
        }
    }

    // ------------------------------------------------------------------
    // The event loop
    // ------------------------------------------------------------------

    fn scale(cost: Duration, factor: f64) -> Duration {
        Duration::from_micros(((cost.as_micros() as f64) * factor).ceil() as u64)
    }

    /// Run every CPU that is free and has work at the current instant.
    fn run_cpus(&mut self) {
        loop {
            let mut progressed = false;
            for i in 0..self.nodes.len() {
                if self.crashed[i] || self.cpu_busy_until[i] > self.now {
                    continue;
                }
                if !self.nodes[i].has_runnable() {
                    continue;
                }
                if let Some((_pid, cost)) =
                    self.nodes[i].run_next(self.now, &mut self.net, &mut self.outbox)
                {
                    let scaled =
                        Self::scale(cost, self.cpu_factor[i]).max(Duration::from_micros(1));
                    self.cpu_busy_until[i] = self.now + scaled;
                    self.cpu_busy_total[i] += scaled;
                    progressed = true;
                }
                self.drain_outbox(MachineId(i as u16));
            }
            if !progressed {
                return;
            }
        }
    }

    /// Advance to the next event. Returns `false` when the simulation is
    /// quiescent (no pending frames, deadlines, or runnable work).
    pub fn step(&mut self) -> bool {
        self.run_cpus();
        // Find the earliest future event.
        let mut t_next: Option<Time> = self.net.next_arrival_at();
        for (i, node) in self.nodes.iter().enumerate() {
            if self.crashed[i] {
                continue;
            }
            if let Some(t) = node.next_timer_at() {
                t_next = Some(t_next.map_or(t, |x| x.min(t)));
            }
            if node.has_runnable() && self.cpu_busy_until[i] > self.now {
                let t = self.cpu_busy_until[i];
                t_next = Some(t_next.map_or(t, |x| x.min(t)));
            }
        }
        let Some(t) = t_next else { return false };
        if t > self.now {
            self.now = t;
        }
        // Deliver all frames due at or before the new instant.
        while let Some((_at, src, dst, frame)) = self.net.pop_due(self.now) {
            if self.crashed[dst.0 as usize] {
                continue;
            }
            let now = self.now;
            self.nodes[dst.0 as usize].on_frame(now, src, frame, &mut self.net, &mut self.outbox);
            self.drain_outbox(dst);
        }
        // Fire due deadlines.
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            if self.nodes[i].next_timer_at().is_some_and(|t| t <= self.now) {
                let now = self.now;
                self.nodes[i].on_time(now, &mut self.net, &mut self.outbox);
                self.drain_outbox(MachineId(i as u16));
            }
        }
        self.drive_recovery();
        self.maybe_sample();
        true
    }

    // ------------------------------------------------------------------
    // Automatic crash recovery
    // ------------------------------------------------------------------

    /// Register `pid` for checkpoint protection. No-op unless the cluster
    /// was built with [`ClusterBuilder::recovery`].
    pub fn protect(&mut self, pid: ProcessId) {
        if let Some(mgr) = &mut self.recovery {
            mgr.protected.insert(pid);
        }
    }

    /// The recovery manager's state (stats, episodes, stored
    /// checkpoints), if recovery is enabled.
    pub fn recovery(&self) -> Option<&RecoveryManager> {
        self.recovery.as_ref()
    }

    /// Stop every live kernel's heartbeat detector. A cluster with an
    /// active detector never goes quiescent (beats fly forever), so
    /// harnesses call this once recovery has settled and they want to
    /// drain the transport for final checks.
    pub fn stop_heartbeats(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.crashed[i] {
                self.nodes[i].kernel.stop_heartbeats();
            }
        }
    }

    fn drive_recovery(&mut self) {
        if self.recovery.is_none() {
            return;
        }
        self.checkpoint_pass();
        self.handle_confirmed_deaths();
    }

    /// Periodically snapshot every protected, settled (not mid-migration)
    /// process into stable storage.
    fn checkpoint_pass(&mut self) {
        let now = self.now;
        {
            let mgr = self.recovery.as_mut().expect("checked");
            if now < mgr.next_ck_at {
                return;
            }
            let every = mgr.cfg.checkpoint_every;
            let mut next = mgr.next_ck_at + every;
            while next <= now {
                next += every;
            }
            mgr.next_ck_at = next;
        }
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            let pids: Vec<ProcessId> = self.nodes[i].kernel.pids().collect();
            for pid in pids {
                let mgr = self.recovery.as_ref().expect("checked");
                if !mgr.cfg.protect_all && !mgr.protected.contains(&pid) {
                    continue;
                }
                if self.nodes[i]
                    .kernel
                    .process(pid)
                    .is_none_or(|p| p.in_migration)
                {
                    continue;
                }
                if let Ok(ck) = self.nodes[i].kernel.checkpoint(now, pid) {
                    let mgr = self.recovery.as_mut().expect("checked");
                    mgr.store.insert(pid, ck);
                    mgr.stats.checkpoints += 1;
                }
            }
        }
    }

    /// Act on kernel-level death confirmations: re-home every checkpointed
    /// process that vanished with the dead machine onto a survivor, and
    /// install forwarding addresses on the other survivors so stale links
    /// converge through the ordinary §4/§5 machinery.
    fn handle_confirmed_deaths(&mut self) {
        let mut confirmed: Vec<(MachineId, Time)> = Vec::new();
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            confirmed.extend(self.nodes[i].kernel.take_confirmed_dead());
        }
        for (dead, detected_at) in confirmed {
            let fresh = self
                .recovery
                .as_mut()
                .expect("checked")
                .handled
                .insert(dead);
            if fresh {
                self.rehome_from(dead, detected_at);
            }
        }
    }

    fn rehome_from(&mut self, dead: MachineId, detected_at: Time) {
        let now = self.now;
        let crashed_at = self.crash_log.get(&dead).copied();
        // Guard: only re-home processes that are genuinely gone. A
        // detector false-confirmation on a live (e.g. long-partitioned)
        // machine must never duplicate a process.
        let candidates: Vec<ProcessId> = {
            let mgr = self.recovery.as_ref().expect("checked");
            mgr.store
                .keys()
                .copied()
                .filter(|&pid| self.where_is(pid).is_none())
                .collect()
        };
        let survivors: Vec<MachineId> = (0..self.nodes.len())
            .map(|i| MachineId(i as u16))
            .filter(|&m| !self.crashed[m.0 as usize] && m != dead)
            .collect();
        let mut rehomed = 0u32;
        for pid in candidates {
            let ck = self
                .recovery
                .as_ref()
                .expect("checked")
                .store
                .get(&pid)
                .cloned()
                .expect("listed");
            let mut new_home = None;
            for &m in &survivors {
                let r =
                    self.nodes[m.0 as usize]
                        .kernel
                        .restore_checkpoint(now, &ck, &mut self.outbox);
                self.drain_outbox(m);
                if r.is_ok() {
                    new_home = Some(m);
                    break;
                }
            }
            match new_home {
                Some(home) => {
                    rehomed += 1;
                    self.recovery.as_mut().expect("checked").stats.rehomed += 1;
                    // Forwarding on every *other* survivor (never on the
                    // new home itself — a self-pointing entry would loop).
                    for &m in &survivors {
                        if m != home {
                            self.nodes[m.0 as usize].kernel.install_forwarding(
                                pid,
                                home,
                                &mut self.outbox,
                            );
                            self.drain_outbox(m);
                        }
                    }
                }
                None => {
                    self.recovery
                        .as_mut()
                        .expect("checked")
                        .stats
                        .rehome_failures += 1
                }
            }
        }
        let mgr = self.recovery.as_mut().expect("checked");
        mgr.stats.deaths_handled += 1;
        mgr.episodes.push(RecoveryEpisode {
            machine: dead,
            crashed_at,
            detected_at,
            recovered_at: now,
            rehomed,
        });
    }

    /// Run until virtual time `t` (or quiescence, whichever first).
    pub fn run_until(&mut self, t: Time) {
        while self.now < t {
            if !self.step() {
                return;
            }
        }
        // Execute any work that became runnable exactly at the boundary.
        self.run_cpus();
    }

    /// Run for `d` more virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until the cluster is quiescent or `limit` virtual time has
    /// passed; returns the finishing time.
    pub fn run_quiescent(&mut self, limit: Duration) -> Time {
        let deadline = self.now + limit;
        loop {
            if self.now >= deadline || !self.step() {
                return self.now;
            }
        }
    }

    /// Run for `d` more virtual time in `quantum`-sized slices, invoking
    /// `on_quantum` after each slice (and once more if the cluster goes
    /// quiescent early). The callback returning `false` stops the run —
    /// this is how the chaos harness interleaves continuous invariant
    /// checks with execution. Returns the finishing time.
    pub fn run_with_quantum<F>(&mut self, d: Duration, quantum: Duration, mut on_quantum: F) -> Time
    where
        F: FnMut(&Cluster) -> bool,
    {
        let deadline = self.now + d;
        let q = quantum.max(Duration::from_micros(1));
        while self.now < deadline {
            let target = (self.now + q).min(deadline);
            self.run_until(target);
            if !on_quantum(self) {
                return self.now;
            }
            if self.now < target {
                // run_until returned early: no pending events anywhere.
                return self.now;
            }
        }
        self.now
    }

    /// Whether every surviving machine's reliable channel has drained
    /// (nothing unacknowledged) and no frames remain in flight — the
    /// "queues drain" half of the transport-sanity invariant.
    pub fn transport_quiescent(&self) -> bool {
        self.net.in_flight() == 0
            && self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.crashed[*i])
                .all(|(_, n)| n.kernel.transport_quiescent())
    }

    /// Follow forwarding addresses for `pid` starting from machine
    /// `start`, returning every machine visited (`start` included). The
    /// walk stops at a machine that hosts the process, has no forwarding
    /// entry, or is crashed — or after `len() + 1` entries, which can only
    /// happen if the chain revisits a machine (a forwarding cycle; the
    /// chaos acyclicity checker flags exactly that case).
    pub fn forwarding_chain(&self, start: MachineId, pid: ProcessId) -> Vec<MachineId> {
        let mut chain = vec![start];
        let mut cur = start;
        while chain.len() <= self.nodes.len() {
            let i = cur.0 as usize;
            if self.crashed[i] || self.nodes[i].kernel.process(pid).is_some() {
                break;
            }
            match self.nodes[i].kernel.forwarding_next(pid) {
                Some(next) => {
                    chain.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        chain
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.now)
            .field("machines", &self.nodes.len())
            .field("in_flight_frames", &self.net.in_flight())
            .finish()
    }
}
