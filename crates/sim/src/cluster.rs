//! The cluster: a deterministic discrete-event simulation of a
//! loosely-coupled multiprocessor running one DEMOS/MP node per machine.
//!
//! Three event sources interleave on a single virtual clock:
//!
//! * **frame arrivals** from the simulated network;
//! * **kernel deadlines** (process timers, transport retransmissions,
//!   migration timeouts);
//! * **CPU completions** — each machine has one CPU; a program activation
//!   occupies it for the activation's virtual cost (optionally scaled by a
//!   per-machine degradation factor, used by the sinking-ship experiment).
//!
//! All ties break deterministically (machine order, network sequence
//! numbers), and all randomness in the network is seeded, so a run with
//! the same configuration replays identically — the property the replay
//! tests pin with trace fingerprints.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

use demos_core::{MigrationConfig, Node};
use demos_kernel::{ImageLayout, KernelConfig, Outbox, Registry};
use demos_net::{EdgeParams, SimNetwork, Topology};
use demos_obs::SeriesStore;
use demos_types::proto::KernelOp;
use demos_types::{
    tags, CorrId, DemosError, Duration, Link, MachineId, Message, MsgFlags, MsgHeader, ProcessId,
    Result, Time, Wire,
};

use demos_obs::FlightRecorder;

use crate::flight::{self, DEFAULT_RECORDER_CAPACITY};
use crate::partition::ShardPlan;
use crate::recovery::{RecoveryConfig, RecoveryEpisode, RecoveryManager};
use crate::trace::Trace;

/// Cluster construction.
pub struct ClusterBuilder {
    topology: Topology,
    seed: u64,
    kernel: KernelConfig,
    migration: MigrationConfig,
    registry: Registry,
    trace: bool,
    sample: Option<Duration>,
    recovery: Option<RecoveryConfig>,
    recorder_capacity: usize,
    shards: usize,
}

impl ClusterBuilder {
    /// `n` machines on a full mesh with default edges.
    pub fn new(n: usize) -> Self {
        ClusterBuilder {
            topology: Topology::full_mesh(n, EdgeParams::default()),
            seed: 42,
            kernel: KernelConfig::default(),
            migration: MigrationConfig::default(),
            registry: crate::programs::registry(),
            trace: true,
            sample: None,
            recovery: None,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
            shards: 1,
        }
    }

    /// Replace the topology (machine count comes from it).
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Seed for all simulated randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Kernel configuration applied to every machine.
    pub fn kernel_config(mut self, cfg: KernelConfig) -> Self {
        self.kernel = cfg;
        self
    }

    /// Migration-engine configuration applied to every machine.
    pub fn migration_config(mut self, cfg: MigrationConfig) -> Self {
        self.migration = cfg;
        self
    }

    /// Register an additional program.
    pub fn register<F>(mut self, name: &str, ctor: F) -> Self
    where
        F: Fn(&[u8]) -> Box<dyn demos_kernel::Program> + Send + Sync + 'static,
    {
        self.registry.register(name, ctor);
        self
    }

    /// Disable trace collection (long benchmark runs).
    pub fn no_trace(mut self) -> Self {
        self.trace = false;
        self
    }

    /// Sample every kernel's metrics into time series on this virtual-time
    /// cadence (see [`Cluster::series`]). Off by default.
    pub fn sample_every(mut self, cadence: Duration) -> Self {
        self.sample = Some(cadence);
        self
    }

    /// Per-machine flight-recorder ring capacity, in records. The
    /// recorder stays on even with [`ClusterBuilder::no_trace`] — it is
    /// the black box consulted after crashes and invariant violations.
    /// `0` disables it entirely.
    pub fn recorder_capacity(mut self, records: usize) -> Self {
        self.recorder_capacity = records;
        self
    }

    /// Run the event loop on `s` worker threads (shards) where the
    /// configuration permits (see [`crate::shard`]). `1` (the default)
    /// is the plain sequential loop. Results are bit-identical across
    /// shard counts; configurations the conservative executor cannot
    /// shard safely — lossy links, automatic recovery, zero-latency
    /// edges — silently fall back to sequential execution.
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = s.max(1);
        self
    }

    /// Enable automatic crash recovery: periodic checkpoints plus
    /// re-homing when the kernels' failure detector confirms a machine
    /// dead. Pair with a non-zero
    /// [`demos_kernel::KernelConfig::heartbeat_every`], or deaths are
    /// never confirmed and the checkpoints only serve manual restores.
    pub fn recovery(mut self, cfg: RecoveryConfig) -> Self {
        self.recovery = Some(cfg);
        self
    }

    /// Build the cluster.
    pub fn build(self) -> Cluster {
        let n = self.topology.len();
        let registry = self.registry.into_shared();
        let machines: Vec<MachineId> = (0..n).map(|i| MachineId(i as u16)).collect();
        let mut nodes: Vec<Node> = (0..n)
            .map(|i| {
                Node::new(
                    MachineId(i as u16),
                    self.kernel,
                    self.migration,
                    Arc::clone(&registry),
                )
            })
            .collect();
        for node in &mut nodes {
            node.engine.set_peers(machines.clone());
            if self.kernel.heartbeat_every > Duration::ZERO {
                node.kernel
                    .watch_peers(Time::ZERO, machines.iter().copied());
            }
        }
        let mut c = Cluster {
            now: Time::ZERO,
            nodes,
            net: SimNetwork::new(self.topology, self.seed),
            cpu_busy_until: vec![Time::ZERO; n],
            cpu_factor_ppm: vec![1_000_000; n],
            cpu_busy_total: vec![Duration::ZERO; n],
            crashed: vec![false; n],
            trace: if self.trace {
                Trace::enabled()
            } else {
                Trace::disabled()
            },
            outbox: Outbox::default(),
            recorders: (0..n)
                .map(|i| FlightRecorder::new(i as u16, self.recorder_capacity))
                .collect(),
            registry,
            series: self.sample.map(SeriesStore::new),
            migration: self.migration,
            recovery: self.recovery.map(RecoveryManager::new),
            crash_log: BTreeMap::new(),
            events: BinaryHeap::new(),
            node_deadline: vec![None; n],
            runnable: BTreeSet::new(),
            dirty: Vec::new(),
            cpu_scratch: Vec::new(),
            fired_scratch: Vec::new(),
            step_stats: StepStats::default(),
            shards: self.shards,
            send_idx: vec![0; n],
            plan_cache: None,
            parallel_segments: 0,
        };
        // Prime the event index with each node's boot state (e.g. the
        // heartbeat schedules armed by `watch_peers` above).
        for i in 0..n {
            c.touch_node(i);
        }
        c
    }
}

/// Event kinds in the cluster's global index. Node deadlines (timers,
/// retransmissions, heartbeats, migration timeouts) and CPU completions
/// share one heap; the kind is part of the entry so validity can be
/// checked per kind.
pub(crate) const EV_TIMER: u8 = 0;
pub(crate) const EV_CPU: u8 = 1;

/// Instrumentation for the event loop: how many nodes each phase of
/// [`Cluster::step`] actually touches. The scheduler-cost regression test
/// pins a visit budget on a mostly-idle cluster — reintroducing an O(n)
/// scan blows the budget immediately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Completed [`Cluster::step`] calls that advanced the simulation.
    /// **Mode-dependent**: the sharded executor counts one step per
    /// shard per local instant, so totals differ from the sequential
    /// loop's global step count. The visit counters below are exact in
    /// both modes — equality tests compare those, never `steps`.
    pub steps: u64,
    /// Nodes examined as CPU candidates by the run-CPUs phase.
    pub cpu_visits: u64,
    /// Frames delivered to nodes.
    pub frame_visits: u64,
    /// Node deadline firings (`on_time` calls).
    pub timer_visits: u64,
}

impl StepStats {
    /// Total node visits across all phases.
    pub fn node_visits(&self) -> u64 {
        self.cpu_visits + self.frame_visits + self.timer_visits
    }
}

/// The simulated cluster.
pub struct Cluster {
    pub(crate) now: Time,
    pub(crate) nodes: Vec<Node>,
    pub(crate) net: SimNetwork,
    pub(crate) cpu_busy_until: Vec<Time>,
    /// Per-machine CPU degradation factor in parts-per-million
    /// (1_000_000 = healthy). Integer so scaled costs are exact.
    pub(crate) cpu_factor_ppm: Vec<u64>,
    pub(crate) cpu_busy_total: Vec<Duration>,
    pub(crate) crashed: Vec<bool>,
    pub(crate) trace: Trace,
    outbox: Outbox,
    /// Per-machine black boxes: bounded rings of the most recent kernel
    /// events, kept even when the full [`Trace`] is disabled.
    pub(crate) recorders: Vec<FlightRecorder>,
    registry: Arc<Registry>,
    pub(crate) series: Option<SeriesStore>,
    migration: MigrationConfig,
    recovery: Option<RecoveryManager>,
    crash_log: BTreeMap<MachineId, Time>,
    /// Global event index: min-heap of `(time, kind, node)` entries over
    /// node deadlines and CPU completions, lazily invalidated (see
    /// [`Cluster::event_valid`]). Makes finding the next event an
    /// O(log n) peek instead of a scan over every machine.
    pub(crate) events: BinaryHeap<Reverse<(Time, u8, usize)>>,
    /// Authoritative cache of each node's earliest deadline; a TIMER heap
    /// entry is live iff it matches this cache.
    pub(crate) node_deadline: Vec<Option<Time>>,
    /// Nodes whose run queue may hold work, maintained incrementally —
    /// `run_cpus` walks this set instead of `0..nodes.len()`.
    pub(crate) runnable: BTreeSet<usize>,
    /// Nodes handed out via [`Cluster::node_mut`] since the last event-loop
    /// entry; their cached state is recomputed before it is trusted.
    dirty: Vec<usize>,
    /// Reused buffers for the per-step candidate and fired-node lists,
    /// so the hot loop allocates nothing.
    cpu_scratch: Vec<usize>,
    fired_scratch: Vec<usize>,
    pub(crate) step_stats: StepStats,
    /// Requested worker-thread count ([`ClusterBuilder::shards`]).
    shards: usize,
    /// Per-machine canonical send counters for the sharded executor
    /// (monotone across segments; only key *order* matters).
    pub(crate) send_idx: Vec<u64>,
    /// Shard plan memoised against (topology version, shard count).
    plan_cache: Option<(usize, ShardPlan)>,
    /// How many parallel segments have actually executed — lets tests
    /// assert the parallel path was exercised rather than silently
    /// falling back to sequential.
    pub(crate) parallel_segments: u64,
}

impl Cluster {
    /// Shorthand: `n` machines, default everything.
    pub fn mesh(n: usize) -> Cluster {
        ClusterBuilder::new(n).build()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shared program registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Immutable node access.
    pub fn node(&self, m: MachineId) -> &Node {
        &self.nodes[m.0 as usize]
    }

    /// Mutable node access (tests and bootstrap).
    pub fn node_mut(&mut self, m: MachineId) -> &mut Node {
        // The caller may arm timers or enqueue work behind the event
        // index's back; re-derive this node's cached state before the
        // next event-loop pass trusts it.
        self.dirty.push(m.0 as usize);
        &mut self.nodes[m.0 as usize]
    }

    /// The network (statistics, topology).
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// Mutable network access (fault injection).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// The collected trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace (e.g. to clear between experiment phases).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// CPU time consumed by machine `m` so far.
    pub fn cpu_busy(&self, m: MachineId) -> Duration {
        self.cpu_busy_total[m.0 as usize]
    }

    /// Machine `m`'s flight recorder (its bounded event ring).
    pub fn recorder(&self, m: MachineId) -> &FlightRecorder {
        &self.recorders[m.0 as usize]
    }

    /// Render machine `m`'s recent flight-recorder tail as text — the
    /// post-mortem view used on crash recovery and invariant violations.
    pub fn render_postmortem(&self, m: MachineId) -> String {
        let rec = &self.recorders[m.0 as usize];
        let mut s = format!(
            "flight recorder m{} ({} recorded, {} dropped):\n",
            m.0,
            rec.total_recorded(),
            rec.total_recorded().saturating_sub(rec.len() as u64),
        );
        if rec.capacity() == 0 {
            s.push_str("  (recorder disabled)\n");
            return s;
        }
        for r in rec.tail(32) {
            s.push_str("  ");
            s.push_str(&demos_obs::recorder::render_record(&r));
            s.push('\n');
        }
        s
    }

    /// Serialize every machine's recorder ring — crashed machines
    /// included (a black box survives its aircraft) — as one dump
    /// readable by `demos-trace` and [`demos_obs::recorder::parse_dump`].
    pub fn recorder_dump(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for rec in &self.recorders {
            rec.dump_into(&mut out);
        }
        out
    }

    /// Cumulative event-loop instrumentation (node visits per phase).
    pub fn step_stats(&self) -> StepStats {
        self.step_stats
    }

    /// Reset the instrumentation counters (e.g. after warm-up).
    pub fn reset_step_stats(&mut self) {
        self.step_stats = StepStats::default();
    }

    /// The sampled metric time series, if the cluster was built with
    /// [`ClusterBuilder::sample_every`]. Keys are `"m{machine}.{metric}"`
    /// (`"m0.pending"`, `"m2.retransmits"`, …).
    pub fn series(&self) -> Option<&SeriesStore> {
        self.series.as_ref()
    }

    /// Take a sample now regardless of cadence (e.g. a final sample when
    /// an experiment ends between grid points). No-op without sampling.
    pub fn sample_now(&mut self) {
        let Some(store) = &mut self.series else {
            return;
        };
        for (i, node) in self.nodes.iter().enumerate() {
            if self.crashed[i] {
                continue;
            }
            store.record(
                self.now,
                MachineId(i as u16),
                &crate::export::machine_registry(node),
            );
        }
        store.advance(self.now);
    }

    fn maybe_sample(&mut self) {
        if self.series.as_ref().is_some_and(|s| s.due(self.now)) {
            self.sample_now();
        }
    }

    /// Which machine currently hosts `pid`, if any. Processes on crashed
    /// machines are gone (their state died with the processor).
    pub fn where_is(&self, pid: ProcessId) -> Option<MachineId> {
        self.nodes
            .iter()
            .enumerate()
            .find(|(i, n)| !self.crashed[*i] && n.kernel.process(pid).is_some())
            .map(|(_, n)| n.machine())
    }

    fn drain_outbox(&mut self, machine: MachineId) {
        let events = std::mem::take(&mut self.outbox.trace);
        let rec = &mut self.recorders[machine.0 as usize];
        if rec.capacity() > 0 {
            for ev in &events {
                rec.record(flight::encode(self.now, machine, ev));
            }
        }
        self.trace.extend(self.now, machine, events);
        debug_assert!(
            self.outbox.migration_inbox.is_empty() && self.outbox.pull_done.is_empty(),
            "node must drain engine items"
        );
    }

    // ------------------------------------------------------------------
    // Bootstrap operations
    // ------------------------------------------------------------------

    /// Spawn a process on machine `m`.
    pub fn spawn(
        &mut self,
        m: MachineId,
        program: &str,
        state: &[u8],
        layout: ImageLayout,
    ) -> Result<ProcessId> {
        self.spawn_opt(m, program, state, layout, false)
    }

    /// Spawn with the privileged (system-process) flag.
    pub fn spawn_opt(
        &mut self,
        m: MachineId,
        program: &str,
        state: &[u8],
        layout: ImageLayout,
        privileged: bool,
    ) -> Result<ProcessId> {
        let now = self.now;
        let node = &mut self.nodes[m.0 as usize];
        let pid = node
            .kernel
            .spawn(now, program, state, layout, privileged, &mut self.outbox)?;
        self.drain_outbox(m);
        self.touch_node(m.0 as usize);
        Ok(pid)
    }

    /// Mint a link to a process wherever it currently lives.
    pub fn link_to(&self, pid: ProcessId) -> Result<Link> {
        let m = self.where_is(pid).ok_or(DemosError::NoSuchProcess(pid))?;
        Ok(Link::to(pid.at(m)))
    }

    /// Deliver a message to `pid` from "outside" (modelling operator
    /// input; sent as the hosting machine's kernel).
    pub fn post(
        &mut self,
        pid: ProcessId,
        msg_type: u16,
        payload: impl Into<bytes::Bytes>,
        links: Vec<Link>,
    ) -> Result<()> {
        let m = self.where_is(pid).ok_or(DemosError::NoSuchProcess(pid))?;
        let now = self.now;
        let msg = Message {
            header: MsgHeader {
                dest: pid.at(m),
                src: ProcessId::kernel_of(m),
                src_machine: m,
                msg_type,
                flags: MsgFlags::FROM_KERNEL,
                hops: 0,
            },
            links,
            payload: payload.into(),
            corr: CorrId::NONE,
        };
        self.nodes[m.0 as usize].submit(now, msg, &mut self.net, &mut self.outbox);
        self.drain_outbox(m);
        self.touch_node(m.0 as usize);
        Ok(())
    }

    /// Deliver a `DELIVERTOKERNEL` control message to `pid` from outside
    /// (modelling a system process's control op). Addressed to the given
    /// machine hint, which may be stale — the message follows forwarding
    /// addresses like any other (§2.2).
    pub fn post_dtk(
        &mut self,
        pid: ProcessId,
        hint: MachineId,
        msg_type: u16,
        payload: impl Into<bytes::Bytes>,
    ) -> Result<()> {
        let now = self.now;
        let origin = hint.0 as usize % self.nodes.len();
        let msg = Message {
            header: MsgHeader {
                dest: pid.at(hint),
                src: ProcessId::kernel_of(MachineId(origin as u16)),
                src_machine: MachineId(origin as u16),
                msg_type,
                flags: MsgFlags::FROM_KERNEL | MsgFlags::DELIVER_TO_KERNEL,
                hops: 0,
            },
            links: vec![],
            payload: payload.into(),
            corr: CorrId::NONE,
        };
        self.nodes[origin].submit(now, msg, &mut self.net, &mut self.outbox);
        self.drain_outbox(MachineId(origin as u16));
        self.touch_node(origin);
        Ok(())
    }

    /// Suspend `pid`: posts a [`KernelOp::Suspend`] control op, which
    /// follows forwarding addresses to wherever the process lives now.
    pub fn suspend(&mut self, pid: ProcessId, hint: MachineId) -> Result<()> {
        self.post_dtk(pid, hint, tags::KERNEL_OP, KernelOp::Suspend.to_bytes())
    }

    /// Resume a suspended `pid` (the [`KernelOp::Resume`] control op).
    pub fn resume(&mut self, pid: ProcessId, hint: MachineId) -> Result<()> {
        self.post_dtk(pid, hint, tags::KERNEL_OP, KernelOp::Resume.to_bytes())
    }

    /// Ask `pid`'s kernel for a status report (the
    /// [`KernelOp::QueryStatus`] control op); the answer arrives as a
    /// message, like every other kernel interaction.
    pub fn query_status(&mut self, pid: ProcessId, hint: MachineId) -> Result<()> {
        self.post_dtk(pid, hint, tags::KERNEL_OP, KernelOp::QueryStatus.to_bytes())
    }

    /// Migrate `pid` to `dest` (harness-driven, like the paper's arbitrary
    /// test decisions). Returns an error if the process is unknown,
    /// already migrating, or already there.
    pub fn migrate(&mut self, pid: ProcessId, dest: MachineId) -> Result<()> {
        let m = self.where_is(pid).ok_or(DemosError::NoSuchProcess(pid))?;
        let now = self.now;
        let r =
            self.nodes[m.0 as usize].migrate(now, pid, dest, None, &mut self.net, &mut self.outbox);
        self.drain_outbox(m);
        self.touch_node(m.0 as usize);
        r
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crash machine `m`: its CPU stops, its timers stop, and every frame
    /// to or from it is dropped.
    pub fn crash(&mut self, m: MachineId) {
        self.crashed[m.0 as usize] = true;
        self.crash_log.insert(m, self.now);
        self.net.set_down(m, true);
        // Clears the cached deadline and runnable membership; entries
        // already in the heap die by validity check.
        self.touch_node(m.0 as usize);
    }

    /// Ground-truth crash time of `m` (for latency metrics), if it was
    /// ever crashed.
    pub fn crashed_at(&self, m: MachineId) -> Option<Time> {
        self.crash_log.get(&m).copied()
    }

    /// Whether `m` is crashed.
    pub fn is_crashed(&self, m: MachineId) -> bool {
        self.crashed[m.0 as usize]
    }

    /// Revive a crashed machine with a **fresh, empty** kernel (its
    /// processes and forwarding addresses died with it). Every surviving
    /// machine's channel to it is reset — connection re-establishment —
    /// so sequence spaces restart cleanly; whatever they still had queued
    /// for the dead machine is lost. Recovery of processes is the
    /// caller's job via [`demos_kernel::Checkpoint`] restore plus
    /// [`demos_kernel::Kernel::install_forwarding`] here.
    pub fn revive(&mut self, m: MachineId) {
        let i = m.0 as usize;
        if !self.crashed[i] {
            return;
        }
        // A reboot is its own death certificate. If the machine comes
        // back *before* any peer's failure detector confirmed the death
        // (silence shorter than the detection window), no verdict will
        // ever fire for the old incarnation — yet its processes are just
        // as gone: the fresh kernel boots empty. Capture the black box
        // now and re-home the casualties right after the swap below.
        let reboot_rehome = self
            .recovery
            .as_ref()
            .is_some_and(|mgr| !mgr.handled.contains(&m))
            .then(|| self.render_postmortem(m));
        let node = &self.nodes[i];
        let kcfg = *node.kernel.config();
        // The boot record survives the crash: the fresh incarnation must
        // mint process uids and correlation ids above the old one's, or
        // they collide with the old incarnation's still-live remnants.
        let (uid_wm, corr_wm) = node.kernel.id_watermarks();
        // Connection incarnations also survive the crash: each channel the
        // pair will re-establish starts one above whatever either end used
        // before, so frames of the old incarnation still in flight (the
        // machine may reboot faster than the network delivers) are
        // recognizably stale instead of corrupting fresh sequence spaces.
        // Taking the max of both ends covers a peer that rebooted while
        // *we* were down and could not follow its bump.
        let epochs: Vec<(MachineId, u32)> = (0..self.nodes.len())
            .filter(|&j| j != i)
            .map(|j| {
                let peer = MachineId(j as u16);
                let ours = node.kernel.channel_epoch(peer);
                let theirs = self.nodes[j].kernel.channel_epoch(m);
                (peer, ours.max(theirs) + 1)
            })
            .collect();
        // Build a brand-new node with the same identity and configuration.
        let mut fresh = Node::new(m, kcfg, self.migration, Arc::clone(&self.registry));
        fresh.kernel.resume_id_watermarks(uid_wm, corr_wm);
        let machines: Vec<MachineId> = (0..self.nodes.len()).map(|j| MachineId(j as u16)).collect();
        fresh.engine.set_peers(machines.clone());
        if kcfg.heartbeat_every > Duration::ZERO {
            fresh.kernel.watch_peers(self.now, machines);
        }
        for &(peer, epoch) in &epochs {
            fresh.kernel.reset_channel(peer, epoch);
        }
        self.nodes[i] = fresh;
        self.crashed[i] = false;
        self.cpu_busy_until[i] = self.now;
        self.cpu_factor_ppm[i] = 1_000_000;
        self.net.set_down(m, false);
        for j in 0..self.nodes.len() {
            // Crashed peers are skipped: a corpse can neither reset its
            // channels nor resolve migrations (and must not transmit);
            // its own revive builds a fresh kernel with clean state.
            if j != i && !self.crashed[j] {
                let now = self.now;
                let epoch = self.nodes[i].kernel.channel_epoch(MachineId(j as u16));
                self.nodes[j].peer_revived(now, m, epoch, &mut self.net, &mut self.outbox);
                self.drain_outbox(MachineId(j as u16));
                // Clearing a dead verdict may reschedule the detector —
                // and resolving in-flight migrations may queue sends.
                self.touch_node(j);
            }
        }
        self.touch_node(i);
        if let Some(postmortem) = reboot_rehome {
            let now = self.now;
            self.rehome_from(m, now, postmortem);
        }
        // The fresh kernel's forwarding table is empty, but stale links
        // minted against the old incarnation still hint this machine:
        // any process that ever lived here and now lives elsewhere must
        // stay chain-reachable *through* us, or those links diverge.
        // Re-seed the gaps from current residency — the §4 recovery
        // action a revived processor takes, driven by the process map.
        if self.recovery.is_some() {
            self.sync_forwarding_residency();
        }
        // Either way the old incarnation's death is settled; a future
        // crash of the fresh incarnation must be handled afresh.
        if let Some(mgr) = self.recovery.as_mut() {
            mgr.handled.remove(&m);
        }
    }

    /// Sever the direct network edge between `a` and `b`, remembering its
    /// parameters so [`Cluster::heal`] can restore them. Frames in flight
    /// between machine pairs the cut disconnects are lost. Returns `false`
    /// if the machines are not directly connected.
    pub fn partition(&mut self, a: MachineId, b: MachineId) -> bool {
        self.net.partition(a, b)
    }

    /// Restore an edge severed by [`Cluster::partition`] with its original
    /// parameters. Returns `false` if the pair was not partitioned.
    pub fn heal(&mut self, a: MachineId, b: MachineId) -> bool {
        self.net.heal(a, b)
    }

    /// Restore every partitioned edge; returns how many were healed.
    pub fn heal_all(&mut self) -> usize {
        self.net.heal_all()
    }

    /// Degrade (or restore) machine `m`'s CPU: activation costs are
    /// multiplied by `factor` (1.0 = healthy). Models the paper's
    /// "gradual degradation of the processor" failure mode (§1). The
    /// factor is quantised to parts-per-million once, here, so the
    /// per-activation cost scaling is exact integer arithmetic.
    pub fn degrade(&mut self, m: MachineId, factor: f64) {
        let ppm = (factor.max(0.0) * 1e6).round();
        self.cpu_factor_ppm[m.0 as usize] = if ppm >= u64::MAX as f64 {
            u64::MAX
        } else {
            ppm as u64
        };
    }

    /// Health of machine `m` as policies see it: 1.0 nominal, the inverse
    /// of the degradation factor when degraded, 0.0 when crashed.
    pub fn health(&self, m: MachineId) -> f64 {
        if self.crashed[m.0 as usize] {
            return 0.0;
        }
        let ppm = self.cpu_factor_ppm[m.0 as usize];
        if ppm <= 1_000_000 {
            1.0
        } else {
            1_000_000.0 / ppm as f64
        }
    }

    // ------------------------------------------------------------------
    // The event loop
    // ------------------------------------------------------------------

    /// Scale an activation cost by a ppm factor, exactly, in integer
    /// microseconds: round up, saturate at `u64::MAX` µs.
    pub(crate) fn scale(cost: Duration, ppm: u64) -> Duration {
        let micros = (cost.as_micros() as u128 * ppm as u128).div_ceil(1_000_000);
        Duration::from_micros(micros.min(u64::MAX as u128) as u64)
    }

    /// Re-derive node `i`'s cached deadline and runnable membership after
    /// a mutation, pushing fresh heap entries on change. Lazy
    /// invalidation: entries obsoleted here are not removed, they are
    /// discarded when popped (see [`Cluster::event_valid`]).
    pub(crate) fn touch_node(&mut self, i: usize) {
        if self.crashed[i] {
            self.node_deadline[i] = None;
            self.runnable.remove(&i);
            return;
        }
        let d = self.nodes[i].next_deadline();
        if d != self.node_deadline[i] {
            self.node_deadline[i] = d;
            if let Some(t) = d {
                self.events.push(Reverse((t, EV_TIMER, i)));
            }
        }
        if self.nodes[i].has_runnable() {
            if self.runnable.insert(i) && self.cpu_busy_until[i] > self.now {
                // Became runnable while the CPU is mid-activation: index
                // the completion instant so `step` wakes up to run it.
                self.events
                    .push(Reverse((self.cpu_busy_until[i], EV_CPU, i)));
            }
        } else {
            self.runnable.remove(&i);
        }
    }

    /// Whether a heap entry still reflects reality. A TIMER entry is live
    /// iff it matches the cached deadline; a CPU entry iff the node is
    /// still runnable and its CPU really frees at that future instant
    /// (`t > now` keeps an already-free CPU from masquerading as a
    /// pending event and shifting sample/recovery times).
    fn event_valid(&self, t: Time, kind: u8, i: usize) -> bool {
        if self.crashed[i] {
            return false;
        }
        match kind {
            EV_TIMER => self.node_deadline[i] == Some(t),
            _ => t > self.now && self.cpu_busy_until[i] == t && self.runnable.contains(&i),
        }
    }

    /// Earliest valid indexed event, discarding stale entries from the
    /// top. Amortised O(log n): every discarded entry was paid for by the
    /// push that obsoleted it.
    fn peek_events(&mut self) -> Option<Time> {
        while let Some(&Reverse((t, kind, i))) = self.events.peek() {
            if self.event_valid(t, kind, i) {
                return Some(t);
            }
            self.events.pop();
        }
        None
    }

    /// Pop every node with a valid deadline due at or before `now` into
    /// `due` — ascending machine order, deduplicated. Only TIMER entries
    /// qualify: a CPU entry at or before `now` means the CPU is already
    /// free and `run_cpus` handles it.
    fn pop_due_nodes(&mut self, due: &mut Vec<usize>) {
        while let Some(&Reverse((t, kind, i))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            if kind == EV_TIMER && self.event_valid(t, kind, i) {
                due.push(i);
            }
        }
        due.sort_unstable();
        due.dedup();
    }

    /// Re-index every node mutated through [`Cluster::node_mut`] since the
    /// last event-loop pass.
    pub(crate) fn flush_dirty(&mut self) {
        while let Some(i) = self.dirty.pop() {
            self.touch_node(i);
        }
    }

    /// Run every CPU that is free and has work at the current instant.
    /// One ascending pass over the runnable set: a node that runs becomes
    /// busy (scaled cost is at least 1µs), and nothing short of a network
    /// delivery — which only happens in `step` — can make *another* node
    /// runnable, so a single pass reaches the same fixpoint the old
    /// scan-until-no-progress loop did, in the same order.
    pub(crate) fn run_cpus(&mut self) {
        self.flush_dirty();
        let mut candidates = std::mem::take(&mut self.cpu_scratch);
        candidates.clear();
        candidates.extend(self.runnable.iter().copied());
        for &i in &candidates {
            if self.crashed[i] || self.cpu_busy_until[i] > self.now {
                continue;
            }
            self.step_stats.cpu_visits += 1;
            if let Some((_pid, cost)) =
                self.nodes[i].run_next(self.now, &mut self.net, &mut self.outbox)
            {
                let scaled =
                    Self::scale(cost, self.cpu_factor_ppm[i]).max(Duration::from_micros(1));
                self.cpu_busy_until[i] = self.now + scaled;
                self.cpu_busy_total[i] += scaled;
            }
            self.drain_outbox(MachineId(i as u16));
            self.touch_node(i);
            if self.runnable.contains(&i) && self.cpu_busy_until[i] > self.now {
                // Still has work queued behind the running activation:
                // index the completion instant.
                self.events
                    .push(Reverse((self.cpu_busy_until[i], EV_CPU, i)));
            }
        }
        self.cpu_scratch = candidates;
    }

    /// Advance to the next event. Returns `false` when the simulation is
    /// quiescent (no pending frames, deadlines, or runnable work).
    ///
    /// The next-event time is an O(log n) peek over the network's arrival
    /// queue and the cluster event index — no per-node scan. Tie-breaking
    /// is unchanged from the scanning loop: frames deliver first (network
    /// arrival order), then due node deadlines fire in ascending machine
    /// order, then recovery runs, then sampling.
    pub fn step(&mut self) -> bool {
        self.run_cpus();
        // Find the earliest future event.
        let t_next = match (self.net.next_arrival_at(), self.peek_events()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let Some(t) = t_next else { return false };
        if t > self.now {
            self.now = t;
        }
        self.step_stats.steps += 1;
        // Deliver all frames due at or before the new instant.
        while let Some((_at, src, dst, frame)) = self.net.pop_due(self.now) {
            if self.crashed[dst.0 as usize] {
                continue;
            }
            let now = self.now;
            self.step_stats.frame_visits += 1;
            self.nodes[dst.0 as usize].on_frame(now, src, frame, &mut self.net, &mut self.outbox);
            self.drain_outbox(dst);
            self.touch_node(dst.0 as usize);
        }
        // Fire due deadlines.
        let mut fired = std::mem::take(&mut self.fired_scratch);
        fired.clear();
        self.pop_due_nodes(&mut fired);
        for &i in &fired {
            let now = self.now;
            self.step_stats.timer_visits += 1;
            self.nodes[i].on_time(now, &mut self.net, &mut self.outbox);
            self.drain_outbox(MachineId(i as u16));
            self.touch_node(i);
        }
        self.drive_recovery(&fired);
        self.fired_scratch = fired;
        self.maybe_sample();
        true
    }

    // ------------------------------------------------------------------
    // Automatic crash recovery
    // ------------------------------------------------------------------

    /// Register `pid` for checkpoint protection. No-op unless the cluster
    /// was built with [`ClusterBuilder::recovery`].
    pub fn protect(&mut self, pid: ProcessId) {
        if let Some(mgr) = &mut self.recovery {
            mgr.protected.insert(pid);
        }
    }

    /// The recovery manager's state (stats, episodes, stored
    /// checkpoints), if recovery is enabled.
    pub fn recovery(&self) -> Option<&RecoveryManager> {
        self.recovery.as_ref()
    }

    /// Stop every live kernel's heartbeat detector. A cluster with an
    /// active detector never goes quiescent (beats fly forever), so
    /// harnesses call this once recovery has settled and they want to
    /// drain the transport for final checks.
    pub fn stop_heartbeats(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.crashed[i] {
                self.nodes[i].kernel.stop_heartbeats();
                self.touch_node(i);
            }
        }
    }

    fn drive_recovery(&mut self, fired: &[usize]) {
        if self.recovery.is_none() {
            return;
        }
        self.checkpoint_pass();
        self.handle_confirmed_deaths(fired);
    }

    /// Periodically snapshot every protected, settled (not mid-migration)
    /// process into stable storage.
    fn checkpoint_pass(&mut self) {
        let now = self.now;
        {
            let mgr = self.recovery.as_mut().expect("checked");
            if now < mgr.next_ck_at {
                return;
            }
            let every = mgr.cfg.checkpoint_every;
            let mut next = mgr.next_ck_at + every;
            while next <= now {
                next += every;
            }
            mgr.next_ck_at = next;
        }
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            let pids: Vec<ProcessId> = self.nodes[i].kernel.pids().collect();
            for pid in pids {
                let mgr = self.recovery.as_ref().expect("checked");
                if !mgr.cfg.protect_all && !mgr.protected.contains(&pid) {
                    continue;
                }
                if self.nodes[i]
                    .kernel
                    .process(pid)
                    .is_none_or(|p| p.in_migration)
                {
                    continue;
                }
                if let Ok(ck) = self.nodes[i].kernel.checkpoint(now, pid) {
                    let mgr = self.recovery.as_mut().expect("checked");
                    mgr.store.insert(pid, ck);
                    mgr.stats.checkpoints += 1;
                }
            }
            self.touch_node(i);
        }
    }

    /// Act on kernel-level death confirmations: re-home every checkpointed
    /// process that vanished with the dead machine onto a survivor, and
    /// install forwarding addresses on the other survivors so stale links
    /// converge through the ordinary §4/§5 machinery.
    fn handle_confirmed_deaths(&mut self, fired: &[usize]) {
        // Death verdicts are only produced inside `on_time` (the
        // heartbeat detector's confirmation path), so only nodes whose
        // deadlines just fired can hold any; `fired` is already in
        // ascending machine order, matching the old full scan.
        let mut confirmed: Vec<(MachineId, Time)> = Vec::new();
        for &i in fired {
            if self.crashed[i] {
                continue;
            }
            confirmed.extend(self.nodes[i].kernel.take_confirmed_dead());
        }
        for (dead, detected_at) in confirmed {
            // A verdict about a machine that is no longer crashed is
            // stale: the machine rebooted, and the reboot path already
            // re-homed its casualties.
            if !self.crashed[dead.0 as usize] {
                continue;
            }
            let fresh = self
                .recovery
                .as_mut()
                .expect("checked")
                .handled
                .insert(dead);
            if fresh {
                // Pull the black box before touching anything else: the
                // dead kernel's final recorded events.
                let postmortem = self.render_postmortem(dead);
                self.rehome_from(dead, detected_at, postmortem);
            }
        }
    }

    /// Repair pass over every live machine's forwarding table: any
    /// process alive on some other machine that this machine neither
    /// hosts nor has an entry for gets a direct entry to its current
    /// host. Existing entries are never overwritten (lazy link updating
    /// keeps working); the pass only fills holes recovery tears open —
    /// a detector purging entries into a confirmed-dead machine, or a
    /// reboot wiping the table of a machine stale links still hint at.
    fn sync_forwarding_residency(&mut self) {
        let residency: Vec<(ProcessId, MachineId)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|&(j, _)| !self.crashed[j])
            .flat_map(|(_, n)| {
                let host = n.machine();
                n.kernel.pids().map(move |p| (p, host)).collect::<Vec<_>>()
            })
            .collect();
        for j in 0..self.nodes.len() {
            if self.crashed[j] {
                continue;
            }
            let mut touched = false;
            for &(pid, host) in &residency {
                let k = &self.nodes[j].kernel;
                if host == k.machine() || k.process(pid).is_some() {
                    continue;
                }
                if k.forwarding_next(pid).is_none() {
                    self.nodes[j]
                        .kernel
                        .install_forwarding(pid, host, &mut self.outbox);
                    touched = true;
                }
            }
            if touched {
                self.drain_outbox(MachineId(j as u16));
                self.touch_node(j);
            }
        }
    }

    fn rehome_from(&mut self, dead: MachineId, detected_at: Time, postmortem: String) {
        let now = self.now;
        let crashed_at = self.crash_log.get(&dead).copied();
        self.recovery
            .as_mut()
            .expect("checked")
            .postmortems
            .push((dead, postmortem));
        // Guard: only re-home processes that are genuinely gone. A
        // detector false-confirmation on a live (e.g. long-partitioned)
        // machine must never duplicate a process.
        let candidates: Vec<ProcessId> = {
            let mgr = self.recovery.as_ref().expect("checked");
            mgr.store
                .keys()
                .copied()
                .filter(|&pid| self.where_is(pid).is_none())
                .collect()
        };
        let survivors: Vec<MachineId> = (0..self.nodes.len())
            .map(|i| MachineId(i as u16))
            .filter(|&m| !self.crashed[m.0 as usize] && m != dead)
            .collect();
        // Forwarding is installed on every live machine. On the
        // detection path this equals `survivors` (the dead machine is
        // still down); on the reboot path it additionally covers the
        // revived machine itself, whose peers still hold links naming it
        // as the casualties' home.
        let hosts: Vec<MachineId> = (0..self.nodes.len())
            .map(|i| MachineId(i as u16))
            .filter(|&m| !self.crashed[m.0 as usize])
            .collect();
        let mut rehomed = 0u32;
        for pid in candidates {
            let ck = self
                .recovery
                .as_ref()
                .expect("checked")
                .store
                .get(&pid)
                .cloned()
                .expect("listed");
            let mut new_home = None;
            for &m in &survivors {
                let r =
                    self.nodes[m.0 as usize]
                        .kernel
                        .restore_checkpoint(now, &ck, &mut self.outbox);
                self.drain_outbox(m);
                self.touch_node(m.0 as usize);
                if r.is_ok() {
                    new_home = Some(m);
                    break;
                }
            }
            match new_home {
                Some(home) => {
                    rehomed += 1;
                    self.recovery.as_mut().expect("checked").stats.rehomed += 1;
                    // Forwarding on every *other* live machine (never on
                    // the new home itself — a self-pointing entry would
                    // loop).
                    for &m in &hosts {
                        if m != home {
                            self.nodes[m.0 as usize].kernel.install_forwarding(
                                pid,
                                home,
                                &mut self.outbox,
                            );
                            self.drain_outbox(m);
                            self.touch_node(m.0 as usize);
                        }
                    }
                }
                None => {
                    self.recovery
                        .as_mut()
                        .expect("checked")
                        .stats
                        .rehome_failures += 1
                }
            }
        }
        // Chains routed *through* the corpse are broken too: each
        // survivor's detector purged its forwarding entries into the
        // dead machine on confirmation (a chain through a corpse
        // black-holes), counting on recovery to leave something
        // resolvable behind. Leave it: re-seed the gaps from current
        // residency — §4's observation that forwarding addresses are
        // (degenerate) processes means the same recovery that re-homes
        // processes must also re-home the addresses.
        self.sync_forwarding_residency();
        let mgr = self.recovery.as_mut().expect("checked");
        mgr.stats.deaths_handled += 1;
        mgr.episodes.push(RecoveryEpisode {
            machine: dead,
            crashed_at,
            detected_at,
            recovered_at: now,
            rehomed,
        });
    }

    /// Whether the current configuration can run on the conservative
    /// sharded executor. Deliberately independent of the shard *count*
    /// (beyond it being > 1), so every parallel shard count takes the
    /// identical code path: lossy links draw from one global RNG whose
    /// draw order is execution order, the recovery manager runs
    /// cross-machine passes inside the step, and zero-latency edges
    /// admit no positive lookahead — each forces the sequential loop.
    pub fn parallel_ready(&self) -> bool {
        let topo = self.net.topology();
        self.shards > 1
            && self.nodes.len() >= 2
            && self.recovery.is_none()
            && topo.max_edge_loss() <= 0.0
            && topo.min_edge_latency() != Some(Duration::ZERO)
    }

    /// How many parallel segments the sharded executor has run. Zero
    /// means every run so far took the sequential path (shards = 1 or an
    /// unsupported configuration).
    pub fn parallel_segments(&self) -> u64 {
        self.parallel_segments
    }

    /// The shard plan for the current configuration, or `None` when the
    /// sequential loop must be used. Memoised against the topology
    /// version, so fault-free steady state never re-partitions.
    fn parallel_plan(&mut self) -> Option<ShardPlan> {
        if !self.parallel_ready() {
            return None;
        }
        let topo = self.net.topology();
        let fresh = !self
            .plan_cache
            .as_ref()
            .is_some_and(|(s, p)| *s == self.shards && p.topo_version == topo.version());
        if fresh {
            let plan = ShardPlan::new(self.nodes.len(), self.shards, topo);
            self.plan_cache = Some((self.shards, plan));
        }
        let plan = &self.plan_cache.as_ref().expect("just cached").1;
        (plan.shards > 1).then(|| plan.clone())
    }

    /// Run until virtual time `t` (or quiescence, whichever first).
    pub fn run_until(&mut self, t: Time) {
        if let Some(plan) = self.parallel_plan() {
            crate::shard::run_until_parallel(self, t, &plan);
            return;
        }
        while self.now < t {
            if !self.step() {
                return;
            }
        }
        // Execute any work that became runnable exactly at the boundary.
        self.run_cpus();
    }

    /// Run for `d` more virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Run until the cluster is quiescent or `limit` virtual time has
    /// passed; returns the finishing time.
    pub fn run_quiescent(&mut self, limit: Duration) -> Time {
        if let Some(plan) = self.parallel_plan() {
            return crate::shard::run_quiescent_parallel(self, limit, &plan);
        }
        let deadline = self.now + limit;
        loop {
            if self.now >= deadline || !self.step() {
                return self.now;
            }
        }
    }

    /// Run for `d` more virtual time in `quantum`-sized slices, invoking
    /// `on_quantum` after each slice (and once more if the cluster goes
    /// quiescent early). The callback returning `false` stops the run —
    /// this is how the chaos harness interleaves continuous invariant
    /// checks with execution. Returns the finishing time.
    pub fn run_with_quantum<F>(&mut self, d: Duration, quantum: Duration, mut on_quantum: F) -> Time
    where
        F: FnMut(&Cluster) -> bool,
    {
        let deadline = self.now + d;
        let q = quantum.max(Duration::from_micros(1));
        while self.now < deadline {
            let target = (self.now + q).min(deadline);
            self.run_until(target);
            if !on_quantum(self) {
                return self.now;
            }
            if self.now < target {
                // run_until returned early: no pending events anywhere.
                return self.now;
            }
        }
        self.now
    }

    /// Whether every surviving machine's reliable channel has drained
    /// (nothing unacknowledged) and no frames remain in flight — the
    /// "queues drain" half of the transport-sanity invariant.
    pub fn transport_quiescent(&self) -> bool {
        self.net.in_flight() == 0
            && self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.crashed[*i])
                .all(|(_, n)| n.kernel.transport_quiescent())
    }

    /// Follow forwarding addresses for `pid` starting from machine
    /// `start`, returning every machine visited (`start` included). The
    /// walk stops at a machine that hosts the process, has no forwarding
    /// entry, or is crashed — or after `len() + 1` entries, which can only
    /// happen if the chain revisits a machine (a forwarding cycle; the
    /// chaos acyclicity checker flags exactly that case).
    pub fn forwarding_chain(&self, start: MachineId, pid: ProcessId) -> Vec<MachineId> {
        let mut chain = vec![start];
        let mut cur = start;
        while chain.len() <= self.nodes.len() {
            let i = cur.0 as usize;
            if self.crashed[i] || self.nodes[i].kernel.process(pid).is_some() {
                break;
            }
            match self.nodes[i].kernel.forwarding_next(pid) {
                Some(next) => {
                    chain.push(next);
                    cur = next;
                }
                None => break,
            }
        }
        chain
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.now)
            .field("machines", &self.nodes.len())
            .field("in_flight_frames", &self.net.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_exact_integer_micros() {
        let us = Duration::from_micros;
        // 100µs × 1.1 is exactly 110µs. The old f64 path computed
        // ceil(110.00000000000001) = 111 because 1.1 is not
        // representable in binary floating point.
        assert_eq!(Cluster::scale(us(100), 1_100_000), us(110));
        // A true remainder still rounds up: 3µs × 1.5 = 4.5 → 5.
        assert_eq!(Cluster::scale(us(3), 1_500_000), us(5));
        // Sub-ppm leftovers round up too, never down to a free lunch.
        assert_eq!(Cluster::scale(us(1), 333_333), us(1));
        // Degenerate factors.
        assert_eq!(Cluster::scale(us(100), 0), us(0));
        assert_eq!(Cluster::scale(us(0), u64::MAX), us(0));
        // Saturates instead of overflowing.
        assert_eq!(Cluster::scale(us(u64::MAX), u64::MAX), us(u64::MAX));
    }

    #[test]
    fn degrade_quantises_and_health_inverts() {
        let mut c = Cluster::mesh(2);
        c.degrade(MachineId(1), 4.0);
        assert_eq!(c.health(MachineId(1)), 0.25);
        // Negative factors clamp to zero (healthy-or-better → 1.0).
        c.degrade(MachineId(1), -3.0);
        assert_eq!(c.health(MachineId(1)), 1.0);
        // Absurd factors clamp rather than poisoning the arithmetic.
        c.degrade(MachineId(1), f64::INFINITY);
        let h = c.health(MachineId(1));
        assert!(h > 0.0 && h < 1e-9);
        assert_eq!(c.health(MachineId(0)), 1.0);
    }
}
