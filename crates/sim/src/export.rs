//! Exporters: live cluster state → `demos-obs` structures.
//!
//! This is the only place that knows how to read a kernel's observable
//! state (queue depths, table sizes, transport health, traffic classes)
//! and spell it as metrics. Everything downstream — time series, the
//! JSON-lines dump, the `demos-top` report — consumes the
//! [`MetricsRegistry`] / [`ClusterSnapshot`] this module produces.

use demos_core::Node;
use demos_kernel::TrafficBreakdown;
use demos_obs::report::PhasePanelRow;
use demos_obs::{json::Json, report, ClusterSnapshot, MachineSnapshot, MetricsRegistry};
use demos_types::{Duration, MachineId};

use crate::cluster::Cluster;
use crate::span::{migration_spans_of, MigrationOutcome, MigrationSpan};

/// Traffic classes in report order, with their per-class counts.
pub fn traffic_classes(t: &TrafficBreakdown) -> Vec<(&'static str, u64, u64)> {
    [
        ("kernel_op", t.kernel_op),
        ("migrate", t.migrate),
        ("md_req", t.md_req),
        ("md_data", t.md_data),
        ("md_ack", t.md_ack),
        ("md_done", t.md_done),
        ("link_maint", t.link_maint),
        ("mgmt", t.mgmt),
        ("user", t.user),
    ]
    .into_iter()
    .filter(|(_, c)| c.msgs > 0)
    .map(|(name, c)| (name, c.msgs, c.bytes))
    .collect()
}

/// Read one node's kernel into a metrics registry: gauges for current
/// depths/sizes, counters for cumulative transport and delivery totals.
pub fn machine_registry(node: &Node) -> MetricsRegistry {
    let k = &node.kernel;
    let mut r = MetricsRegistry::new();
    r.gauge_set("procs", k.nprocs() as u64);
    r.gauge_set("runq", k.runq_len() as u64);
    r.gauge_set("msgq", k.msg_queue_len() as u64);
    r.gauge_set("pending", k.pending_queue_len() as u64);
    r.gauge_set("links", k.link_table_len() as u64);
    r.gauge_set("forwarding", k.forwarding_table().len() as u64);
    r.gauge_set("mem_used", k.mem_used());
    let ch = k.channel_stats();
    r.counter_set("retransmits", ch.retransmits);
    r.counter_set("dup_acks", ch.dup_acks);
    r.counter_set("dedup_drops", ch.dedup_drops);
    r.counter_set("bounced_frames", ch.bounced);
    let d = k.detector_stats();
    r.counter_set("hb_sent", d.beats_sent);
    r.counter_set("hb_received", d.beats_received);
    r.counter_set("suspicions", d.suspicions);
    r.counter_set("false_positives", d.false_positives);
    r.counter_set("peers_confirmed_dead", d.confirmed_dead);
    r.counter_set("bounced_msgs", d.bounced);
    let s = k.stats();
    r.counter_set("submitted", s.submitted);
    r.counter_set("forwarded", s.forwarded);
    r.counter_set("link_updates_sent", s.link_updates_sent);
    r.counter_set("nondeliverable", s.nondeliverable);
    for (class, msgs, bytes) in traffic_classes(&s.traffic) {
        match class {
            "kernel_op" => {
                r.counter_set("msgs_kernel_op", msgs);
                r.counter_set("bytes_kernel_op", bytes);
            }
            "migrate" => {
                r.counter_set("msgs_migrate", msgs);
                r.counter_set("bytes_migrate", bytes);
            }
            "md_req" => {
                r.counter_set("msgs_md_req", msgs);
                r.counter_set("bytes_md_req", bytes);
            }
            "md_data" => {
                r.counter_set("msgs_md_data", msgs);
                r.counter_set("bytes_md_data", bytes);
            }
            "md_ack" => {
                r.counter_set("msgs_md_ack", msgs);
                r.counter_set("bytes_md_ack", bytes);
            }
            "md_done" => {
                r.counter_set("msgs_md_done", msgs);
                r.counter_set("bytes_md_done", bytes);
            }
            "link_maint" => {
                r.counter_set("msgs_link_maint", msgs);
                r.counter_set("bytes_link_maint", bytes);
            }
            "mgmt" => {
                r.counter_set("msgs_mgmt", msgs);
                r.counter_set("bytes_mgmt", bytes);
            }
            _ => {
                r.counter_set("msgs_user", msgs);
                r.counter_set("bytes_user", bytes);
            }
        }
    }
    r
}

fn machine_snapshot(node: &Node) -> MachineSnapshot {
    let k = &node.kernel;
    let ch = k.channel_stats();
    MachineSnapshot {
        machine: node.machine().0,
        procs: k.nprocs(),
        runq: k.runq_len(),
        msgq: k.msg_queue_len(),
        pending: k.pending_queue_len(),
        links: k.link_table_len(),
        forwarding: k.forwarding_table().len(),
        mem_used: k.mem_used(),
        retransmits: ch.retransmits,
        dup_acks: ch.dup_acks,
        dedup_drops: ch.dedup_drops,
        traffic: traffic_classes(&k.stats().traffic),
    }
}

impl Cluster {
    /// Snapshot every live machine's observable state at the current
    /// instant (crashed machines are omitted — their state died with
    /// them).
    pub fn snapshot(&self) -> ClusterSnapshot {
        let machines = (0..self.len())
            .map(|i| MachineId(i as u16))
            .filter(|&m| !self.is_crashed(m))
            .map(|m| machine_snapshot(self.node(m)))
            .collect();
        ClusterSnapshot {
            at: self.now(),
            machines,
        }
    }

    /// The `demos-top`-style cluster report for the current instant.
    pub fn report(&self) -> String {
        report::render(&self.snapshot())
    }

    /// The machine-readable JSON-lines dump for the current instant (one
    /// object per machine; parse with [`demos_obs::json::parse_lines`]).
    pub fn json_lines(&self) -> String {
        self.snapshot().to_json_lines()
    }

    /// The `demos-top` migration-phase panel: every migration lifecycle
    /// stitched from the trace, one row each, in freeze order.
    pub fn phase_report(&self) -> String {
        let spans = migration_spans_of(self.trace());
        let rows: Vec<PhasePanelRow> = spans.iter().map(phase_panel_row).collect();
        report::render_phase_panel(&rows)
    }

    /// Migration lifecycle spans as JSON lines (one object per
    /// migration; parse with [`demos_obs::json::parse_lines`]).
    pub fn phase_json_lines(&self) -> String {
        let mut out = String::new();
        for s in migration_spans_of(self.trace()) {
            out.push_str(&span_json(&s).to_string());
            out.push('\n');
        }
        out
    }
}

/// One migration span as a `demos-top` phase-panel row.
pub fn phase_panel_row(s: &MigrationSpan) -> PhasePanelRow {
    let us = |d: Option<Duration>| d.map(|d| d.as_micros());
    PhasePanelRow {
        pid: s.pid.to_string(),
        route: format!(
            "{}->{}",
            s.src.map_or_else(|| "?".into(), |m| format!("m{}", m.0)),
            s.dest.map_or_else(|| "?".into(), |m| format!("m{}", m.0)),
        ),
        outcome: outcome_label(s.outcome).to_string(),
        negotiation_us: us(s.negotiation()),
        transfer_us: us(s.transfer()),
        bytes: s.bytes_total.max(s.bytes_offered),
        restart_us: us(s.restart()),
        frozen_us: us(s.frozen_total()),
        residual_us: us(s.residual()),
        forwards: s.forwards,
    }
}

fn outcome_label(o: MigrationOutcome) -> &'static str {
    match o {
        MigrationOutcome::Completed => "completed",
        MigrationOutcome::Rejected => "rejected",
        MigrationOutcome::Aborted => "aborted",
        MigrationOutcome::InFlight => "in-flight",
    }
}

fn span_json(s: &MigrationSpan) -> Json {
    let time = |t: Option<demos_types::Time>| t.map_or(Json::Null, |t| Json::num(t.as_micros()));
    let dur = |d: Option<Duration>| d.map_or(Json::Null, |d| Json::num(d.as_micros()));
    Json::obj([
        ("pid", Json::str(s.pid.to_string())),
        ("src", s.src.map_or(Json::Null, |m| Json::num(m.0 as u64))),
        ("dest", s.dest.map_or(Json::Null, |m| Json::num(m.0 as u64))),
        ("outcome", Json::str(outcome_label(s.outcome))),
        ("frozen", time(s.frozen)),
        ("offered", time(s.offered)),
        ("allocated", time(s.allocated)),
        ("state_transferred", time(s.state_transferred)),
        ("image_transferred", time(s.image_transferred)),
        ("pending_forwarded", time(s.pending_forwarded)),
        ("cleaned_up", time(s.cleaned_up)),
        ("restarted", time(s.restarted)),
        ("negotiation_us", dur(s.negotiation())),
        ("transfer_us", dur(s.transfer())),
        ("restart_us", dur(s.restart())),
        ("frozen_us", dur(s.frozen_total())),
        ("residual_us", dur(s.residual())),
        ("bytes_offered", Json::num(s.bytes_offered)),
        ("bytes_state", Json::num(s.bytes_state)),
        ("bytes_total", Json::num(s.bytes_total)),
        ("forwards", Json::num(s.forwards)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_kernel::ImageLayout;
    use demos_obs::json;
    use demos_types::Duration;

    #[test]
    fn snapshot_sees_spawned_processes_and_user_traffic() {
        use crate::programs::{wl, PingPong};
        let mut c = Cluster::mesh(2);
        let st = PingPong::state(0, 50);
        let pa = c
            .spawn(MachineId(0), "pingpong", &st, ImageLayout::default())
            .unwrap();
        let pb = c
            .spawn(MachineId(1), "pingpong", &st, ImageLayout::default())
            .unwrap();
        let la = c.link_to(pa).unwrap();
        let lb = c.link_to(pb).unwrap();
        c.post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
            .unwrap();
        c.post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
            .unwrap();
        c.run_for(Duration::from_millis(50));
        let snap = c.snapshot();
        assert_eq!(snap.machines.len(), 2);
        let m0 = snap.machine(MachineId(0)).unwrap();
        assert_eq!(m0.procs, 1);
        assert!(
            m0.traffic
                .iter()
                .any(|&(class, msgs, _)| class == "user" && msgs > 0),
            "ping-pong crosses machines: {:?}",
            m0.traffic
        );
        // Report and JSON lines render from the same snapshot.
        let text = c.report();
        assert!(text.lines().any(|l| l.starts_with("m0")), "{text}");
        let parsed = json::parse_lines(&c.json_lines()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].u64_field("procs"), Some(1));
    }

    #[test]
    fn phase_panel_and_json_cover_a_real_migration() {
        use crate::programs::Cargo;
        let mut c = Cluster::mesh(2);
        let pid = c
            .spawn(
                MachineId(0),
                "cargo",
                &Cargo::state(256),
                ImageLayout::default(),
            )
            .unwrap();
        c.run_for(Duration::from_millis(5));
        c.migrate(pid, MachineId(1)).unwrap();
        c.run_for(Duration::from_millis(400));

        let panel = c.phase_report();
        assert!(panel.contains("m0->m1"), "{panel}");
        assert!(panel.contains("completed"), "{panel}");

        let parsed = json::parse_lines(&c.phase_json_lines()).unwrap();
        assert_eq!(parsed.len(), 1);
        let span = &parsed[0];
        assert_eq!(span.str_field("outcome"), Some("completed"));
        assert_eq!(span.u64_field("src"), Some(0));
        assert_eq!(span.u64_field("dest"), Some(1));
        assert!(span.u64_field("frozen_us").unwrap() > 0);
        assert!(span.u64_field("bytes_total").unwrap() > 0);
    }

    #[test]
    fn crashed_machines_drop_out_of_the_snapshot() {
        let mut c = Cluster::mesh(3);
        c.crash(MachineId(1));
        let snap = c.snapshot();
        assert_eq!(snap.machines.len(), 2);
        assert!(snap.machine(MachineId(1)).is_none());
    }
}
