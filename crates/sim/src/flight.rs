//! Flight-recorder encoding: [`TraceEvent`] → compact
//! [`demos_obs::recorder::Record`].
//!
//! `demos-obs` owns the record *format* but depends only on
//! `demos-types`, so it never sees the kernel's event enum; this module
//! is the one place that maps the two. The encoding drops what the ring
//! cannot afford (program names, log text, one of the two pids on link
//! updates) and keeps what post-mortems need: virtual time, machine,
//! kind, correlation id / pid operands, migration phase and byte counts.

use demos_kernel::{MigrationPhase, TraceEvent};
use demos_obs::recorder::{kind, pack_pid, phase, Record};
use demos_types::{MachineId, ProcessId, Time};

/// Default per-node ring capacity. 4096 records × 32 B = 128 KiB per
/// machine — hours of tail at typical event rates, constant cost.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

fn pid_bits(p: ProcessId) -> u64 {
    pack_pid(p.creating_machine.0, p.local_uid)
}

/// The recorder's phase constant for a [`MigrationPhase`].
pub fn phase_code(p: MigrationPhase) -> u8 {
    match p {
        MigrationPhase::Frozen => phase::FROZEN,
        MigrationPhase::Offered => phase::OFFERED,
        MigrationPhase::Allocated => phase::ALLOCATED,
        MigrationPhase::Rejected => phase::REJECTED,
        MigrationPhase::StateTransferred => phase::STATE_TRANSFERRED,
        MigrationPhase::ImageTransferred => phase::IMAGE_TRANSFERRED,
        MigrationPhase::PendingForwarded => phase::PENDING_FORWARDED,
        MigrationPhase::CleanedUp => phase::CLEANED_UP,
        MigrationPhase::Restarted => phase::RESTARTED,
        MigrationPhase::Aborted => phase::ABORTED,
    }
}

/// Encode one kernel event as a fixed-size recorder entry.
pub fn encode(at: Time, machine: MachineId, event: &TraceEvent) -> Record {
    let mut r = Record {
        at: at.as_micros(),
        machine: machine.0,
        ..Record::default()
    };
    match event {
        TraceEvent::Spawned { pid, program: _ } => {
            r.kind = kind::SPAWNED;
            r.a = pid_bits(*pid);
        }
        TraceEvent::Exited { pid } => {
            r.kind = kind::EXITED;
            r.a = pid_bits(*pid);
        }
        TraceEvent::Submitted {
            corr,
            dest,
            msg_type,
        } => {
            r.kind = kind::SUBMITTED;
            r.a = corr.0;
            r.b = pid_bits(*dest);
            r.c = u32::from(*msg_type);
        }
        TraceEvent::Enqueued {
            corr,
            pid,
            msg_type,
            forwarded,
            hops,
        } => {
            r.kind = kind::ENQUEUED;
            r.a = corr.0;
            // Bit 63 of `b` flags a forwarded delivery; the packed pid
            // only occupies the low 48 bits.
            r.b = pid_bits(*pid) | (u64::from(*forwarded) << 63);
            r.c = u32::from(*msg_type);
            r.arg = *hops;
        }
        TraceEvent::KernelReceived {
            corr,
            pid,
            msg_type,
        } => {
            r.kind = kind::KERNEL_RECEIVED;
            r.a = corr.0;
            r.b = pid_bits(*pid);
            r.c = u32::from(*msg_type);
        }
        TraceEvent::ForwardedMessage {
            corr,
            pid,
            to,
            msg_type,
        } => {
            r.kind = kind::FORWARDED;
            r.a = corr.0;
            r.b = pid_bits(*pid);
            // High half: where the forwarding address pointed.
            r.c = u32::from(to.0) << 16 | u32::from(*msg_type);
        }
        TraceEvent::LinkUpdateSent {
            corr,
            sender: _,
            migrated,
            new_machine,
        } => {
            r.kind = kind::LINK_UPDATE_SENT;
            r.a = corr.0;
            r.b = pid_bits(*migrated);
            r.c = u32::from(new_machine.0);
        }
        TraceEvent::LinkUpdateApplied {
            corr,
            sender: _,
            migrated,
            patched,
        } => {
            r.kind = kind::LINK_UPDATE_APPLIED;
            r.a = corr.0;
            r.b = pid_bits(*migrated);
            r.c = (*patched).min(u32::MAX as usize) as u32;
        }
        TraceEvent::NonDeliverable {
            corr,
            pid,
            msg_type,
        } => {
            r.kind = kind::NON_DELIVERABLE;
            r.a = corr.0;
            r.b = pid_bits(*pid);
            r.c = u32::from(*msg_type);
        }
        TraceEvent::Migration { pid, phase, bytes } => {
            r.kind = kind::MIGRATION;
            r.a = pid_bits(*pid);
            r.b = *bytes;
            r.arg = phase_code(*phase);
        }
        TraceEvent::ForwardingInstalled { pid, to } => {
            r.kind = kind::FORWARDING_INSTALLED;
            r.a = pid_bits(*pid);
            r.c = u32::from(to.0);
        }
        TraceEvent::ForwardingCollected { pid } => {
            r.kind = kind::FORWARDING_COLLECTED;
            r.a = pid_bits(*pid);
        }
        TraceEvent::MoveDataDone { op, bytes, status } => {
            r.kind = kind::MOVE_DATA_DONE;
            r.a = u64::from(*op);
            r.b = *bytes;
            r.arg = *status;
        }
        TraceEvent::Log { pid, text: _ } => {
            r.kind = kind::LOG;
            r.a = pid_bits(*pid);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::CorrId;

    fn pid(m: u16, u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(m),
            local_uid: u,
        }
    }

    #[test]
    fn migration_records_carry_phase_and_bytes() {
        let r = encode(
            Time(500),
            MachineId(3),
            &TraceEvent::Migration {
                pid: pid(0, 7),
                phase: MigrationPhase::StateTransferred,
                bytes: 2048,
            },
        );
        assert_eq!(r.at, 500);
        assert_eq!(r.machine, 3);
        assert_eq!(r.kind, kind::MIGRATION);
        assert_eq!(r.arg, phase::STATE_TRANSFERRED);
        assert_eq!(r.a, pack_pid(0, 7));
        assert_eq!(r.b, 2048);
    }

    #[test]
    fn message_kinds_put_corr_in_a() {
        let corr = CorrId::new(MachineId(1), 9);
        let r = encode(
            Time(1),
            MachineId(1),
            &TraceEvent::Submitted {
                corr,
                dest: pid(0, 2),
                msg_type: 42,
            },
        );
        assert_eq!(r.kind, kind::SUBMITTED);
        assert_eq!(r.a, corr.0);
        assert_eq!(r.c, 42);
    }

    #[test]
    fn forwarded_packs_target_machine_above_msg_type() {
        let r = encode(
            Time(1),
            MachineId(0),
            &TraceEvent::ForwardedMessage {
                corr: CorrId::new(MachineId(0), 1),
                pid: pid(0, 2),
                to: MachineId(5),
                msg_type: 42,
            },
        );
        assert_eq!(r.c >> 16, 5);
        assert_eq!(r.c & 0xFFFF, 42);
    }

    #[test]
    fn enqueued_flags_forwarded_deliveries() {
        let base = TraceEvent::Enqueued {
            corr: CorrId::new(MachineId(0), 1),
            pid: pid(0, 2),
            msg_type: 7,
            forwarded: true,
            hops: 2,
        };
        let r = encode(Time(1), MachineId(0), &base);
        assert_eq!(r.b >> 63, 1);
        assert_eq!(r.b & 0xFFFF_FFFF_FFFF, pack_pid(0, 2));
        assert_eq!(r.arg, 2);
    }

    #[test]
    fn every_phase_maps_to_a_distinct_code() {
        let phases = [
            MigrationPhase::Frozen,
            MigrationPhase::Offered,
            MigrationPhase::Allocated,
            MigrationPhase::Rejected,
            MigrationPhase::StateTransferred,
            MigrationPhase::ImageTransferred,
            MigrationPhase::PendingForwarded,
            MigrationPhase::CleanedUp,
            MigrationPhase::Restarted,
            MigrationPhase::Aborted,
        ];
        let mut codes: Vec<u8> = phases.iter().map(|&p| phase_code(p)).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), phases.len());
    }
}
