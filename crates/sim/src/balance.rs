//! Driving migration policies against a live cluster.
//!
//! The paper's process manager "makes the decision of when and to where
//! to migrate a process" by monitoring the same information it already
//! collects for CPU and memory scheduling (§3.1). [`PolicyDriver`] plays
//! that role for the harness: it periodically snapshots the cluster into
//! a [`ClusterView`], asks a [`Policy`] for orders, and applies them
//! through the migration mechanism.

use demos_policy::{ClusterView, MachineLoad, MigrationOrder, Policy, ProcessInfo};
use demos_types::{Duration, MachineId, Time};

use crate::cluster::Cluster;

/// Build a policy snapshot of the cluster. `prev_busy`/`window` yield CPU
/// utilization; pass an empty slice to report zero utilization.
pub fn snapshot(cluster: &Cluster, prev_busy: &[Duration], window: Duration) -> ClusterView {
    let mut machines = Vec::with_capacity(cluster.len());
    let mut processes = Vec::new();
    for i in 0..cluster.len() {
        let m = MachineId(i as u16);
        let node = cluster.node(m);
        let busy_now = cluster.cpu_busy(m);
        let busy_prev = prev_busy.get(i).copied().unwrap_or(busy_now);
        let util = if window.as_micros() == 0 {
            0.0
        } else {
            (busy_now - busy_prev).as_micros() as f64 / window.as_micros() as f64
        };
        machines.push(MachineLoad {
            machine: m,
            runq: node.kernel.runq_len(),
            nprocs: node.kernel.nprocs(),
            cpu_util: util.min(1.0),
            mem_used: node.kernel.mem_used(),
            mem_capacity: node.kernel.config().mem_capacity,
            health: cluster.health(m),
        });
        for pid in node.kernel.pids() {
            let proc = node.kernel.process(pid).expect("listed");
            processes.push(ProcessInfo {
                pid,
                machine: m,
                cpu_used: proc.cpu_used,
                image_len: proc.image.total_len() as u64,
                privileged: proc.privileged,
                bytes_sent_to: proc.bytes_sent_to.iter().map(|(&k, &v)| (k, v)).collect(),
            });
        }
    }
    ClusterView {
        at: cluster.now(),
        machines,
        processes,
    }
}

/// Periodically runs a policy against the cluster.
pub struct PolicyDriver {
    policy: Box<dyn Policy>,
    /// Decision period.
    pub period: Duration,
    prev_busy: Vec<Duration>,
    last_run: Time,
    /// Orders issued so far.
    pub orders_issued: u64,
    /// Orders that failed to start (process gone, already migrating, …).
    pub orders_failed: u64,
}

impl PolicyDriver {
    /// New driver for `policy`, deciding every `period`.
    pub fn new(policy: Box<dyn Policy>, period: Duration) -> Self {
        PolicyDriver {
            policy,
            period,
            prev_busy: Vec::new(),
            last_run: Time::ZERO,
            orders_issued: 0,
            orders_failed: 0,
        }
    }

    /// Snapshot, decide, apply. Call after each `cluster.run_for(period)`.
    pub fn tick(&mut self, cluster: &mut Cluster) -> Vec<MigrationOrder> {
        let window = cluster.now().since(self.last_run);
        self.last_run = cluster.now();
        if self.prev_busy.len() != cluster.len() {
            self.prev_busy = vec![Duration::ZERO; cluster.len()];
        }
        let view = snapshot(cluster, &self.prev_busy, window);
        for i in 0..cluster.len() {
            self.prev_busy[i] = cluster.cpu_busy(MachineId(i as u16));
        }
        let orders = self.policy.decide(&view);
        for o in &orders {
            self.orders_issued += 1;
            if cluster.migrate(o.pid, o.dest).is_err() {
                self.orders_failed += 1;
            }
        }
        orders
    }

    /// Run the cluster for `total`, invoking the policy every period.
    pub fn run(&mut self, cluster: &mut Cluster, total: Duration) {
        let end = cluster.now() + total;
        while cluster.now() < end {
            let slice = self.period.min(end.since(cluster.now()));
            if slice == Duration::ZERO {
                break;
            }
            cluster.run_for(slice);
            self.tick(cluster);
        }
    }
}
