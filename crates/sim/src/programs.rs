//! Workload programs.
//!
//! The paper had no authentic workload either — "in the absence of an
//! authentic workload for our test cases, the decision to move a
//! particular process and the choice of destination were arbitrary"
//! (§3.1) — so these seeded synthetic programs reproduce the *scenarios*
//! its text describes: message-exchanging peers (link update convergence),
//! CPU-bound computation (load balancing), request/reply servers and
//! clients (server migration under fire), pipelines, and inert cargo
//! processes of configurable size (transfer-cost sweeps).
//!
//! Every program serializes its complete state with a hand-rolled compact
//! encoding, so it migrates byte-faithfully. Link *indices* are stored in
//! program state: they remain valid across migration because the link
//! table is transferred whole, indices included.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{local_tags, Carry, Ctx, Delivered, Program, Registry};
use demos_types::{tags, Duration, LinkAttrs, LinkIdx};

/// Message types used by the workload programs.
pub mod wl {
    use demos_types::tags::USER_BASE;
    /// Bootstrap: carries configuration links (peer, server, next stage).
    pub const INIT: u16 = USER_BASE;
    /// Ping-pong ball.
    pub const BALL: u16 = USER_BASE + 1;
    /// Client request.
    pub const REQ: u16 = USER_BASE + 2;
    /// Server reply.
    pub const REP: u16 = USER_BASE + 3;
    /// Pipeline token.
    pub const PIPE: u16 = USER_BASE + 4;
}

fn get_u64(b: &mut Bytes) -> u64 {
    if b.remaining() >= 8 {
        b.get_u64()
    } else {
        0
    }
}

fn get_u32(b: &mut Bytes) -> u32 {
    if b.remaining() >= 4 {
        b.get_u32()
    } else {
        0
    }
}

fn opt_link(v: u32) -> Option<LinkIdx> {
    (v != 0).then_some(LinkIdx(v))
}

// ----------------------------------------------------------------------
// PingPong
// ----------------------------------------------------------------------

/// Two of these exchange `BALL` messages over durable links forever (or
/// until `limit` rallies). The canonical sender whose stale links get
/// exercised by migration (experiments E4/E5).
#[derive(Debug, Default)]
pub struct PingPong {
    /// Rallies completed (messages received).
    pub rallies: u64,
    /// Stop after this many (0 = forever).
    pub limit: u64,
    /// Extra CPU per ball, microseconds.
    pub cpu_us: u32,
    /// Durable link to the peer (0 until INIT).
    pub peer: u32,
}

impl PingPong {
    /// Initial state: `limit` rallies, `cpu_us` per ball.
    pub fn state(limit: u64, cpu_us: u32) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(0);
        b.put_u64(limit);
        b.put_u32(cpu_us);
        b.put_u32(0);
        b.to_vec()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        Box::new(PingPong {
            rallies: get_u64(&mut b),
            limit: get_u64(&mut b),
            cpu_us: get_u32(&mut b),
            peer: get_u32(&mut b),
        })
    }
}

impl Program for PingPong {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            wl::INIT => {
                // links[0]: durable link to the peer. The second byte of
                // the payload, if 1, serves the first ball.
                if let Some(&peer) = msg.links.first() {
                    self.peer = peer.0;
                    if msg.payload.first() == Some(&1) {
                        let _ = ctx.send(peer, wl::BALL, Bytes::new(), &[]);
                    }
                }
            }
            wl::BALL => {
                self.rallies += 1;
                if self.cpu_us > 0 {
                    ctx.cpu(Duration::from_micros(self.cpu_us as u64));
                }
                if self.limit == 0 || self.rallies < self.limit {
                    if let Some(peer) = opt_link(self.peer) {
                        let _ = ctx.send(peer, wl::BALL, Bytes::new(), &[]);
                    }
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.rallies);
        b.put_u64(self.limit);
        b.put_u32(self.cpu_us);
        b.put_u32(self.peer);
        b.to_vec()
    }
}

/// Parse a `PingPong` state blob (for harness inspection).
pub fn pingpong_rallies(state: &[u8]) -> u64 {
    let mut b = Bytes::copy_from_slice(state);
    get_u64(&mut b)
}

// ----------------------------------------------------------------------
// CpuBurner
// ----------------------------------------------------------------------

/// Timer-driven CPU-bound job: each tick burns `work_us` of CPU, for
/// `limit` iterations (0 = forever). The unit of offered load in the
/// load-balancing experiments.
#[derive(Debug, Default)]
pub struct CpuBurner {
    /// Iterations completed.
    pub done: u64,
    /// Iterations to run (0 = forever).
    pub limit: u64,
    /// CPU per iteration, microseconds.
    pub work_us: u32,
    /// Tick period, microseconds (0 = back-to-back).
    pub period_us: u32,
}

impl CpuBurner {
    /// Initial state.
    pub fn state(limit: u64, work_us: u32, period_us: u32) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(0);
        b.put_u64(limit);
        b.put_u32(work_us);
        b.put_u32(period_us);
        b.to_vec()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        Box::new(CpuBurner {
            done: get_u64(&mut b),
            limit: get_u64(&mut b),
            work_us: get_u32(&mut b),
            period_us: get_u32(&mut b),
        })
    }

    fn arm(&self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration::from_micros(self.period_us.max(1) as u64), 1);
    }
}

impl Program for CpuBurner {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.limit == 0 || self.done < self.limit {
            self.arm(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.done += 1;
        ctx.cpu(Duration::from_micros(self.work_us as u64));
        if self.limit == 0 || self.done < self.limit {
            self.arm(ctx);
        } else {
            ctx.exit();
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Delivered) {}

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.done);
        b.put_u64(self.limit);
        b.put_u32(self.work_us);
        b.put_u32(self.period_us);
        b.to_vec()
    }
}

/// Parse a `CpuBurner` state blob: iterations completed.
pub fn burner_done(state: &[u8]) -> u64 {
    let mut b = Bytes::copy_from_slice(state);
    get_u64(&mut b)
}

// ----------------------------------------------------------------------
// EchoServer
// ----------------------------------------------------------------------

/// Replies to every `REQ` over the carried reply link, echoing the
/// payload; the server process of the migration-under-fire scenario.
#[derive(Debug, Default)]
pub struct EchoServer {
    /// Requests served.
    pub served: u64,
    /// CPU per request, microseconds.
    pub cpu_us: u32,
}

impl EchoServer {
    /// Initial state.
    pub fn state(cpu_us: u32) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(0);
        b.put_u32(cpu_us);
        b.to_vec()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        Box::new(EchoServer {
            served: get_u64(&mut b),
            cpu_us: get_u32(&mut b),
        })
    }
}

impl Program for EchoServer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type == wl::REQ {
            self.served += 1;
            if self.cpu_us > 0 {
                ctx.cpu(Duration::from_micros(self.cpu_us as u64));
            }
            if let Some(reply) = msg.reply() {
                let _ = ctx.send(reply, wl::REP, msg.payload.clone(), &[]);
            }
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.served);
        b.put_u32(self.cpu_us);
        b.to_vec()
    }
}

/// Parse an `EchoServer` state blob: requests served.
pub fn server_served(state: &[u8]) -> u64 {
    let mut b = Bytes::copy_from_slice(state);
    get_u64(&mut b)
}

// ----------------------------------------------------------------------
// Client
// ----------------------------------------------------------------------

/// Timer-driven request generator: sends `REQ` (with a one-shot reply
/// link and the send timestamp) every `period_us`, records round-trip
/// times.
#[derive(Debug, Default)]
pub struct Client {
    /// Requests sent.
    pub sent: u64,
    /// Replies received.
    pub recv: u64,
    /// Sum of round-trip times, microseconds.
    pub rtt_sum: u64,
    /// Maximum round-trip time, microseconds.
    pub rtt_max: u64,
    /// Requests still to send (0 = unlimited).
    pub limit: u64,
    /// Send period, microseconds.
    pub period_us: u32,
    /// Request payload size.
    pub payload: u32,
    /// Durable link to the server (0 until INIT).
    pub server: u32,
}

impl Client {
    /// Initial state.
    pub fn state(limit: u64, period_us: u32, payload: u32) -> Vec<u8> {
        let c = Client {
            limit,
            period_us,
            payload,
            ..Client::default()
        };
        c.save()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        Box::new(Client {
            sent: get_u64(&mut b),
            recv: get_u64(&mut b),
            rtt_sum: get_u64(&mut b),
            rtt_max: get_u64(&mut b),
            limit: get_u64(&mut b),
            period_us: get_u32(&mut b),
            payload: get_u32(&mut b),
            server: get_u32(&mut b),
        })
    }
}

impl Program for Client {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            wl::INIT => {
                if let Some(&server) = msg.links.first() {
                    self.server = server.0;
                    ctx.set_timer(Duration::from_micros(self.period_us.max(1) as u64), 1);
                }
            }
            wl::REP => {
                self.recv += 1;
                let mut b = msg.payload.clone();
                if b.remaining() >= 8 {
                    let sent_at = b.get_u64();
                    let rtt = ctx.now().as_micros().saturating_sub(sent_at);
                    self.rtt_sum += rtt;
                    self.rtt_max = self.rtt_max.max(rtt);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(server) = opt_link(self.server) else {
            return;
        };
        if self.limit == 0 || self.sent < self.limit {
            let mut payload = BytesMut::with_capacity(8 + self.payload as usize);
            payload.put_u64(ctx.now().as_micros());
            payload.extend_from_slice(&vec![0u8; self.payload as usize]);
            if ctx
                .send(
                    server,
                    wl::REQ,
                    payload.freeze(),
                    &[Carry::New(LinkAttrs::REPLY)],
                )
                .is_ok()
            {
                self.sent += 1;
            }
            if self.limit == 0 || self.sent < self.limit {
                ctx.set_timer(Duration::from_micros(self.period_us.max(1) as u64), 1);
            }
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.sent);
        b.put_u64(self.recv);
        b.put_u64(self.rtt_sum);
        b.put_u64(self.rtt_max);
        b.put_u64(self.limit);
        b.put_u32(self.period_us);
        b.put_u32(self.payload);
        b.put_u32(self.server);
        b.to_vec()
    }
}

/// Parsed `Client` statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests sent.
    pub sent: u64,
    /// Replies received.
    pub recv: u64,
    /// Mean round-trip, microseconds (0 when no replies).
    pub rtt_mean_us: u64,
    /// Worst round-trip, microseconds.
    pub rtt_max_us: u64,
}

/// Parse a `Client` state blob.
pub fn client_stats(state: &[u8]) -> ClientStats {
    let mut b = Bytes::copy_from_slice(state);
    let sent = get_u64(&mut b);
    let recv = get_u64(&mut b);
    let rtt_sum = get_u64(&mut b);
    let rtt_max = get_u64(&mut b);
    ClientStats {
        sent,
        recv,
        rtt_mean_us: rtt_sum.checked_div(recv).unwrap_or(0),
        rtt_max_us: rtt_max,
    }
}

// ----------------------------------------------------------------------
// Stage (pipeline)
// ----------------------------------------------------------------------

/// A pipeline stage: burns CPU per token and forwards it downstream.
#[derive(Debug, Default)]
pub struct Stage {
    /// Tokens processed.
    pub processed: u64,
    /// CPU per token, microseconds.
    pub work_us: u32,
    /// Durable link to the next stage (0 = sink).
    pub next: u32,
}

impl Stage {
    /// Initial state.
    pub fn state(work_us: u32) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(0);
        b.put_u32(work_us);
        b.put_u32(0);
        b.to_vec()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        Box::new(Stage {
            processed: get_u64(&mut b),
            work_us: get_u32(&mut b),
            next: get_u32(&mut b),
        })
    }
}

impl Program for Stage {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            wl::INIT => {
                if let Some(&next) = msg.links.first() {
                    self.next = next.0;
                }
            }
            wl::PIPE => {
                self.processed += 1;
                if self.work_us > 0 {
                    ctx.cpu(Duration::from_micros(self.work_us as u64));
                }
                if let Some(next) = opt_link(self.next) {
                    let _ = ctx.send(next, wl::PIPE, msg.payload.clone(), &[]);
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.processed);
        b.put_u32(self.work_us);
        b.put_u32(self.next);
        b.to_vec()
    }
}

/// Parse a `Stage` state blob: tokens processed.
pub fn stage_processed(state: &[u8]) -> u64 {
    let mut b = Bytes::copy_from_slice(state);
    get_u64(&mut b)
}

// ----------------------------------------------------------------------
// Cargo
// ----------------------------------------------------------------------

/// An inert process whose only purpose is to be migrated: its state is an
/// opaque blob (sized by the caller) and it counts the messages it
/// receives. Used by the transfer-cost sweeps.
#[derive(Debug, Default)]
pub struct Cargo {
    /// Messages received.
    pub received: u64,
    /// Opaque ballast carried in program state.
    pub ballast: Vec<u8>,
}

impl Cargo {
    /// Initial state with `ballast` bytes of payload.
    pub fn state(ballast: usize) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(0);
        b.extend_from_slice(&vec![0xA5u8; ballast]);
        b.to_vec()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let received = get_u64(&mut b);
        Box::new(Cargo {
            received,
            ballast: b.to_vec(),
        })
    }
}

impl Program for Cargo {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Delivered) {
        // Count everything except kernel-local notifications (timers,
        // move-data completions, non-deliverable notices).
        if msg.msg_type >= tags::SYS_BASE || msg.msg_type < local_tags::KERNEL_MGMT {
            self.received += 1;
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u64(self.received);
        b.extend_from_slice(&self.ballast);
        b.to_vec()
    }
}

/// Parse a `Cargo` state blob: messages received.
pub fn cargo_received(state: &[u8]) -> u64 {
    let mut b = Bytes::copy_from_slice(state);
    get_u64(&mut b)
}

// ----------------------------------------------------------------------
// Nomad
// ----------------------------------------------------------------------

/// A process that periodically requests its *own* migration through the
/// process manager (§3.1: "it is of course possible for a process to
/// request its own migration"), hopping around the cluster while doing
/// background work.
#[derive(Debug, Default)]
pub struct Nomad {
    /// Link to the process manager (0 until INIT).
    pub pm: u32,
    /// Machines in the cluster (hop target = (here + 1) % machines).
    pub machines: u16,
    /// Hop period, microseconds.
    pub period_us: u32,
    /// Completed self-migrations (Done status 0 received).
    pub hops: u64,
    /// Failed requests.
    pub failed: u64,
    /// Background work performed.
    pub work: u64,
}

impl Nomad {
    /// Initial state.
    pub fn state(machines: u16, period_us: u32) -> Vec<u8> {
        Nomad {
            machines,
            period_us,
            ..Default::default()
        }
        .save()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        Box::new(Nomad {
            pm: get_u32(&mut b),
            machines: get_u32(&mut b) as u16,
            period_us: get_u32(&mut b),
            hops: get_u64(&mut b),
            failed: get_u64(&mut b),
            work: get_u64(&mut b),
        })
    }
}

impl Program for Nomad {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            wl::INIT => {
                if let Some(&pm) = msg.links.first() {
                    self.pm = pm.0;
                    ctx.set_timer(Duration::from_micros(self.period_us.max(1) as u64), 1);
                }
            }
            tags::MIGRATE => {
                // The Done (#9) notification for our own request.
                if msg.payload.first() == Some(&6) && msg.payload.last() == Some(&0) {
                    self.hops += 1;
                } else {
                    self.failed += 1;
                }
                ctx.set_timer(Duration::from_micros(self.period_us.max(1) as u64), 1);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.work += 1;
        ctx.cpu(Duration::from_micros(50));
        let Some(pm) = opt_link(self.pm) else { return };
        if self.machines < 2 {
            return;
        }
        let dest = demos_types::MachineId((ctx.machine().0 + 1) % self.machines);
        // PmMsg::Migrate { dest } with [reply, self-link] — built by hand
        // to avoid a dependency cycle with demos-sysproc (tag 4 = Migrate).
        let mut payload = bytes::BytesMut::with_capacity(3);
        bytes::BufMut::put_u8(&mut payload, 4);
        bytes::BufMut::put_u16(&mut payload, dest.0);
        let _ = ctx.send(
            pm,
            tags::SYS_BASE + 1, // sys::PROCMGR
            payload.freeze(),
            &[Carry::New(LinkAttrs::NONE), Carry::New(LinkAttrs::NONE)],
        );
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.pm);
        b.put_u32(self.machines as u32);
        b.put_u32(self.period_us);
        b.put_u64(self.hops);
        b.put_u64(self.failed);
        b.put_u64(self.work);
        b.to_vec()
    }
}

/// Parse a `Nomad` state blob: `(hops, failed, work)`.
pub fn nomad_stats(state: &[u8]) -> (u64, u64, u64) {
    let mut b = Bytes::copy_from_slice(state);
    let _pm = get_u32(&mut b);
    let _machines = get_u32(&mut b);
    let _period = get_u32(&mut b);
    (get_u64(&mut b), get_u64(&mut b), get_u64(&mut b))
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

/// Register every workload program (plus the system server processes from
/// `demos-sysproc`) into a fresh registry.
pub fn registry() -> Registry {
    let mut r = Registry::new();
    register(&mut r);
    demos_sysproc::register(&mut r);
    r
}

/// Register the workload programs into an existing registry.
pub fn register(r: &mut Registry) {
    r.register("pingpong", PingPong::restore);
    r.register("cpu_burner", CpuBurner::restore);
    r.register("echo_server", EchoServer::restore);
    r.register("client", Client::restore);
    r.register("stage", Stage::restore);
    r.register("cargo", Cargo::restore);
    r.register("nomad", Nomad::restore);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrips() {
        let p = PingPong::restore(&PingPong::state(10, 5));
        let back = PingPong::restore(&p.save());
        assert_eq!(pingpong_rallies(&back.save()), 0);

        let c = Client::restore(&Client::state(100, 500, 64));
        let s = client_stats(&c.save());
        assert_eq!(s.sent, 0);

        let g = Cargo::restore(&Cargo::state(1024));
        assert_eq!(g.save().len(), 8 + 1024);
        assert_eq!(cargo_received(&g.save()), 0);
    }

    #[test]
    fn registry_has_all() {
        let r = registry();
        for name in [
            "pingpong",
            "cpu_burner",
            "echo_server",
            "client",
            "stage",
            "cargo",
        ] {
            assert!(r.contains(name), "{name} missing");
        }
    }
}
