//! Conservative parallel (PDES) execution of the cluster event loop.
//!
//! The cluster is split into [`ShardPlan`] ranges, one worker thread per
//! shard, each running a faithful port of the sequential
//! [`Cluster::step`] loop over its own machines. Synchronization is
//! **conservative**: a coordinator repeatedly grants every shard a window
//! `[·, min(next event anywhere) + lookahead)` — where lookahead is the
//! minimum cross-shard link latency — inside which no not-yet-sent
//! cross-shard frame can possibly arrive, so the shards execute the
//! window without communicating. Cross-shard frames produced inside a
//! window are exchanged at the barrier and heaped before the next window.
//!
//! # Determinism
//!
//! Everything a worker does is a pure function of its shard's state and
//! the frames it received at barriers; the coordinator's window choices
//! are pure functions of published event times. Nothing reads wall clock,
//! thread ids, or lock-acquisition order (mailboxes are drained in shard
//! order), so a run is bit-deterministic for a given (seed, shard count).
//!
//! # Equivalence with the sequential loop
//!
//! The sequential loop orders same-instant work frames → timers → CPU
//! (the CPU pass at the top of the *next* `step` call still runs at the
//! previous instant), frames among themselves by global transmission
//! order, and timers/CPUs in ascending machine order. Workers reproduce
//! this with canonical [`SendKey`]s — `(era, send time, phase, sender,
//! per-sender index)` — which are computable shard-locally and agree
//! with the sequential global order for timer-, CPU- and external-phase
//! sends (at any instant the sequential pass visits machines in
//! ascending order within a phase). Trace segments are tagged with the
//! same `(time, phase, key)` coordinates and merged by a stable sort at
//! reassembly, so the merged trace, the flight-recorder rings (per
//! machine, written only by the owning shard), and every statistic are
//! byte-identical across shard counts. The chaos-corpus equality suite
//! pins exactly this.
//!
//! Configurations whose couplings are inherently global — lossy links
//! (one global RNG whose draw order is the execution order), the
//! recovery manager (cross-machine checkpoint/re-home passes inside the
//! step), zero-latency edges (no positive lookahead) — fall back to the
//! sequential loop; `Cluster::parallel_ready` is the single gate.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Barrier, Mutex};

use demos_core::Node;
use demos_kernel::{Outbox, TraceEvent};
use demos_net::{InFlight, NetEvent, NetStats, Phys, SendKey, Topology};
use demos_obs::FlightRecorder;
use demos_types::{Duration, MachineId, Time};

use crate::cluster::{Cluster, StepStats, EV_CPU, EV_TIMER};
use crate::flight;
use crate::partition::ShardPlan;

/// Same-instant phase ranks, matching the sequential interleave.
const PHASE_FRAME: u8 = 1;
const PHASE_TIMER: u8 = 2;
const PHASE_CPU: u8 = 3;

/// Coordinator → worker commands.
const M_WINDOW: u8 = 0;
const M_FINAL: u8 = 1;
const M_EXIT: u8 = 2;

/// "No pending event" sentinel for published times.
const T_NONE: u64 = u64::MAX;

/// Barrier-shared coordination state. All cross-thread data flows through
/// here, and only at barriers.
struct Shared {
    /// Rendezvous: `shards + 1` parties (workers + coordinator). Each
    /// round is two waits: release (command visible) and collect
    /// (published times + mailboxes visible).
    barrier: Barrier,
    /// Current command.
    mode: AtomicU8,
    /// Command parameter: window end (exclusive) or final-batch instant,
    /// in microseconds.
    param: AtomicU64,
    /// Per shard: earliest pending local event after its last round.
    next_local: Vec<AtomicU64>,
    /// Per shard: earliest arrival among cross-shard frames it *posted*
    /// during its last round (they are in mailboxes, visible to no heap,
    /// so the coordinator must count them separately).
    posted_min: Vec<AtomicU64>,
    /// `mail[dst][src]`: frames posted by shard `src` for shard `dst`.
    /// Locks are uncontended by construction (one writer, and readers
    /// only at barriers).
    mail: Vec<Vec<Mutex<Vec<InFlight>>>>,
}

/// One trace segment produced by a worker: the outbox drained after a
/// single handler call, tagged with its global merge coordinates.
struct Segment {
    at: Time,
    phase: u8,
    key: SendKey,
    machine: MachineId,
    events: Vec<TraceEvent>,
}

/// What a worker hands back at exit (slice mutations are already in
/// place; this is only the owned state).
struct WorkerResult {
    now: Time,
    leftovers: Vec<InFlight>,
    segments: Vec<Segment>,
    net_stats: NetStats,
    step_stats: StepStats,
}

/// The physical layer a shard's nodes transmit into: local-destination
/// frames go straight onto the shard's arrival heap, cross-shard frames
/// into per-destination outgoing mail. A faithful port of
/// `SimNetwork::transmit` minus the loss draw (lossy topologies never
/// reach the parallel path).
struct ShardNet<'a> {
    topo: &'a Topology,
    shard_of: &'a [u16],
    sid: usize,
    /// Global crashed flags, fixed for the whole segment (crash/revive
    /// only happen between runs).
    down: &'a [bool],
    era: u32,
    /// Send context, set by the worker before each handler call.
    phase: u8,
    now_us: u64,
    /// Per-sender canonical send counters for this shard's machines.
    send_idx: &'a mut [u64],
    base: usize,
    arrivals: BinaryHeap<Reverse<InFlight>>,
    /// Outgoing cross-shard frames accumulated this round, per shard.
    outmail: Vec<Vec<InFlight>>,
    /// Earliest arrival posted to mail this round.
    posted_min: u64,
    stats: NetStats,
}

impl Phys for ShardNet<'_> {
    fn transmit(&mut self, now: Time, src: MachineId, dst: MachineId, frame: demos_net::Frame) {
        let size = frame.wire_size();
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += size as u64;
        if frame.is_ack() {
            self.stats.ack_frames += 1;
        } else {
            self.stats.data_frames += 1;
            if frame.meta().is_some_and(|m| m.retx) {
                self.stats.retransmit_frames += 1;
            }
        }
        if self.down[src.0 as usize] || self.down[dst.0 as usize] {
            self.stats.frames_dropped += 1;
            return;
        }
        let Some((transit, loss)) = self.topo.transit(src, dst, size) else {
            self.stats.frames_dropped += 1;
            return;
        };
        self.stats.byte_hops += (size * self.topo.hops(src, dst)) as u64;
        debug_assert!(loss == 0.0, "lossy topologies take the sequential path");
        let slot = &mut self.send_idx[src.0 as usize - self.base];
        *slot += 1;
        let arr = InFlight {
            at: now + transit,
            key: SendKey::canonical(self.era, self.now_us, self.phase, src.0, *slot),
            src,
            dst,
            frame,
        };
        let ds = self.shard_of[dst.0 as usize] as usize;
        if ds == self.sid {
            self.arrivals.push(Reverse(arr));
        } else {
            self.posted_min = self.posted_min.min(arr.at.as_micros());
            self.outmail[ds].push(arr);
        }
    }

    fn note(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::DupAck => self.stats.dup_acks += 1,
            NetEvent::DedupDrop => self.stats.dedup_drops += 1,
            NetEvent::StaleEpochDrop => self.stats.stale_epoch_drops += 1,
        }
    }
}

/// One shard's executable state: disjoint `&mut` slices of the cluster's
/// per-machine storage plus a private port of the event-loop caches.
struct Worker<'a> {
    sid: usize,
    base: usize,
    nodes: &'a mut [Node],
    recorders: &'a mut [FlightRecorder],
    cpu_busy_until: &'a mut [Time],
    cpu_factor_ppm: &'a [u64],
    cpu_busy_total: &'a mut [Duration],
    trace_on: bool,
    now: Time,
    net: ShardNet<'a>,
    outbox: Outbox,
    /// Local event index over `(time, kind, global machine)`.
    events: BinaryHeap<Reverse<(Time, u8, usize)>>,
    /// Cached earliest deadline per local node.
    node_deadline: Vec<Option<Time>>,
    /// Runnable set, in global machine indices.
    runnable: BTreeSet<usize>,
    segments: Vec<Segment>,
    stats: StepStats,
    cpu_scratch: Vec<usize>,
    fired_scratch: Vec<usize>,
}

impl<'a> Worker<'a> {
    fn local(&self, i: usize) -> usize {
        i - self.base
    }

    /// Port of `Cluster::touch_node` over the shard-local caches.
    fn touch_node(&mut self, i: usize) {
        let l = self.local(i);
        if self.net.down[i] {
            self.node_deadline[l] = None;
            self.runnable.remove(&i);
            return;
        }
        let d = self.nodes[l].next_deadline();
        if d != self.node_deadline[l] {
            self.node_deadline[l] = d;
            if let Some(t) = d {
                self.events.push(Reverse((t, EV_TIMER, i)));
            }
        }
        if self.nodes[l].has_runnable() {
            if self.runnable.insert(i) && self.cpu_busy_until[l] > self.now {
                self.events
                    .push(Reverse((self.cpu_busy_until[l], EV_CPU, i)));
            }
        } else {
            self.runnable.remove(&i);
        }
    }

    fn event_valid(&self, t: Time, kind: u8, i: usize) -> bool {
        let l = i - self.base;
        if self.net.down[i] {
            return false;
        }
        match kind {
            EV_TIMER => self.node_deadline[l] == Some(t),
            _ => t > self.now && self.cpu_busy_until[l] == t && self.runnable.contains(&i),
        }
    }

    fn peek_events(&mut self) -> Option<Time> {
        while let Some(&Reverse((t, kind, i))) = self.events.peek() {
            if self.event_valid(t, kind, i) {
                return Some(t);
            }
            self.events.pop();
        }
        None
    }

    /// Earliest pending local event: frame arrival (frames to crashed
    /// machines included — the sequential loop also advances to them and
    /// drops them on pop) or indexed node event.
    fn peek_next(&mut self) -> Option<Time> {
        let arr = self.net.arrivals.peek().map(|Reverse(a)| a.at);
        match (arr, self.peek_events()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Drain the outbox after one handler call into the recorder ring and
    /// a tagged trace segment.
    fn drain(&mut self, machine: MachineId, phase: u8, key: SendKey) {
        let events = std::mem::take(&mut self.outbox.trace);
        let l = (machine.0 as usize) - self.base;
        let rec = &mut self.recorders[l];
        if rec.capacity() > 0 {
            for ev in &events {
                rec.record(flight::encode(self.now, machine, ev));
            }
        }
        if self.trace_on && !events.is_empty() {
            self.segments.push(Segment {
                at: self.now,
                phase,
                key,
                machine,
                events,
            });
        }
        debug_assert!(
            self.outbox.migration_inbox.is_empty() && self.outbox.pull_done.is_empty(),
            "node must drain engine items"
        );
    }

    /// Port of `Cluster::run_cpus` over the shard's runnable set.
    fn run_cpus(&mut self) {
        let mut candidates = std::mem::take(&mut self.cpu_scratch);
        candidates.clear();
        candidates.extend(self.runnable.iter().copied());
        for &i in &candidates {
            let l = i - self.base;
            if self.net.down[i] || self.cpu_busy_until[l] > self.now {
                continue;
            }
            self.stats.cpu_visits += 1;
            self.net.phase = PHASE_CPU;
            self.net.now_us = self.now.as_micros();
            if let Some((_pid, cost)) =
                self.nodes[l].run_next(self.now, &mut self.net, &mut self.outbox)
            {
                let scaled =
                    Cluster::scale(cost, self.cpu_factor_ppm[l]).max(Duration::from_micros(1));
                self.cpu_busy_until[l] = self.now + scaled;
                self.cpu_busy_total[l] += scaled;
            }
            let key =
                SendKey::canonical(self.net.era, self.now.as_micros(), PHASE_CPU, i as u16, 0);
            self.drain(MachineId(i as u16), PHASE_CPU, key);
            self.touch_node(i);
            if self.runnable.contains(&i) && self.cpu_busy_until[l] > self.now {
                self.events
                    .push(Reverse((self.cpu_busy_until[l], EV_CPU, i)));
            }
        }
        self.cpu_scratch = candidates;
    }

    /// Deliver every frame due at or before `now` — the shard-local
    /// mirror of `SimNetwork::pop_due` + the delivery loop in
    /// `Cluster::step`.
    fn deliver_due(&mut self) {
        while self
            .net
            .arrivals
            .peek()
            .is_some_and(|Reverse(a)| a.at <= self.now)
        {
            let Some(Reverse(a)) = self.net.arrivals.pop() else {
                break;
            };
            if self.net.down[a.dst.0 as usize] || self.net.down[a.src.0 as usize] {
                self.net.stats.frames_dropped += 1;
                continue;
            }
            self.net.stats.frames_delivered += 1;
            self.stats.frame_visits += 1;
            let l = (a.dst.0 as usize) - self.base;
            let now = self.now;
            self.net.phase = PHASE_FRAME;
            self.net.now_us = now.as_micros();
            self.nodes[l].on_frame(now, a.src, a.frame, &mut self.net, &mut self.outbox);
            self.drain(a.dst, PHASE_FRAME, a.key);
            self.touch_node(a.dst.0 as usize);
        }
    }

    /// Fire due deadlines in ascending machine order (port of
    /// `Cluster::pop_due_nodes` + the firing loop).
    fn fire_due(&mut self) {
        let mut fired = std::mem::take(&mut self.fired_scratch);
        fired.clear();
        while let Some(&Reverse((t, kind, i))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            if kind == EV_TIMER && self.event_valid(t, kind, i) {
                fired.push(i);
            }
        }
        fired.sort_unstable();
        fired.dedup();
        for &i in &fired {
            self.stats.timer_visits += 1;
            self.net.phase = PHASE_TIMER;
            self.net.now_us = self.now.as_micros();
            let now = self.now;
            let l = i - self.base;
            self.nodes[l].on_time(now, &mut self.net, &mut self.outbox);
            let key = SendKey::canonical(self.net.era, now.as_micros(), PHASE_TIMER, i as u16, 0);
            self.drain(MachineId(i as u16), PHASE_TIMER, key);
            self.touch_node(i);
        }
        self.fired_scratch = fired;
    }

    /// Execute every local event strictly before `end` — the windowed
    /// equivalent of repeated `Cluster::step` calls.
    fn run_window(&mut self, end: Time) {
        loop {
            self.run_cpus();
            let Some(t) = self.peek_next() else { break };
            if t >= end {
                break;
            }
            self.stats.steps += 1;
            if t > self.now {
                self.now = t;
            }
            self.deliver_due();
            self.fire_due();
        }
    }

    /// Process exactly the batch at the global overshoot instant `t` (the
    /// sequential loop's final `step` past a deadline).
    fn final_batch(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
        if self
            .net
            .arrivals
            .peek()
            .is_some_and(|Reverse(a)| a.at <= self.now)
            || self.peek_events().is_some_and(|e| e <= self.now)
        {
            self.stats.steps += 1;
        }
        self.deliver_due();
        self.fire_due();
    }

    /// Merge mail delivered at the last barrier into the arrival heap.
    /// Drained in ascending source-shard order (deterministic, though the
    /// heap makes insertion order irrelevant).
    fn take_mail(&mut self, shared: &Shared) {
        for src in 0..shared.mail[self.sid].len() {
            let mut inbox = shared.mail[self.sid][src]
                .lock()
                .expect("mailbox lock poisoned");
            for a in inbox.drain(..) {
                self.net.arrivals.push(Reverse(a));
            }
        }
    }

    /// Post this round's outgoing cross-shard frames and publish event
    /// horizons for the coordinator.
    fn flush_and_publish(&mut self, shared: &Shared) {
        for (ds, out) in self.net.outmail.iter_mut().enumerate() {
            if out.is_empty() {
                continue;
            }
            shared.mail[ds][self.sid]
                .lock()
                .expect("mailbox lock poisoned")
                .append(out);
        }
        shared.posted_min[self.sid].store(self.net.posted_min, Ordering::Release);
        self.net.posted_min = T_NONE;
        let next = self.peek_next().map_or(T_NONE, |t| t.as_micros());
        shared.next_local[self.sid].store(next, Ordering::Release);
    }

    /// The worker thread body: obey coordinator commands until EXIT.
    fn run(mut self, shared: &Shared, results: &Mutex<Vec<Option<WorkerResult>>>) {
        loop {
            shared.barrier.wait();
            let mode = shared.mode.load(Ordering::Acquire);
            let param = shared.param.load(Ordering::Acquire);
            match mode {
                M_WINDOW => {
                    self.take_mail(shared);
                    self.run_window(Time::from_micros(param));
                    self.flush_and_publish(shared);
                }
                M_FINAL => {
                    self.take_mail(shared);
                    self.final_batch(Time::from_micros(param));
                    self.flush_and_publish(shared);
                }
                _ => {
                    let sid = self.sid;
                    let result = WorkerResult {
                        now: self.now,
                        leftovers: self.net.arrivals.drain().map(|Reverse(a)| a).collect(),
                        segments: std::mem::take(&mut self.segments),
                        net_stats: self.net.stats,
                        step_stats: self.stats,
                    };
                    results.lock().expect("results lock poisoned")[sid] = Some(result);
                    shared.barrier.wait();
                    return;
                }
            }
            shared.barrier.wait();
        }
    }
}

/// Split `slice` into the plan's contiguous per-shard sub-slices.
fn split_ranges<'t, T>(mut slice: &'t mut [T], ranges: &[(usize, usize)]) -> Vec<&'t mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for &(start, end) in ranges {
        debug_assert_eq!(start, consumed, "ranges must be contiguous from 0");
        let (head, tail) = slice.split_at_mut(end - consumed);
        out.push(head);
        slice = tail;
        consumed = end;
    }
    out
}

/// Run one parallel segment: windows up to `bound`, then the overshoot
/// batch at the first global event time `T* ≥ bound`. Returns `Some(T*)`
/// (with `cluster.now == T*` and all state reassembled), or `None` if the
/// cluster went quiescent first.
pub(crate) fn run_scope(c: &mut Cluster, bound: Time, plan: &ShardPlan) -> Option<Time> {
    c.flush_dirty();
    c.parallel_segments += 1;
    let era = c.net.bump_era();
    let s = plan.shards;
    let n = c.nodes.len();
    let start_now = c.now;
    let lookahead_us = plan.lookahead.map(|d| d.as_micros());

    // Partition the in-flight set by destination shard.
    let mut inflight: Vec<Vec<InFlight>> = (0..s).map(|_| Vec::new()).collect();
    for a in c.net.drain_in_flight() {
        inflight[plan.shard_of(a.dst.0 as usize)].push(a);
    }

    let shared = Shared {
        barrier: Barrier::new(s + 1),
        mode: AtomicU8::new(M_WINDOW),
        param: AtomicU64::new(0),
        next_local: (0..s).map(|_| AtomicU64::new(T_NONE)).collect(),
        posted_min: (0..s).map(|_| AtomicU64::new(T_NONE)).collect(),
        mail: (0..s)
            .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
    };
    let results: Mutex<Vec<Option<WorkerResult>>> = Mutex::new((0..s).map(|_| None).collect());

    let trace_on = c.trace.is_enabled();
    let crashed = &c.crashed;
    let topo = c.net.topology();
    let node_slices = split_ranges(&mut c.nodes, &plan.ranges);
    let rec_slices = split_ranges(&mut c.recorders, &plan.ranges);
    let busy_slices = split_ranges(&mut c.cpu_busy_until, &plan.ranges);
    let total_slices = split_ranges(&mut c.cpu_busy_total, &plan.ranges);
    let idx_slices = split_ranges(&mut c.send_idx, &plan.ranges);
    let ppm = &c.cpu_factor_ppm;

    let mut workers: Vec<Worker<'_>> = Vec::with_capacity(s);
    let mut inflight_iter = inflight.into_iter();
    for (sid, (((nodes, recorders), (busy, total)), send_idx)) in node_slices
        .into_iter()
        .zip(rec_slices)
        .zip(busy_slices.into_iter().zip(total_slices))
        .zip(idx_slices)
        .enumerate()
    {
        let (base, end) = plan.ranges[sid];
        let mut arrivals = BinaryHeap::new();
        for a in inflight_iter.next().unwrap_or_default() {
            arrivals.push(Reverse(a));
        }
        let mut w = Worker {
            sid,
            base,
            nodes,
            recorders,
            cpu_busy_until: busy,
            cpu_factor_ppm: &ppm[base..end],
            cpu_busy_total: total,
            trace_on,
            now: start_now,
            net: ShardNet {
                topo,
                shard_of: &plan.shard_of,
                sid,
                down: crashed,
                era,
                phase: PHASE_CPU,
                now_us: start_now.as_micros(),
                send_idx,
                base,
                arrivals,
                outmail: (0..s).map(|_| Vec::new()).collect(),
                posted_min: T_NONE,
                stats: NetStats::default(),
            },
            outbox: Outbox::default(),
            events: BinaryHeap::new(),
            node_deadline: vec![None; end - base],
            runnable: BTreeSet::new(),
            segments: Vec::new(),
            stats: StepStats::default(),
            cpu_scratch: Vec::new(),
            fired_scratch: Vec::new(),
        };
        for i in base..end {
            w.touch_node(i);
        }
        workers.push(w);
    }

    let bound_us = bound.as_micros();
    let mut fin: Option<u64> = None;
    std::thread::scope(|scope| {
        for w in workers.drain(..) {
            let shared = &shared;
            let results = &results;
            scope.spawn(move || w.run(shared, results));
        }
        // The first window ends at `now`: a pure CPU pass (work made
        // runnable by external ops since the last run), mirroring the
        // `run_cpus` at the top of the first sequential step.
        let mut end_us = start_now.as_micros();
        loop {
            shared.mode.store(M_WINDOW, Ordering::Release);
            shared.param.store(end_us, Ordering::Release);
            shared.barrier.wait(); // release
            shared.barrier.wait(); // collect
            let mut t_min = T_NONE;
            for a in shared.next_local.iter().chain(shared.posted_min.iter()) {
                t_min = t_min.min(a.load(Ordering::Acquire));
            }
            if t_min == T_NONE {
                break; // quiescent
            }
            if t_min >= bound_us {
                fin = Some(t_min);
                break;
            }
            end_us = match lookahead_us {
                Some(l) => t_min.saturating_add(l).min(bound_us),
                None => bound_us,
            };
        }
        if let Some(t) = fin {
            shared.mode.store(M_FINAL, Ordering::Release);
            shared.param.store(t, Ordering::Release);
            shared.barrier.wait();
            shared.barrier.wait();
        }
        shared.mode.store(M_EXIT, Ordering::Release);
        shared.barrier.wait();
        shared.barrier.wait();
    });

    // ------------------------------------------------------------------
    // Reassembly
    // ------------------------------------------------------------------
    let results = results.into_inner().expect("results lock poisoned");
    let mut segments: Vec<Segment> = Vec::new();
    let mut new_now = start_now;
    for r in results.into_iter().flatten() {
        new_now = new_now.max(r.now);
        c.net.restore_in_flight(r.leftovers);
        c.net.absorb_stats(r.net_stats);
        c.step_stats.steps += r.step_stats.steps;
        c.step_stats.cpu_visits += r.step_stats.cpu_visits;
        c.step_stats.frame_visits += r.step_stats.frame_visits;
        c.step_stats.timer_visits += r.step_stats.timer_visits;
        segments.extend(r.segments);
    }
    // Mail posted by the final batch was never taken by a worker.
    for row in &shared.mail {
        for slot in row {
            let mut inbox = slot.lock().expect("mailbox lock poisoned");
            c.net.restore_in_flight(inbox.drain(..));
        }
    }
    c.now = if let Some(t) = fin {
        Time::from_micros(t)
    } else {
        new_now
    };
    // Merge trace segments into global order: time, then phase
    // (frames < timers < cpu), then send key. The sort is stable and
    // equal coordinates only arise within one shard, where concatenation
    // order is already chronological.
    segments.sort_by_key(|s| (s.at, s.phase, s.key));
    for seg in segments {
        c.trace.extend(seg.at, seg.machine, seg.events);
    }
    // Rebuild the sequential event caches from scratch; stale entries
    // from before the segment are gone with the clear.
    c.events.clear();
    c.runnable.clear();
    for i in 0..n {
        c.node_deadline[i] = None;
    }
    for i in 0..n {
        c.touch_node(i);
    }
    // Sends issued after this segment (externals, the boundary CPU pass)
    // use sequential-style keys; a fresh era keeps them ordered after
    // every canonical key issued inside the segment.
    c.net.bump_era();
    fin.map(Time::from_micros)
}

/// Parallel `run_until`: windows clipped at sampling due-points and the
/// deadline, overshoot batch at each stop, boundary CPU pass at the end —
/// semantics identical to the sequential `Cluster::run_until`.
pub(crate) fn run_until_parallel(c: &mut Cluster, t: Time, plan: &ShardPlan) {
    while c.now < t {
        let due = c.series.as_ref().map(|s| s.next_due());
        let bound = due.map_or(t, |d| d.min(t));
        match run_scope(c, bound, plan) {
            None => return, // quiescent: no boundary CPU pass (matches sequential)
            Some(fin) => {
                if due.is_some_and(|d| fin >= d) {
                    c.sample_now();
                }
            }
        }
    }
    c.run_cpus();
}

/// Parallel `run_quiescent`: like [`run_until_parallel`] but without the
/// boundary CPU pass, returning the finishing time.
pub(crate) fn run_quiescent_parallel(c: &mut Cluster, limit: Duration, plan: &ShardPlan) -> Time {
    let deadline = c.now + limit;
    while c.now < deadline {
        let due = c.series.as_ref().map(|s| s.next_due());
        let bound = due.map_or(deadline, |d| d.min(deadline));
        match run_scope(c, bound, plan) {
            None => return c.now,
            Some(fin) => {
                if due.is_some_and(|d| fin >= d) {
                    c.sample_now();
                }
            }
        }
    }
    c.now
}
