//! Schedule-coverage extraction from a live cluster.
//!
//! The feature *namespace* lives in `demos_obs::features` (packed `u64`
//! ids, record-level decoding); this module is the simulator-side
//! extractor, sitting beside [`crate::flight`] for the same reason the
//! encoder does: it sees both the kernel's [`TraceEvent`] stream and the
//! obs-level record format. [`features_of_trace`] routes every trace
//! event through the flight encoding and the obs extractor, so a feature
//! derived from the live trace and the same feature decoded later from a
//! `repro-*.flight` dump agree bit-for-bit (modulo ring eviction — the
//! trace sees everything, a full ring only the tail).
//!
//! [`coverage_of`] adds the one class the record stream cannot carry:
//! recovery-episode overlap, computed from the recovery manager's
//! episode intervals (crash → re-home). "Recovery during recovery" —
//! a second machine dying while the first casualty's re-home is still
//! pending — is exactly an overlap depth ≥ 2.
//!
//! [`TraceEvent`]: demos_kernel::TraceEvent

use demos_obs::features::{class, extract_node_records, feature, FeatureSet};
use demos_obs::recorder::Record;

use crate::cluster::Cluster;
use crate::flight;
use crate::trace::Trace;

/// Extract the record-visible feature classes (kind edges, phase edges,
/// forwarding depth) from a full trace. Per-machine streams are
/// extracted independently, matching the per-node rings.
pub fn features_of_trace(trace: &Trace) -> FeatureSet {
    let mut out = FeatureSet::new();
    let records = trace.records();
    // Machines present, in id order; each machine's subsequence keeps
    // global trace order, which is the order its ring would have seen.
    let mut machines: Vec<u16> = records.iter().map(|r| r.machine.0).collect();
    machines.sort_unstable();
    machines.dedup();
    let mut stream: Vec<Record> = Vec::new();
    for m in machines {
        stream.clear();
        stream.extend(
            records
                .iter()
                .filter(|r| r.machine.0 == m)
                .map(|r| flight::encode(r.at, r.machine, &r.event)),
        );
        extract_node_records(&stream, &mut out);
    }
    out
}

/// Maximum number of simultaneously "open" recovery episodes, where an
/// episode spans from the machine's crash (ground truth when known,
/// detection otherwise) to the completion of its re-homing.
pub fn recovery_overlap_depth(c: &Cluster) -> u32 {
    let Some(r) = c.recovery() else { return 0 };
    let intervals: Vec<(u64, u64)> = r
        .episodes()
        .iter()
        .map(|e| {
            let start = e.crashed_at.unwrap_or(e.detected_at).as_micros();
            (start, e.recovered_at.as_micros())
        })
        .collect();
    let mut depth = 0u32;
    for (i, &(s, e)) in intervals.iter().enumerate() {
        let overlapping = intervals
            .iter()
            .enumerate()
            .filter(|&(j, &(s2, e2))| j != i && s2 <= e && s <= e2)
            .count() as u32;
        depth = depth.max(overlapping + 1);
    }
    depth
}

/// Full simulator-side coverage of a finished run: trace-derived
/// features plus recovery-episode overlap.
pub fn coverage_of(c: &Cluster) -> FeatureSet {
    let mut set = features_of_trace(c.trace());
    let depth = recovery_overlap_depth(c);
    if depth > 0 {
        set.insert(feature(class::RECOVERY_OVERLAP, depth.min(3), 0));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_kernel::{MigrationPhase, TraceEvent};
    use demos_obs::features::unpack;
    use demos_obs::recorder::{kind, phase};
    use demos_types::{MachineId, ProcessId, Time};

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: u,
        }
    }

    #[test]
    fn trace_features_match_record_decoding() {
        let mut t = Trace::enabled();
        t.extend(
            Time(5),
            MachineId(0),
            vec![
                TraceEvent::Migration {
                    pid: pid(1),
                    phase: MigrationPhase::Frozen,
                    bytes: 0,
                },
                TraceEvent::Migration {
                    pid: pid(1),
                    phase: MigrationPhase::Offered,
                    bytes: 0,
                },
            ],
        );
        // Interleave a second machine: its stream must not create a
        // cross-machine kind edge.
        t.extend(
            Time(6),
            MachineId(1),
            vec![TraceEvent::Exited { pid: pid(9) }],
        );
        let set = features_of_trace(&t);
        assert!(set.contains(feature(class::PHASE_EDGE, 0, phase::FROZEN as u32)));
        assert!(set.contains(feature(
            class::PHASE_EDGE,
            phase::FROZEN as u32 + 1,
            phase::OFFERED as u32
        )));
        assert!(set.contains(feature(
            class::KIND_EDGE,
            kind::MIGRATION as u32,
            kind::MIGRATION as u32
        )));
        assert!(!set.contains(feature(
            class::KIND_EDGE,
            kind::MIGRATION as u32,
            kind::EXITED as u32
        )));
        // Everything extracted is one of the record-visible classes.
        for f in set.iter() {
            let (cl, _, _) = unpack(f);
            assert!(
                cl == class::KIND_EDGE || cl == class::PHASE_EDGE || cl == class::FWD_DEPTH,
                "unexpected class {cl}"
            );
        }
    }
}
