//! Booting the DEMOS/MP system processes onto a cluster.
//!
//! Reproduces the structure of Figure 2-3: a switchboard, a process
//! manager, a memory scheduler, and the four file-system processes, wired
//! together with links and registered by name with the switchboard.

use bytes::Bytes;
use demos_sysproc::{
    encode_script, BufferCache, DirServer, DiskServer, FileServer, FsClient, MemSched, ProcMgr,
    ScriptEntry, Shell, Switchboard,
};
use demos_types::{MachineId, ProcessId, Result};

use crate::cluster::Cluster;
use crate::programs::wl;
use demos_kernel::ImageLayout;

/// Where each system process ended up at boot.
#[derive(Debug, Clone, Copy)]
pub struct SystemHandles {
    /// The switchboard (name service).
    pub switchboard: ProcessId,
    /// The process manager.
    pub procmgr: ProcessId,
    /// The memory scheduler.
    pub memsched: ProcessId,
    /// File-system: directory server.
    pub fs_dir: ProcessId,
    /// File-system: client-facing file server.
    pub fs_file: ProcessId,
    /// File-system: buffer cache.
    pub fs_cache: ProcessId,
    /// File-system: disk server.
    pub fs_disk: ProcessId,
}

/// Boot configuration.
#[derive(Debug, Clone, Copy)]
pub struct BootConfig {
    /// Machine hosting switchboard / process manager / memory scheduler.
    pub control_machine: MachineId,
    /// Machine hosting the four file-system processes.
    pub fs_machine: MachineId,
    /// Simulated disk latency per block operation, microseconds.
    pub disk_op_us: u32,
    /// Buffer-cache capacity in blocks.
    pub cache_blocks: u16,
    /// Image layout for system processes.
    pub sys_layout: ImageLayout,
}

impl Default for BootConfig {
    fn default() -> Self {
        BootConfig {
            control_machine: MachineId(0),
            fs_machine: MachineId(0),
            disk_op_us: 2_000,
            cache_blocks: 32,
            sys_layout: ImageLayout {
                code: 16 * 1024,
                data: 8 * 1024,
                stack: 2 * 1024,
            },
        }
    }
}

/// Spawn and wire the system processes (Figure 2-3). Returns their pids.
pub fn boot_system(cluster: &mut Cluster, cfg: BootConfig) -> Result<SystemHandles> {
    let n = cluster.len() as u16;
    let cm = cfg.control_machine;
    let fm = cfg.fs_machine;
    let layout = cfg.sys_layout;

    let switchboard =
        cluster.spawn_opt(cm, Switchboard::NAME, &Switchboard::state(), layout, true)?;
    let procmgr = cluster.spawn_opt(cm, ProcMgr::NAME, &ProcMgr::state(n), layout, true)?;
    // The PM's bootstrap contract: kernel links for machines 0..n as its
    // first n links.
    for link in demos_sysproc::pm_bootstrap_links(n) {
        cluster.node_mut(cm).kernel.install_link(procmgr, link)?;
    }
    let memsched = cluster.spawn_opt(
        cm,
        MemSched::NAME,
        &MemSched::state(n, cluster.node(cm).kernel.config().mem_capacity),
        layout,
        true,
    )?;

    let fs_disk = cluster.spawn_opt(
        fm,
        DiskServer::NAME,
        &DiskServer::state(cfg.disk_op_us),
        layout,
        true,
    )?;
    let fs_cache = cluster.spawn_opt(
        fm,
        BufferCache::NAME,
        &BufferCache::state(cfg.cache_blocks),
        layout,
        true,
    )?;
    let fs_dir = cluster.spawn_opt(fm, DirServer::NAME, &DirServer::state(), layout, true)?;
    let fs_file = cluster.spawn_opt(fm, FileServer::NAME, &FileServer::state(), layout, true)?;

    // Wire: cache → disk; file server → [dir, cache].
    let disk_link = cluster.link_to(fs_disk)?;
    cluster.post(fs_cache, wl::INIT, Bytes::new(), vec![disk_link])?;
    let dir_link = cluster.link_to(fs_dir)?;
    let cache_link = cluster.link_to(fs_cache)?;
    cluster.post(fs_file, wl::INIT, Bytes::new(), vec![dir_link, cache_link])?;

    // Register the public services with the switchboard (bootstrap form:
    // single carried link, no acknowledgement).
    for (name, pid) in [
        ("procmgr", procmgr),
        ("memsched", memsched),
        ("fs", fs_file),
    ] {
        let link = cluster.link_to(pid)?;
        cluster.post(
            switchboard,
            demos_sysproc::sys::SWITCHBOARD,
            demos_types::wire::Wire::to_bytes(&demos_sysproc::SbMsg::Register {
                name: name.to_string(),
            }),
            vec![link],
        )?;
    }

    Ok(SystemHandles {
        switchboard,
        procmgr,
        memsched,
        fs_dir,
        fs_file,
        fs_cache,
        fs_disk,
    })
}

/// Spawn `n` file-system clients on `machine`, wired to the file server.
#[allow(clippy::too_many_arguments)]
pub fn spawn_fs_clients(
    cluster: &mut Cluster,
    handles: &SystemHandles,
    machine: MachineId,
    n: u16,
    nfiles: u16,
    period_us: u32,
    op_bytes: u16,
    read_pct: u8,
) -> Result<Vec<ProcessId>> {
    let mut pids = Vec::with_capacity(n as usize);
    for i in 0..n {
        let seed = (machine.0 as u32) << 16 | i as u32;
        let pid = cluster.spawn(
            machine,
            FsClient::NAME,
            &FsClient::state(seed, nfiles, 0, period_us, op_bytes, read_pct),
            ImageLayout::default(),
        )?;
        let server = cluster.link_to(handles.fs_file)?;
        cluster.post(pid, wl::INIT, Bytes::new(), vec![server])?;
        pids.push(pid);
    }
    Ok(pids)
}

/// Spawn a scripted shell wired to the process manager.
pub fn spawn_shell(
    cluster: &mut Cluster,
    handles: &SystemHandles,
    machine: MachineId,
    script: &[ScriptEntry],
) -> Result<ProcessId> {
    let _ = encode_script(script); // validate encodability
    let pid = cluster.spawn_opt(
        machine,
        Shell::NAME,
        &Shell::state(script),
        ImageLayout::default(),
        true,
    )?;
    let pm = cluster.link_to(handles.procmgr)?;
    cluster.post(pid, wl::INIT, Bytes::new(), vec![pm])?;
    Ok(pid)
}

/// Sum of operations completed by the given fs clients.
pub fn total_client_ops(cluster: &Cluster, clients: &[ProcessId]) -> u64 {
    clients
        .iter()
        .filter_map(|&pid| {
            let m = cluster.where_is(pid)?;
            let p = cluster.node(m).kernel.process(pid)?;
            Some(demos_sysproc::fs_client_stats(&p.program.as_ref()?.save()).ops)
        })
        .sum()
}

/// Sum of errors observed by the given fs clients.
pub fn total_client_errors(cluster: &Cluster, clients: &[ProcessId]) -> u64 {
    clients
        .iter()
        .filter_map(|&pid| {
            let m = cluster.where_is(pid)?;
            let p = cluster.node(m).kernel.process(pid)?;
            Some(demos_sysproc::fs_client_stats(&p.program.as_ref()?.save()).errors)
        })
        .sum()
}
