//! Shard partitioning for the parallel executor.
//!
//! The cluster's machines are split into `S` contiguous, balanced index
//! ranges — one per worker thread. Contiguity keeps every per-machine
//! array (`nodes`, `cpu_busy_until`, recorders, …) splittable with
//! `split_at_mut`, so the workers borrow disjoint slices of the *same*
//! storage the sequential loop uses: no copying in, no copying out.
//!
//! The plan also derives the **lookahead** — the minimum latency over
//! edges whose endpoints live in different shards. Any frame that crosses
//! a shard boundary must traverse at least one cross-shard edge (routes
//! are edge paths; a path between machines in different shards changes
//! shard somewhere), so a frame sent at time `T` arrives no earlier than
//! `T + lookahead`. That bound is what lets a shard safely execute the
//! whole window `[W, W + lookahead)` without hearing from its neighbours.

use demos_net::Topology;
use demos_types::{Duration, MachineId};

/// How a cluster is split across worker threads, plus the synchronization
/// bound the split admits. Derived from (machine count, shard count,
/// topology) and cached against [`Topology::version`].
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Number of shards (worker threads). Always ≥ 1 and ≤ machine count.
    pub shards: usize,
    /// Half-open machine-index range `[start, end)` owned by each shard.
    pub ranges: Vec<(usize, usize)>,
    /// Machine index → owning shard.
    pub shard_of: Vec<u16>,
    /// Minimum latency over cross-shard edges: how far a shard may run
    /// past the global horizon without missing a cross-shard arrival.
    /// `None` means no edge crosses a shard boundary — shards are fully
    /// independent and windows are bounded only by the caller's deadline.
    pub lookahead: Option<Duration>,
    /// [`Topology::version`] this plan was computed against.
    pub topo_version: u64,
}

impl ShardPlan {
    /// Partition `n` machines over (at most) `shards` threads against
    /// `topo`. Shard counts above `n` are clamped; ranges are balanced to
    /// within one machine, earlier shards taking the remainder.
    pub fn new(n: usize, shards: usize, topo: &Topology) -> ShardPlan {
        let s = shards.clamp(1, n.max(1));
        let base = n / s;
        let rem = n % s;
        let mut ranges = Vec::with_capacity(s);
        let mut shard_of = vec![0u16; n];
        let mut start = 0usize;
        for i in 0..s {
            let len = base + usize::from(i < rem);
            let end = start + len;
            ranges.push((start, end));
            for slot in &mut shard_of[start..end] {
                *slot = i as u16;
            }
            start = end;
        }
        let lookahead = Self::cross_lookahead(topo, &shard_of, s);
        ShardPlan {
            shards: s,
            ranges,
            shard_of,
            lookahead,
            topo_version: topo.version(),
        }
    }

    /// Minimum latency over edges whose endpoints are in different shards.
    fn cross_lookahead(topo: &Topology, shard_of: &[u16], s: usize) -> Option<Duration> {
        if s <= 1 {
            return None;
        }
        // Uniform complete mesh: every cross-shard edge carries the same
        // parameters, O(1).
        if let Some(params) = topo.uniform() {
            return Some(params.latency);
        }
        // Dense: scan the (small — only edited topologies are dense)
        // matrix once per plan.
        let n = shard_of.len();
        let mut min: Option<Duration> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if shard_of[a] == shard_of[b] {
                    continue;
                }
                if let Some(e) = topo.edge(MachineId(a as u16), MachineId(b as u16)) {
                    min = Some(match min {
                        None => e.latency,
                        Some(m) if e.latency < m => e.latency,
                        Some(m) => m,
                    });
                }
            }
        }
        min
    }

    /// The shard owning machine index `i`.
    pub fn shard_of(&self, i: usize) -> usize {
        self.shard_of[i] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_net::EdgeParams;

    #[test]
    fn ranges_are_balanced_and_contiguous() {
        let topo = Topology::full_mesh(10, EdgeParams::default());
        let plan = ShardPlan::new(10, 4, &topo);
        assert_eq!(plan.shards, 4);
        assert_eq!(plan.ranges, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        for (s, &(start, end)) in plan.ranges.iter().enumerate() {
            for i in start..end {
                assert_eq!(plan.shard_of(i), s);
            }
        }
    }

    #[test]
    fn shard_count_clamps_to_machines() {
        let topo = Topology::full_mesh(3, EdgeParams::default());
        let plan = ShardPlan::new(3, 8, &topo);
        assert_eq!(plan.shards, 3);
        assert_eq!(plan.ranges, vec![(0, 1), (1, 2), (2, 3)]);
        let solo = ShardPlan::new(3, 1, &topo);
        assert_eq!(solo.shards, 1);
        assert_eq!(solo.lookahead, None, "one shard needs no lookahead");
    }

    #[test]
    fn uniform_mesh_lookahead_is_edge_latency() {
        let topo = Topology::full_mesh(8, EdgeParams::fast());
        let plan = ShardPlan::new(8, 2, &topo);
        assert_eq!(plan.lookahead, Some(Duration::from_micros(50)));
    }

    #[test]
    fn dense_lookahead_is_min_cross_edge() {
        // Line 0-1-2-3 split in two: the only cross-shard edge is 1—2.
        let mut topo = Topology::line(4, EdgeParams::default());
        topo.set_edge(
            MachineId(1),
            MachineId(2),
            EdgeParams {
                latency: Duration::from_micros(75),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let plan = ShardPlan::new(4, 2, &topo);
        assert_eq!(plan.lookahead, Some(Duration::from_micros(75)));
    }

    #[test]
    fn disconnected_shards_have_unbounded_lookahead() {
        // Two disjoint pairs: 0-1 and 2-3, split exactly at the gap.
        let mut topo = Topology::new(4);
        topo.set_edge(MachineId(0), MachineId(1), EdgeParams::default());
        topo.set_edge(MachineId(2), MachineId(3), EdgeParams::default());
        let plan = ShardPlan::new(4, 2, &topo);
        assert_eq!(plan.lookahead, None);
    }
}
