//! Automatic crash recovery: periodic checkpoints to simulated stable
//! storage, plus re-homing of processes whose machine was confirmed dead
//! by the kernels' heartbeat failure detector.
//!
//! §1 of the paper: "If the information necessary to transport a process
//! is saved in stable storage, it may be possible to 'migrate' a process
//! from a processor that has crashed to a working one." The
//! [`RecoveryManager`] plays the role of that stable storage plus the
//! recovery daemon: on a cadence it snapshots protected processes with
//! [`demos_kernel::Kernel::checkpoint`]; when every record of a process
//! vanished with a crashed machine, it restores the last checkpoint on a
//! surviving machine and installs forwarding addresses on the other
//! survivors, so stale links converge through the ordinary §4/§5
//! forwarding and link-update machinery.
//!
//! The manager never consults the simulator's god's-eye crash flags to
//! *trigger* recovery — only kernel-level death confirmations do that.
//! (It does use them as a guard against re-homing a process that is
//! still alive somewhere, which would be worse than not recovering.)

use std::collections::{BTreeMap, BTreeSet};

use demos_kernel::Checkpoint;
use demos_types::{Duration, MachineId, ProcessId, Time};

/// Recovery tuning.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// Checkpoint cadence for protected processes.
    pub checkpoint_every: Duration,
    /// Protect every user process automatically (otherwise only those
    /// passed to [`crate::cluster::Cluster::protect`]).
    pub protect_all: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: Duration::from_millis(20),
            protect_all: false,
        }
    }
}

/// One completed detection/recovery episode (for the latency metrics).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryEpisode {
    /// The machine that died.
    pub machine: MachineId,
    /// When the simulator crashed it (ground truth).
    pub crashed_at: Option<Time>,
    /// When the first surviving kernel confirmed it dead.
    pub detected_at: Time,
    /// When re-homing of its processes finished.
    pub recovered_at: Time,
    /// Processes restored from checkpoint.
    pub rehomed: u32,
}

/// Counters kept by the recovery manager.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryStats {
    /// Checkpoints written to stable storage.
    pub checkpoints: u64,
    /// Processes re-homed from a checkpoint.
    pub rehomed: u64,
    /// Restore attempts that failed on every survivor.
    pub rehome_failures: u64,
    /// Death confirmations acted upon.
    pub deaths_handled: u64,
}

/// Stable storage + recovery daemon state, owned by the cluster.
#[derive(Debug)]
pub struct RecoveryManager {
    pub(crate) cfg: RecoveryConfig,
    pub(crate) protected: BTreeSet<ProcessId>,
    pub(crate) store: BTreeMap<ProcessId, Checkpoint>,
    pub(crate) next_ck_at: Time,
    pub(crate) handled: BTreeSet<MachineId>,
    pub(crate) stats: RecoveryStats,
    pub(crate) episodes: Vec<RecoveryEpisode>,
    pub(crate) postmortems: Vec<(MachineId, String)>,
}

impl RecoveryManager {
    /// A fresh manager; the first checkpoint pass runs at one cadence in.
    pub fn new(cfg: RecoveryConfig) -> Self {
        RecoveryManager {
            cfg,
            protected: BTreeSet::new(),
            store: BTreeMap::new(),
            next_ck_at: Time::ZERO + cfg.checkpoint_every,
            handled: BTreeSet::new(),
            stats: RecoveryStats::default(),
            episodes: Vec::new(),
            postmortems: Vec::new(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Completed recovery episodes, in confirmation order.
    pub fn episodes(&self) -> &[RecoveryEpisode] {
        &self.episodes
    }

    /// The stored checkpoint for `pid`, if one was taken.
    pub fn checkpoint_of(&self, pid: ProcessId) -> Option<&Checkpoint> {
        self.store.get(&pid)
    }

    /// Post-mortem flight-recorder renderings, one per machine whose
    /// death was handled: the dead kernel's last recorded events, dumped
    /// at the moment recovery acted on the confirmation.
    pub fn postmortems(&self) -> &[(MachineId, String)] {
        &self.postmortems
    }
}
