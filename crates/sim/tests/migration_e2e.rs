//! End-to-end migration tests over the full stack: kernels, reliable
//! transport, migration engine, workload programs.

use demos_sim::prelude::*;
use demos_sim::programs::{cargo_received, pingpong_rallies, Cargo, PingPong};
use demos_types::LinkIdx;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// Spawn a pair of ping-pong processes on two machines, linked together,
/// with the first serving the ball.
fn pingpong_pair(cluster: &mut Cluster, a: MachineId, b: MachineId) -> (ProcessId, ProcessId) {
    let pa = cluster
        .spawn(
            a,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            b,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(
            pa,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[1]),
            vec![lb],
        )
        .unwrap();
    cluster
        .post(
            pb,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[0]),
            vec![la],
        )
        .unwrap();
    (pa, pb)
}

fn rallies(cluster: &Cluster, pid: ProcessId) -> u64 {
    let machine = cluster.where_is(pid).expect("process exists");
    let proc = cluster.node(machine).kernel.process(pid).unwrap();
    pingpong_rallies(&proc.program.as_ref().unwrap().save())
}

#[test]
fn pingpong_runs_across_machines() {
    let mut cluster = Cluster::mesh(2);
    let (pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(200));
    assert!(
        rallies(&cluster, pa) > 10,
        "rallies: {}",
        rallies(&cluster, pa)
    );
    assert!(rallies(&cluster, pb) > 10);
}

#[test]
fn migrate_idle_process_preserves_state() {
    let mut cluster = Cluster::mesh(3);
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(10_000), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(10));
    assert_eq!(cluster.where_is(pid), Some(m(0)));

    cluster.migrate(pid, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(500));

    assert_eq!(cluster.where_is(pid), Some(m(2)), "process moved to m2");
    // The source left a forwarding address pointing at m2 (§3.1 step 7).
    let fwd = cluster.node(m(0)).kernel.forwarding_table();
    assert_eq!(fwd.get(&pid).map(|e| e.to), Some(m(2)));
    // Ballast survived the byte-level transfer.
    let proc = cluster.node(m(2)).kernel.process(pid).unwrap();
    let state = proc.program.as_ref().unwrap().save();
    assert_eq!(state.len(), 8 + 10_000);
    assert_eq!(cargo_received(&state), 0);
    // All eight steps appear in the trace.
    for phase in [
        MigrationPhase::Frozen,
        MigrationPhase::Offered,
        MigrationPhase::Allocated,
        MigrationPhase::StateTransferred,
        MigrationPhase::ImageTransferred,
        MigrationPhase::PendingForwarded,
        MigrationPhase::CleanedUp,
        MigrationPhase::Restarted,
    ] {
        assert!(
            cluster.trace().phase_time(pid, phase, Time::ZERO).is_some(),
            "missing phase {phase:?}"
        );
    }
}

#[test]
fn migration_is_transparent_to_peer() {
    let mut cluster = Cluster::mesh(3);
    let (pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(100));
    let before = rallies(&cluster, pa);
    assert!(before > 0);

    // Move pb from m1 to m2 while balls are in flight.
    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(300));

    assert_eq!(cluster.where_is(pb), Some(m(2)));
    let after = rallies(&cluster, pa);
    assert!(
        after > before + 10,
        "rallies continue after migration: {before} → {after}"
    );

    // pa's durable link to pb was updated by the §5 mechanism: a message
    // sent on the stale link was forwarded, the forwarding kernel told
    // pa's kernel, and pa's link table got patched.
    assert!(
        cluster.trace().forwards_for(pb) >= 1,
        "at least one message was forwarded"
    );
    assert!(
        cluster.trace().link_updates_for(pa) >= 1,
        "pa's links were updated"
    );
    let pa_machine = cluster.where_is(pa).unwrap();
    let pa_proc = cluster.node(pa_machine).kernel.process(pa).unwrap();
    let peer_links: Vec<_> = pa_proc
        .links
        .iter()
        .filter(|(_, l)| l.target() == pb)
        .collect();
    assert!(!peer_links.is_empty());
    for (_, l) in peer_links {
        assert_eq!(l.addr.last_known_machine, m(2), "stale link was rehomed");
    }

    // Forwarding stops once links are updated: run on and compare.
    let forwards_then = cluster.trace().forwards_for(pb);
    cluster.run_for(Duration::from_millis(300));
    let forwards_now = cluster.trace().forwards_for(pb);
    assert!(
        forwards_now - forwards_then <= 2,
        "forwarding keeps happening: {forwards_then} → {forwards_now}"
    );
    // And the rally continues.
    assert!(rallies(&cluster, pa) > after);
}

#[test]
fn pending_queue_forwarded_on_migration() {
    let mut cluster = Cluster::mesh(2);
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(100), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    // Freeze indirectly: suspend so messages pile up, then migrate.
    cluster.node_mut(m(0)).kernel.suspend(pid);
    for i in 0..20u8 {
        cluster
            .post(
                pid,
                tags::USER_BASE + 9,
                bytes::Bytes::copy_from_slice(&[i]),
                vec![],
            )
            .unwrap();
    }
    {
        let proc = cluster.node(m(0)).kernel.process(pid).unwrap();
        assert_eq!(proc.queue.len(), 20);
    }
    cluster.migrate(pid, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(500));
    assert_eq!(cluster.where_is(pid), Some(m(1)));
    let proc = cluster.node(m(1)).kernel.process(pid).unwrap();
    assert_eq!(
        proc.queue.len(),
        20,
        "all queued messages forwarded (step 6)"
    );
    assert_eq!(
        proc.status,
        ExecStatus::Suspended,
        "status preserved (step 1)"
    );
    // Resume and let it consume them.
    cluster.node_mut(m(1)).kernel.resume(pid);
    cluster.run_for(Duration::from_millis(50));
    let proc = cluster.node(m(1)).kernel.process(pid).unwrap();
    let received = cargo_received(&proc.program.as_ref().unwrap().save());
    assert_eq!(
        received, 20,
        "every held message was delivered exactly once"
    );
}

#[test]
fn migration_chain_and_link_collapse() {
    let mut cluster = Cluster::mesh(5);
    let (pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(50));
    // Migrate pb along a chain m1 → m2 → m3 → m4.
    for dest in [2u16, 3, 4] {
        cluster.migrate(pb, m(dest)).unwrap();
        cluster.run_for(Duration::from_millis(400));
        assert_eq!(cluster.where_is(pb), Some(m(dest)));
    }
    // Forwarding addresses chain along the path.
    assert_eq!(cluster.node(m(1)).kernel.forwarding_table()[&pb].to, m(2));
    assert_eq!(cluster.node(m(2)).kernel.forwarding_table()[&pb].to, m(3));
    assert_eq!(cluster.node(m(3)).kernel.forwarding_table()[&pb].to, m(4));
    // The rally still runs and pa's link points directly at m4.
    let r1 = rallies(&cluster, pa);
    cluster.run_for(Duration::from_millis(200));
    assert!(rallies(&cluster, pa) > r1);
    let pa_proc = cluster.node(m(0)).kernel.process(pa).unwrap();
    for (_, l) in pa_proc.links.iter().filter(|(_, l)| l.target() == pb) {
        assert_eq!(l.addr.last_known_machine, m(4));
    }
}

#[test]
fn deterministic_replay() {
    let run = |seed: u64| {
        let mut cluster = ClusterBuilder::new(3).seed(seed).build();
        let (_pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
        cluster.run_for(Duration::from_millis(50));
        cluster.migrate(pb, m(2)).unwrap();
        cluster.run_for(Duration::from_millis(200));
        cluster.trace().fingerprint()
    };
    assert_eq!(run(7), run(7), "same seed, same trace");
}

#[test]
fn rejected_migration_resumes_at_source() {
    let mut cluster = ClusterBuilder::new(2)
        .migration_config(MigrationConfig {
            accept: AcceptPolicy::Never,
            ..Default::default()
        })
        .build();
    let (pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(50));
    let before = rallies(&cluster, pb);
    cluster.migrate(pb, m(0)).unwrap();
    cluster.run_for(Duration::from_millis(300));
    // Rejected by policy: still at m1, still rallying.
    assert_eq!(cluster.where_is(pb), Some(m(1)));
    assert!(
        rallies(&cluster, pb) > before,
        "process thawed after rejection"
    );
    assert_eq!(cluster.node(m(1)).engine.stats().aborted, 1);
    assert_eq!(cluster.node(m(0)).engine.stats().rejected, 1);
    let _ = pa;
}

#[test]
fn migrate_errors() {
    let mut cluster = Cluster::mesh(2);
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    // Unknown process.
    let ghost = ProcessId {
        creating_machine: m(1),
        local_uid: 999,
    };
    assert!(cluster.migrate(ghost, m(1)).is_err());
    // Migration to self.
    assert!(cluster.migrate(pid, m(0)).is_err());
}

#[test]
fn timer_survives_migration() {
    // A CpuBurner's pending timer entry is part of the resident state and
    // must fire at the destination.
    let mut cluster = Cluster::mesh(2);
    let pid = cluster
        .spawn(
            m(0),
            "cpu_burner",
            &demos_sim::programs::CpuBurner::state(0, 100, 5_000),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(50));
    let before = {
        let p = cluster.node(m(0)).kernel.process(pid).unwrap();
        demos_sim::programs::burner_done(&p.program.as_ref().unwrap().save())
    };
    assert!(before > 3);
    cluster.migrate(pid, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(300));
    assert_eq!(cluster.where_is(pid), Some(m(1)));
    let after = {
        let p = cluster.node(m(1)).kernel.process(pid).unwrap();
        demos_sim::programs::burner_done(&p.program.as_ref().unwrap().save())
    };
    assert!(
        after > before + 10,
        "burner keeps ticking at destination: {before} → {after}"
    );
}

#[test]
fn nondeliverable_after_kill_marks_links_dead() {
    let mut cluster = Cluster::mesh(2);
    let (pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(20));
    // Kill pb; pa's next ball bounces as non-deliverable and pa's link is
    // marked dead.
    let now = cluster.now();
    let mut out = demos_kernel::Outbox::default();
    {
        let node = cluster.node_mut(m(1));
        let mut tmp_net = demos_net::SimNetwork::new(
            demos_net::Topology::full_mesh(2, demos_net::EdgeParams::fast()),
            0,
        );
        node.kernel.kill(now, pb, &mut tmp_net, &mut out);
    }
    cluster.run_for(Duration::from_millis(100));
    let pa_proc = cluster.node(m(0)).kernel.process(pa).unwrap();
    let dead = pa_proc
        .links
        .iter()
        .filter(|(_, l)| l.target() == pb)
        .all(|(_, l)| {
            l.attrs
                .contains(<LinkAttrs as demos_kernel::LinkAttrsExt>::DEAD)
        });
    assert!(dead, "links to the dead process are marked DEAD");
    let idx = pa_proc
        .links
        .iter()
        .find(|(_, l)| l.target() == pb)
        .map(|(i, _)| i);
    let _: Option<LinkIdx> = idx;
}
