//! Self-requested migration (§3.1): a process asks the process manager to
//! move it, repeatedly, and hops around the cluster while computing.

use demos_sim::boot::{boot_system, BootConfig};
use demos_sim::prelude::*;
use demos_sim::programs::{nomad_stats, Nomad};

#[test]
fn nomad_hops_the_cluster_by_its_own_request() {
    let n = 4u16;
    let mut cluster = Cluster::mesh(n as usize);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let nomad = cluster
        .spawn(
            MachineId(1),
            "nomad",
            &Nomad::state(n, 20_000),
            ImageLayout::default(),
        )
        .unwrap();
    let pm = cluster.link_to(handles.procmgr).unwrap();
    cluster
        .post(nomad, wl::INIT, bytes::Bytes::new(), vec![pm])
        .unwrap();

    cluster.run_for(Duration::from_secs(2));

    let machine = cluster.where_is(nomad).expect("alive somewhere");
    let p = cluster.node(machine).kernel.process(nomad).unwrap();
    let (hops, failed, work) = nomad_stats(&p.program.as_ref().unwrap().save());
    assert!(hops >= 5, "nomad migrated itself repeatedly: {hops} hops");
    assert_eq!(failed, 0, "every self-request succeeded");
    assert!(work > hops, "it kept computing between hops");
    assert_eq!(p.migrations as u64, hops, "kernel agrees on the hop count");
    // It visited several machines: forwarding addresses mark the trail.
    let machines_with_entries = (0..n)
        .filter(|&i| {
            cluster
                .node(MachineId(i))
                .kernel
                .forwarding_table()
                .contains_key(&nomad)
        })
        .count();
    assert!(
        machines_with_entries >= 2,
        "trail of forwarding addresses: {machines_with_entries}"
    );
}

#[test]
fn nomad_survives_pm_migration() {
    // Even the process manager can move while nomads depend on it: their
    // stale PM links get forwarded and updated like any other.
    let n = 3u16;
    let mut cluster = Cluster::mesh(n as usize);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let nomad = cluster
        .spawn(
            MachineId(1),
            "nomad",
            &Nomad::state(n, 30_000),
            ImageLayout::default(),
        )
        .unwrap();
    let pm = cluster.link_to(handles.procmgr).unwrap();
    cluster
        .post(nomad, wl::INIT, bytes::Bytes::new(), vec![pm])
        .unwrap();
    cluster.run_for(Duration::from_millis(500));

    cluster.migrate(handles.procmgr, MachineId(2)).unwrap();
    cluster.run_for(Duration::from_secs(1));

    let machine = cluster.where_is(nomad).unwrap();
    let p = cluster.node(machine).kernel.process(nomad).unwrap();
    let (hops, failed, _) = nomad_stats(&p.program.as_ref().unwrap().save());
    assert!(
        hops >= 5,
        "hopping continued after the PM itself moved: {hops}"
    );
    assert_eq!(failed, 0);
}
