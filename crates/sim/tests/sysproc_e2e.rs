//! System-process integration: process-manager spawning and migration,
//! scripted shell sessions, memory-scheduler accounting.

use demos_sim::boot::{boot_system, spawn_shell, BootConfig};
use demos_sim::prelude::*;
use demos_sysproc::{shell_stats, Cmd, ScriptEntry};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn shell_state(cluster: &Cluster, pid: ProcessId) -> (u64, u64, u64, u64) {
    let machine = cluster.where_is(pid).unwrap();
    let p = cluster.node(machine).kernel.process(pid).unwrap();
    shell_stats(&p.program.as_ref().unwrap().save())
}

#[test]
fn shell_spawns_and_migrates_via_process_manager() {
    let mut cluster = Cluster::mesh(3);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let script = vec![
        ScriptEntry {
            delay_us: 1_000,
            cmd: Cmd::Spawn {
                machine: m(1),
                program: "cargo".into(),
                state: demos_sim::programs::Cargo::state(2048),
                layout: ImageLayout::default(),
            },
        },
        // Give the spawn time to complete before referencing it.
        ScriptEntry {
            delay_us: 50_000,
            cmd: Cmd::Migrate { nth: 0, dest: m(2) },
        },
        ScriptEntry {
            delay_us: 200_000,
            cmd: Cmd::Log("session done".into()),
        },
    ];
    let shell = spawn_shell(&mut cluster, &handles, m(0), &script).unwrap();
    cluster.run_for(Duration::from_secs(1));

    let (spawned_ok, spawn_failed, mig_ok, mig_failed) = shell_state(&cluster, shell);
    assert_eq!(spawned_ok, 1, "PM spawned the process");
    assert_eq!(spawn_failed, 0);
    assert_eq!(
        mig_ok, 1,
        "the Done (#9) notification reached the shell over its reply link"
    );
    assert_eq!(mig_failed, 0);

    // The spawned cargo process really is on m2 now.
    let cargo_pid = cluster.node(m(2)).kernel.pids().find(|p| {
        cluster
            .node(m(2))
            .kernel
            .process(*p)
            .map(|q| !q.privileged)
            .unwrap_or(false)
    });
    assert!(cargo_pid.is_some(), "user process ended up on m2");
    // The script's log line landed in the trace.
    assert!(cluster
        .trace()
        .find(|r| matches!(&r.event, TraceEvent::Log { text, .. } if text == "session done"))
        .is_some());
}

#[test]
fn shell_spawn_unknown_program_fails_gracefully() {
    let mut cluster = Cluster::mesh(2);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let script = vec![ScriptEntry {
        delay_us: 1_000,
        cmd: Cmd::Spawn {
            machine: m(1),
            program: "no_such_program".into(),
            state: vec![],
            layout: ImageLayout::default(),
        },
    }];
    let shell = spawn_shell(&mut cluster, &handles, m(0), &script).unwrap();
    cluster.run_for(Duration::from_millis(300));
    let (ok, failed, _, _) = shell_state(&cluster, shell);
    assert_eq!(ok, 0);
    assert_eq!(failed, 1, "PM relayed the kernel's CreateFailed");
}

#[test]
fn shell_kill_removes_process() {
    let mut cluster = Cluster::mesh(2);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let script = vec![
        ScriptEntry {
            delay_us: 1_000,
            cmd: Cmd::Spawn {
                machine: m(1),
                program: "cargo".into(),
                state: demos_sim::programs::Cargo::state(16),
                layout: ImageLayout::default(),
            },
        },
        ScriptEntry {
            delay_us: 50_000,
            cmd: Cmd::Kill { nth: 0 },
        },
    ];
    spawn_shell(&mut cluster, &handles, m(0), &script).unwrap();
    cluster.run_for(Duration::from_millis(200));
    assert_eq!(
        cluster.node(m(1)).kernel.nprocs(),
        0,
        "cargo was killed via PM → kernel Kill"
    );
    assert_eq!(cluster.node(m(1)).kernel.stats().exited, 1);
}

#[test]
fn migrating_the_process_manager_itself() {
    // "One of our test examples … migrates a file system process"; we go
    // further and move the process manager, then use it again.
    let mut cluster = Cluster::mesh(3);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    cluster.run_for(Duration::from_millis(50));

    cluster.migrate(handles.procmgr, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(500));
    assert_eq!(cluster.where_is(handles.procmgr), Some(m(2)));

    // A shell wired with a *stale* PM link still works: its first message
    // is forwarded, the link updated, and spawning proceeds.
    let script = vec![ScriptEntry {
        delay_us: 1_000,
        cmd: Cmd::Spawn {
            machine: m(1),
            program: "cargo".into(),
            state: demos_sim::programs::Cargo::state(8),
            layout: ImageLayout::default(),
        },
    }];
    // Build the stale link by hand: it claims the PM is still at m0.
    let shell = cluster
        .spawn_opt(
            m(0),
            "shell",
            &demos_sysproc::Shell::state(&script),
            ImageLayout::default(),
            true,
        )
        .unwrap();
    let stale_pm_link = demos_types::Link::to(handles.procmgr.at(m(0)));
    cluster
        .post(shell, wl::INIT, bytes::Bytes::new(), vec![stale_pm_link])
        .unwrap();
    cluster.run_for(Duration::from_millis(400));

    let (ok, failed, _, _) = shell_state(&cluster, shell);
    assert_eq!(
        (ok, failed),
        (1, 0),
        "stale link to migrated PM still functioned"
    );
    assert!(cluster.trace().forwards_for(handles.procmgr) >= 1);
}

#[test]
fn memsched_grants_and_releases() {
    use demos_sysproc::{sys, MemMsg};
    use demos_types::wire::Wire;

    let mut cluster = Cluster::mesh(2);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let probe = cluster
        .spawn(
            m(1),
            "cargo",
            &demos_sim::programs::Cargo::state(0),
            ImageLayout::default(),
        )
        .unwrap();
    let reply = cluster.link_to(probe).unwrap();
    cluster
        .post(
            handles.memsched,
            sys::MEMSCHED,
            MemMsg::Reserve {
                machine: m(1),
                bytes: 4096,
            }
            .to_bytes(),
            vec![reply],
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(100));
    // The probe counted the Granted reply.
    let p = cluster.node(m(1)).kernel.process(probe).unwrap();
    let received = demos_sim::programs::cargo_received(&p.program.as_ref().unwrap().save());
    assert_eq!(received, 1, "Granted reply delivered");
}
