//! End-to-end observability: causal spans and sampled gauges through a
//! live migration.
//!
//! A ping-pong pair keeps rallying while one end is migrated. The span
//! reconstructor must recover the chased balls' journeys (including the
//! forwarding hop, §4) in agreement with the raw trace, and the sampled
//! pending-queue gauge must show the held messages of §3.1 step 6 —
//! rising while the process is frozen, back to zero once it restarts.

use demos_kernel::TraceEvent;
use demos_sim::prelude::*;
use demos_sim::programs::{self, PingPong};
use demos_sim::spans_of;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// Spawn a linked ping-pong pair, first process serving.
fn pingpong_pair(cluster: &mut Cluster, a: MachineId, b: MachineId) -> (ProcessId, ProcessId) {
    let pa = cluster
        .spawn(
            a,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            b,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(
            pa,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[1]),
            vec![lb],
        )
        .unwrap();
    cluster
        .post(
            pb,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[0]),
            vec![la],
        )
        .unwrap();
    (pa, pb)
}

#[test]
fn spans_and_pending_gauge_track_a_live_migration() {
    let mut cluster = ClusterBuilder::new(3)
        .sample_every(Duration::from_micros(200))
        .build();
    let (pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(50));

    // Move pb from m1 to m2 while pa keeps sending balls at it.
    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(300));
    assert_eq!(cluster.where_is(pb), Some(m(2)));
    cluster.run_for(Duration::from_millis(100));

    // (a) Span reconstruction: balls sent on pa's stale link chased the
    // forwarding address on m1 before reaching pb on m2.
    let spans = spans_of(cluster.trace());
    let chased: Vec<_> = spans
        .iter()
        .filter(|s| s.dest == pb && s.forward_hops() >= 1)
        .collect();
    assert!(
        !chased.is_empty(),
        "at least one ball chased the forwarding chain"
    );

    for s in &chased {
        // Hop count agrees with the raw trace for this correlation id.
        let raw_forwards = cluster.trace().count(
            |r| matches!(r.event, TraceEvent::ForwardedMessage { corr, .. } if corr == s.corr),
        );
        assert_eq!(s.forward_hops(), raw_forwards, "span {:?}", s.corr);

        // Every hop corresponds to a trace record at the same instant on
        // the same machine carrying the same id.
        for hop in &s.hops {
            assert!(
                cluster.trace().records().iter().any(|r| r.at == hop.at
                    && r.machine == hop.machine
                    && r.event.corr() == Some(s.corr)),
                "hop {hop:?} of span {:?} not backed by a trace record",
                s.corr
            );
        }

        // Per-hop latencies are consistent: non-decreasing times, and the
        // segments sum to the end-to-end latency.
        assert!(
            s.hops.windows(2).all(|w| w[0].at <= w[1].at),
            "hops in time order"
        );
        let total = s.latency().expect("chased ball was delivered");
        let seg_sum: u64 = s.hop_latencies().iter().map(|d| d.as_micros()).sum();
        assert_eq!(
            seg_sum,
            total.as_micros(),
            "hop segments span submission→delivery"
        );

        // Delivery happened at the destination machine.
        assert_eq!(s.delivered().unwrap().machine, m(2));
    }

    // The chase triggered §5 link updates, attributed to the same spans.
    assert!(
        chased.iter().any(|s| s.link_updates_sent >= 1),
        "forwarding kernel told the sender's kernel where pb went"
    );

    // (b) The sampled pending-queue gauge on the source machine rose
    // while pb was frozen (arriving balls held, §3.1 step 6) …
    let series = cluster.series().expect("sampling was enabled");
    let pending = series
        .series("m1.pending")
        .expect("m1 pending gauge sampled");
    assert!(
        pending.max() >= 1,
        "held messages visible in the pending gauge"
    );
    // … and is back to zero after restart: the queue moved with the
    // process and the source cleaned up.
    assert_eq!(
        pending.last().unwrap().1,
        0,
        "pending queue drained after restart"
    );
    let _ = pa;
}

/// Run the live-migration scenario on a fresh cluster and return the
/// serialized flight-recorder dump.
fn scenario_dump(recorder_capacity: usize) -> Vec<u8> {
    let mut cluster = ClusterBuilder::new(3)
        .seed(99)
        .recorder_capacity(recorder_capacity)
        .build();
    let (_pa, pb) = pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(50));
    cluster.migrate(pb, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(300));
    cluster.recorder_dump()
}

#[test]
fn recorder_dump_is_byte_deterministic() {
    // Same seed, same capacity, two independent clusters: the black box
    // must be byte-identical — the property that makes repro-*.flight
    // artifacts and E16's phase-cost table trustworthy.
    let a = scenario_dump(demos_sim::DEFAULT_RECORDER_CAPACITY);
    let b = scenario_dump(demos_sim::DEFAULT_RECORDER_CAPACITY);
    assert!(!a.is_empty());
    assert_eq!(a, b, "recorder dumps diverged across identical runs");
}

#[test]
fn recorder_ring_wraps_at_tiny_capacity() {
    let dump = scenario_dump(8);
    let nodes = demos_obs::recorder::parse_dump(&dump).expect("dump parses");
    assert_eq!(nodes.len(), 3, "one section per machine");
    for d in &nodes {
        assert_eq!(d.capacity, 8);
        assert!(
            d.records.len() <= 8,
            "m{} holds {} records, over capacity",
            d.machine,
            d.records.len()
        );
        // Held records are the newest ones, still in time order.
        assert!(
            d.records.windows(2).all(|w| w[0].at <= w[1].at),
            "m{} records out of order after wrap",
            d.machine
        );
    }
    // The busy machines ran far past 8 events: the ring wrapped and
    // counted what it shed rather than growing.
    let wrapped: Vec<_> = nodes.iter().filter(|d| d.dropped() > 0).collect();
    assert!(!wrapped.is_empty(), "no ring ever wrapped at capacity 8");
    for d in &wrapped {
        assert_eq!(d.records.len(), 8, "a wrapped ring is exactly full");
        assert_eq!(d.total, d.dropped() + 8, "drop accounting consistent");
    }
}
