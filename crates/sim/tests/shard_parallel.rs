//! Sharded-executor equality and aggregation tests at the `demos-sim`
//! API level: identical clusters run with `shards(1)` and `shards(S)`
//! must agree on every observable — trace fingerprint and records,
//! flight-recorder dumps, per-phase step statistics, network traffic
//! counters, per-machine transport channel statistics, CPU accounting,
//! and the sampled metric time series. The chaos corpus suite covers
//! fault schedules; these tests pin the per-counter aggregation
//! (satellite: per-shard stats merged exactly once, no double counting)
//! and the fallback rules.

use demos_sim::prelude::*;
use demos_sim::programs::{CpuBurner, PingPong};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// Spawn a linked ping-pong pair across two machines, first serving.
fn pingpong_pair(c: &mut Cluster, a: MachineId, b: MachineId, limit: u64) {
    let pa = c
        .spawn(
            a,
            "pingpong",
            &PingPong::state(limit, 40),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = c
        .spawn(
            b,
            "pingpong",
            &PingPong::state(limit, 40),
            ImageLayout::default(),
        )
        .unwrap();
    let la = c.link_to(pa).unwrap();
    let lb = c.link_to(pb).unwrap();
    c.post(
        pa,
        programs::wl::INIT,
        bytes::Bytes::from_static(&[1]),
        vec![lb],
    )
    .unwrap();
    c.post(
        pb,
        programs::wl::INIT,
        bytes::Bytes::from_static(&[0]),
        vec![la],
    )
    .unwrap();
}

/// 64-machine cluster with cross-shard ping-pong traffic (pairs straddle
/// every shard boundary a power-of-two split can draw) and a periodic
/// CPU burner on every eighth machine.
fn build(n: u16, shards: usize) -> Cluster {
    let mut c = ClusterBuilder::new(n as usize)
        .seed(1234)
        .shards(shards)
        .sample_every(Duration::from_millis(3))
        .build();
    for i in 0..(n / 8) {
        // Pair (i, n-1-i): distance shrinks toward the middle, so pairs
        // cross one, several, or no shard boundaries.
        pingpong_pair(&mut c, m(i), m(n - 1 - i), 0);
    }
    for i in (0..n).step_by(8) {
        c.spawn(
            m(i),
            "cpu_burner",
            &CpuBurner::state(0, 120, 900),
            ImageLayout::default(),
        )
        .unwrap();
    }
    c
}

/// Everything observable about a finished run, in one comparable bundle.
#[derive(Debug, PartialEq)]
struct Observables {
    fingerprint: u64,
    records: usize,
    flight: Vec<u8>,
    cpu_visits: u64,
    frame_visits: u64,
    timer_visits: u64,
    net: demos_net::NetStats,
    channels: Vec<demos_net::ChannelStats>,
    cpu_busy: Vec<Duration>,
    series: Vec<(String, Vec<(Time, u64)>)>,
    end: Time,
}

fn observe(c: &Cluster) -> Observables {
    let stats = c.step_stats();
    Observables {
        fingerprint: c.trace().fingerprint(),
        records: c.trace().records().len(),
        flight: c.recorder_dump(),
        cpu_visits: stats.cpu_visits,
        frame_visits: stats.frame_visits,
        timer_visits: stats.timer_visits,
        net: c.net().stats(),
        channels: (0..c.len() as u16)
            .map(|i| c.node(m(i)).kernel.channel_stats())
            .collect(),
        cpu_busy: (0..c.len() as u16).map(|i| c.cpu_busy(m(i))).collect(),
        series: c
            .series()
            .map(|s| {
                s.iter()
                    .map(|(k, ts)| (k.to_string(), ts.points().to_vec()))
                    .collect()
            })
            .unwrap_or_default(),
        end: c.now(),
    }
}

fn run_observed(n: u16, shards: usize, for_ms: u64) -> (Observables, u64) {
    let mut c = build(n, shards);
    c.run_for(Duration::from_millis(for_ms));
    (observe(&c), c.parallel_segments())
}

/// The aggregation satellite: a 64-machine run at S = 4 must merge every
/// per-shard counter — step-stats visits, network traffic, per-machine
/// channel stats, CPU accounting, metric series — to exactly the
/// sequential totals. A double-counted (or dropped) shard shows up here
/// as a wrong sum even if the trace happens to match.
#[test]
fn stats_aggregate_identically_at_4_shards() {
    let (seq, seq_par) = run_observed(64, 1, 40);
    let (par, par_segments) = run_observed(64, 4, 40);
    assert_eq!(seq_par, 0, "S=1 must take the sequential path");
    assert!(par_segments > 0, "S=4 must take the parallel path");
    assert!(seq.frame_visits > 100, "workload generated real traffic");
    assert!(!seq.series.is_empty(), "sampling produced series");
    assert_eq!(par, seq);
}

/// Equality holds at S = 8 too, and at a shard count that does not
/// divide the machine count evenly (uneven ranges).
#[test]
fn uneven_and_wide_shard_counts_agree() {
    let (seq, _) = run_observed(48, 1, 25);
    for shards in [3, 5, 8] {
        let (par, segs) = run_observed(48, shards, 25);
        assert!(segs > 0, "S={shards} fell back to sequential");
        assert_eq!(par, seq, "diverged at S={shards}");
    }
}

/// Bit-determinism of the parallel executor itself: two identical runs
/// at S = 4 agree byte-for-byte (thread scheduling must not leak in).
#[test]
fn parallel_runs_are_deterministic() {
    let (a, _) = run_observed(64, 4, 30);
    let (b, _) = run_observed(64, 4, 30);
    assert_eq!(a, b);
}

/// Migration mid-workload: processes hopping across shard boundaries
/// between run segments keep every observable identical.
#[test]
fn migration_across_shards_stays_identical() {
    let run = |shards: usize| {
        let mut c = ClusterBuilder::new(16).seed(9).shards(shards).build();
        pingpong_pair(&mut c, m(0), m(15), 0);
        c.run_for(Duration::from_millis(5));
        let pid = c.node(m(0)).kernel.pids().next().unwrap();
        c.migrate(pid, m(8)).unwrap();
        c.run_for(Duration::from_millis(10));
        (observe(&c), c.parallel_segments())
    };
    let (seq, _) = run(1);
    let (par, segs) = run(4);
    assert!(segs > 0);
    assert_eq!(par, seq);
}

/// `run_quiescent` drains a finite workload to the same quiescent state
/// and finishing time on both paths.
#[test]
fn run_quiescent_agrees() {
    let run = |shards: usize| {
        let mut c = ClusterBuilder::new(24).seed(5).shards(shards).build();
        // Finite ping-pong: 200 balls, then silence.
        pingpong_pair(&mut c, m(1), m(22), 200);
        let end = c.run_quiescent(Duration::from_secs(10));
        (observe(&c), end, c.parallel_segments())
    };
    let (seq, seq_end, _) = run(1);
    let (par, par_end, segs) = run(4);
    assert!(segs > 0);
    assert_eq!(par_end, seq_end);
    assert_eq!(par, seq);
}

/// Crashed machines: frames to and from a corpse are dropped with the
/// same counts on both paths, and a revive mid-run re-enters the
/// parallel path cleanly.
#[test]
fn crash_and_revive_stay_identical() {
    let run = |shards: usize| {
        let mut c = ClusterBuilder::new(16).seed(3).shards(shards).build();
        pingpong_pair(&mut c, m(2), m(13), 0);
        c.run_for(Duration::from_millis(4));
        c.crash(m(8)); // idle bystander in another shard
        c.run_for(Duration::from_millis(4));
        c.revive(m(8));
        c.run_for(Duration::from_millis(4));
        observe(&c)
    };
    assert_eq!(run(4), run(1));
}

/// Fallback rules: configurations the conservative executor cannot
/// shard — lossy links, zero-latency edges, single machines — run
/// sequentially (and still correctly) regardless of the shard knob.
#[test]
fn unsupported_configurations_fall_back() {
    // Lossy mesh.
    let lossy = Topology::full_mesh(
        8,
        EdgeParams {
            latency: Duration::from_micros(100),
            ns_per_byte: 10,
            loss: 0.05,
        },
    );
    let mut c = ClusterBuilder::new(8).topology(lossy).shards(4).build();
    pingpong_pair(&mut c, m(0), m(7), 0);
    c.run_for(Duration::from_millis(10));
    assert_eq!(c.parallel_segments(), 0, "lossy links must fall back");
    assert!(!c.parallel_ready());

    // Zero-latency edges.
    let instant = Topology::full_mesh(
        8,
        EdgeParams {
            latency: Duration::ZERO,
            ns_per_byte: 0,
            loss: 0.0,
        },
    );
    let c = ClusterBuilder::new(8).topology(instant).shards(4).build();
    assert!(!c.parallel_ready(), "zero-latency edges admit no lookahead");

    // One machine.
    let c = ClusterBuilder::new(1).shards(4).build();
    assert!(!c.parallel_ready());
}

/// A shard count above the machine count clamps; equality still holds.
#[test]
fn oversubscribed_shards_clamp_and_agree() {
    let run = |shards: usize| {
        let mut c = ClusterBuilder::new(4).seed(11).shards(shards).build();
        pingpong_pair(&mut c, m(0), m(3), 0);
        c.run_for(Duration::from_millis(20));
        (observe(&c), c.parallel_segments())
    };
    let (seq, _) = run(1);
    let (par, segs) = run(64); // clamps to 4 shards
    assert!(segs > 0);
    assert_eq!(par, seq);
}
