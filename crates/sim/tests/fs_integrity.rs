//! File-system data integrity: a verifying client writes known patterns
//! and reads them back byte-for-byte — through the full four-process
//! pipeline (file server → cache → disk), across cache eviction, and
//! across migrations of the servers mid-stream.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, Program};
use demos_sim::boot::{boot_system, BootConfig};
use demos_sim::prelude::*;
use demos_sysproc::{sys, FsMsg};
use demos_types::wire::Wire;
use demos_types::LinkIdx;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn pattern(op: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((op * 37 + i as u64 * 11) % 251) as u8)
        .collect()
}

/// Writes `pattern(k)` to file slot `k % files`, then immediately reads it
/// back and verifies the bytes. One outstanding op; runs forever.
#[derive(Debug, Default)]
struct Verifier {
    server: u32,
    created: u16,
    files: u16,
    fids: Vec<u32>,
    op: u64,
    /// 0 = idle/created, 1 = awaiting write ack, 2 = awaiting read data.
    phase: u8,
    pub verified: u64,
    pub mismatches: u64,
    pub errors: u64,
}

const OP_BYTES: usize = 96;

impl Verifier {
    fn state(files: u16) -> Vec<u8> {
        Verifier {
            files,
            ..Default::default()
        }
        .save()
    }

    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let mut v = Verifier::default();
        if b.remaining() >= 4 + 2 + 2 {
            v.server = b.get_u32();
            v.created = b.get_u16();
            v.files = b.get_u16();
            v.op = b.get_u64();
            v.phase = b.get_u8();
            v.verified = b.get_u64();
            v.mismatches = b.get_u64();
            v.errors = b.get_u64();
            let n = if b.remaining() >= 2 { b.get_u16() } else { 0 };
            for _ in 0..n {
                if b.remaining() < 4 {
                    break;
                }
                v.fids.push(b.get_u32());
            }
        }
        Box::new(v)
    }

    fn off(&self) -> u32 {
        ((self.op % 5) as u32) * OP_BYTES as u32
    }

    fn fid(&self) -> u32 {
        self.fids[(self.op % self.fids.len() as u64) as usize]
    }

    fn next_op(&mut self, ctx: &mut Ctx<'_>) {
        let req = FsMsg::Write {
            fid: self.fid(),
            off: self.off(),
            bytes: Bytes::from(pattern(self.op, OP_BYTES)),
        };
        self.phase = 1;
        let _ = ctx.send(
            LinkIdx(self.server),
            sys::FS,
            req.to_bytes(),
            &[Carry::New(LinkAttrs::REPLY)],
        );
    }
}

impl Program for Verifier {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            x if x == wl::INIT => {
                if let Some(&server) = msg.links.first() {
                    self.server = server.0;
                    ctx.set_timer(Duration::from_millis(1), 1);
                }
                return;
            }
            x if x == sys::FS => {}
            _ => return,
        }
        let Ok(reply) = FsMsg::from_bytes(&msg.payload) else {
            return;
        };
        match (self.phase, reply) {
            (0, FsMsg::Done { fid, .. }) => {
                // A create completed.
                self.fids.push(fid);
                if (self.fids.len() as u16) < self.files {
                    self.created += 1;
                    ctx.set_timer(Duration::from_millis(1), 1);
                } else {
                    self.next_op(ctx);
                }
            }
            (1, FsMsg::Done { .. }) => {
                // Write acked: read it back.
                let req = FsMsg::Read {
                    fid: self.fid(),
                    off: self.off(),
                    len: OP_BYTES as u32,
                };
                self.phase = 2;
                let _ = ctx.send(
                    LinkIdx(self.server),
                    sys::FS,
                    req.to_bytes(),
                    &[Carry::New(LinkAttrs::REPLY)],
                );
            }
            (2, FsMsg::Data { bytes }) => {
                if bytes.as_ref() == pattern(self.op, OP_BYTES).as_slice() {
                    self.verified += 1;
                } else {
                    self.mismatches += 1;
                }
                self.op += 1;
                self.next_op(ctx);
            }
            (_, FsMsg::Err { .. }) => {
                self.errors += 1;
                self.op += 1;
                self.next_op(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if (self.fids.len() as u16) < self.files {
            let name = format!("v{}", self.created);
            let _ = ctx.send(
                LinkIdx(self.server),
                sys::FS,
                FsMsg::Create { name }.to_bytes(),
                &[Carry::New(LinkAttrs::REPLY)],
            );
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.server);
        b.put_u16(self.created);
        b.put_u16(self.files);
        b.put_u64(self.op);
        b.put_u8(self.phase);
        b.put_u64(self.verified);
        b.put_u64(self.mismatches);
        b.put_u64(self.errors);
        b.put_u16(self.fids.len() as u16);
        for f in &self.fids {
            b.put_u32(*f);
        }
        b.to_vec()
    }
}

fn stats(cluster: &Cluster, pid: ProcessId) -> (u64, u64, u64) {
    let machine = cluster.where_is(pid).unwrap();
    let s = cluster
        .node(machine)
        .kernel
        .process(pid)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    let mut b = Bytes::copy_from_slice(&s);
    b.advance(4 + 2 + 2 + 8 + 1);
    (b.get_u64(), b.get_u64(), b.get_u64())
}

fn build() -> (Cluster, ProcessId) {
    let mut cluster = ClusterBuilder::new(4)
        .register("verifier", Verifier::restore)
        .build();
    let handles = boot_system(
        &mut cluster,
        BootConfig {
            cache_blocks: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let v = cluster
        .spawn(
            m(1),
            "verifier",
            &Verifier::state(3),
            ImageLayout::default(),
        )
        .unwrap();
    let server = cluster.link_to(handles.fs_file).unwrap();
    cluster
        .post(v, wl::INIT, Bytes::new(), vec![server])
        .unwrap();
    (cluster, v)
}

#[test]
fn write_read_roundtrip_verified_bytes() {
    let (mut cluster, v) = build();
    cluster.run_for(Duration::from_secs(2));
    let (verified, mismatches, errors) = stats(&cluster, v);
    assert!(verified > 30, "verified {verified} round-trips");
    assert_eq!(mismatches, 0, "every byte came back intact");
    assert_eq!(errors, 0);
}

#[test]
fn integrity_holds_across_cache_eviction() {
    // cache_blocks = 2 but the verifier touches 3 files × 5 offsets across
    // up to 15 distinct blocks: constant eviction, write-through must keep
    // the disk authoritative.
    let (mut cluster, v) = build();
    cluster.run_for(Duration::from_secs(3));
    let (verified, mismatches, _) = stats(&cluster, v);
    assert!(verified > 50);
    assert_eq!(
        mismatches, 0,
        "write-through + eviction never served stale bytes"
    );
}

#[test]
fn integrity_holds_while_every_fs_process_migrates() {
    let mut cluster = ClusterBuilder::new(4)
        .register("verifier", Verifier::restore)
        .build();
    let handles = boot_system(
        &mut cluster,
        BootConfig {
            cache_blocks: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let v = cluster
        .spawn(
            m(1),
            "verifier",
            &Verifier::state(2),
            ImageLayout::default(),
        )
        .unwrap();
    let server = cluster.link_to(handles.fs_file).unwrap();
    cluster
        .post(v, wl::INIT, Bytes::new(), vec![server])
        .unwrap();
    cluster.run_for(Duration::from_millis(500));

    for (pid, dest) in [
        (handles.fs_file, m(2)),
        (handles.fs_cache, m(3)),
        (handles.fs_disk, m(2)),
        (handles.fs_dir, m(3)),
    ] {
        cluster.migrate(pid, dest).unwrap();
        cluster.run_for(Duration::from_millis(600));
        assert_eq!(cluster.where_is(pid), Some(dest));
    }
    cluster.run_for(Duration::from_secs(1));
    let (verified, mismatches, errors) = stats(&cluster, v);
    assert!(verified > 40, "verified {verified}");
    assert_eq!(mismatches, 0, "no corruption across four server migrations");
    assert_eq!(errors, 0, "no client-visible errors either");
}
