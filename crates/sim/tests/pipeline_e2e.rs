//! Pipeline workload: tokens flow source → stage → stage → sink over
//! links; migrating a middle stage must not lose or duplicate a token —
//! the "processes cooperating in a computation" of §3.1.

use demos_sim::prelude::*;
use demos_sim::programs::{stage_processed, Stage};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn processed(cluster: &Cluster, pid: ProcessId) -> u64 {
    let machine = cluster.where_is(pid).unwrap();
    let p = cluster.node(machine).kernel.process(pid).unwrap();
    stage_processed(&p.program.as_ref().unwrap().save())
}

/// Build a 4-stage pipeline across 4 machines, returning the stage pids.
fn pipeline(cluster: &mut Cluster) -> Vec<ProcessId> {
    let stages: Vec<ProcessId> = (0..4)
        .map(|i| {
            cluster
                .spawn(m(i), "stage", &Stage::state(100), ImageLayout::default())
                .unwrap()
        })
        .collect();
    // Wire each stage to the next (the last has no successor = sink).
    for w in stages.windows(2) {
        let next = cluster.link_to(w[1]).unwrap();
        cluster
            .post(w[0], wl::INIT, bytes::Bytes::new(), vec![next])
            .unwrap();
    }
    cluster.run_for(Duration::from_millis(10));
    stages
}

fn inject(cluster: &mut Cluster, head: ProcessId, n: usize) {
    for i in 0..n {
        cluster
            .post(head, wl::PIPE, bytes::Bytes::from(vec![i as u8]), vec![])
            .unwrap();
    }
}

#[test]
fn tokens_traverse_all_stages() {
    let mut cluster = Cluster::mesh(4);
    let stages = pipeline(&mut cluster);
    inject(&mut cluster, stages[0], 25);
    cluster.run_quiescent(Duration::from_secs(10));
    for (i, &s) in stages.iter().enumerate() {
        assert_eq!(processed(&cluster, s), 25, "stage {i} saw every token");
    }
}

#[test]
fn migrating_a_middle_stage_loses_nothing() {
    let mut cluster = Cluster::mesh(5);
    let stages = pipeline(&mut cluster);
    // Keep a steady token stream flowing while stage 1 moves.
    inject(&mut cluster, stages[0], 30);
    cluster.run_for(Duration::from_millis(10));
    cluster.migrate(stages[1], m(4)).unwrap();
    cluster.run_for(Duration::from_millis(50));
    inject(&mut cluster, stages[0], 30);
    cluster.run_quiescent(Duration::from_secs(10));

    assert_eq!(cluster.where_is(stages[1]), Some(m(4)));
    for (i, &s) in stages.iter().enumerate() {
        assert_eq!(
            processed(&cluster, s),
            60,
            "stage {i} processed every token exactly once across the migration"
        );
    }
    // Stage 0's link to stage 1 was updated to the new location.
    let p0 = cluster.node(m(0)).kernel.process(stages[0]).unwrap();
    for (_, l) in p0.links.iter().filter(|(_, l)| l.target() == stages[1]) {
        assert_eq!(l.addr.last_known_machine, m(4));
    }
}

#[test]
fn migrating_every_stage_onto_one_machine() {
    // Consolidation: the whole pipeline ends up colocated and still works
    // (local delivery short-circuits the network entirely).
    let mut cluster = Cluster::mesh(4);
    let stages = pipeline(&mut cluster);
    inject(&mut cluster, stages[0], 10);
    cluster.run_quiescent(Duration::from_secs(5));
    for &s in &stages[1..] {
        cluster.migrate(s, m(0)).unwrap();
        cluster.run_for(Duration::from_millis(400));
    }
    let net_before = cluster.net().stats().frames_sent;
    inject(&mut cluster, stages[0], 10);
    cluster.run_quiescent(Duration::from_secs(5));
    for &s in &stages {
        assert_eq!(processed(&cluster, s), 20);
    }
    let net_after = cluster.net().stats().frames_sent;
    assert_eq!(
        net_after, net_before,
        "colocated pipeline sends zero network frames"
    );
}
