//! Cluster harness API tests: fault injection semantics, quiescence,
//! trace queries, and configuration plumbing.

use demos_sim::prelude::*;
use demos_sim::programs::{burner_done, Cargo, CpuBurner};
use demos_types::proto::KernelOp;
use demos_types::wire::Wire;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

#[test]
fn run_quiescent_stops_when_nothing_happens() {
    let mut cluster = Cluster::mesh(2);
    cluster
        .spawn(
            m(0),
            "cpu_burner",
            &CpuBurner::state(10, 100, 1_000),
            ImageLayout::default(),
        )
        .unwrap();
    let end = cluster.run_quiescent(Duration::from_secs(60));
    // 10 iterations at 1ms period: finishes in ~11ms, nowhere near 60s.
    assert!(end < Time::from_micros(60_000_000));
    assert!(
        end >= Time::from_micros(10_000),
        "ran at least the 10 periods"
    );
    assert_eq!(
        cluster.node(m(0)).kernel.nprocs(),
        0,
        "burner exited on completion"
    );
}

#[test]
fn degrade_slows_and_restore_heals() {
    let run = |factor: f64| {
        let mut cluster = ClusterBuilder::new(1).seed(1).build();
        let pid = cluster
            .spawn(
                m(0),
                "cpu_burner",
                &CpuBurner::state(0, 900, 100),
                ImageLayout::default(),
            )
            .unwrap();
        cluster.degrade(m(0), factor);
        cluster.run_for(Duration::from_millis(500));
        let p = cluster.node(m(0)).kernel.process(pid).unwrap();
        burner_done(&p.program.as_ref().unwrap().save())
    };
    let healthy = run(1.0);
    let degraded = run(5.0);
    assert!(
        healthy as f64 > degraded as f64 * 3.0,
        "5x degradation shows: {healthy} vs {degraded}"
    );
}

#[test]
fn health_reflects_state() {
    let mut cluster = Cluster::mesh(2);
    assert_eq!(cluster.health(m(0)), 1.0);
    cluster.degrade(m(0), 4.0);
    assert_eq!(cluster.health(m(0)), 0.25);
    cluster.degrade(m(0), 0.5); // faster than nominal is still healthy
    assert_eq!(cluster.health(m(0)), 1.0);
    cluster.crash(m(1));
    assert_eq!(cluster.health(m(1)), 0.0);
    assert!(cluster.is_crashed(m(1)));
}

#[test]
fn crashed_machine_stops_executing() {
    let mut cluster = Cluster::mesh(2);
    let pid = cluster
        .spawn(
            m(0),
            "cpu_burner",
            &CpuBurner::state(0, 100, 1_000),
            ImageLayout::default(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(50));
    let before = {
        let p = cluster.node(m(0)).kernel.process(pid).unwrap();
        burner_done(&p.program.as_ref().unwrap().save())
    };
    cluster.crash(m(0));
    cluster.run_for(Duration::from_millis(100));
    let after = {
        let p = cluster.node(m(0)).kernel.process(pid).unwrap();
        burner_done(&p.program.as_ref().unwrap().save())
    };
    assert_eq!(before, after, "no progress on a crashed machine");
    assert_eq!(
        cluster.where_is(pid),
        None,
        "crashed processes are unreachable"
    );
}

#[test]
fn revive_gives_a_fresh_kernel() {
    let mut cluster = Cluster::mesh(2);
    cluster
        .spawn(m(0), "cargo", &Cargo::state(64), ImageLayout::default())
        .unwrap();
    assert_eq!(cluster.node(m(0)).kernel.nprocs(), 1);
    cluster.crash(m(0));
    cluster.revive(m(0));
    assert!(!cluster.is_crashed(m(0)));
    assert_eq!(
        cluster.node(m(0)).kernel.nprocs(),
        0,
        "processes died with the crash"
    );
    // The revived machine works: spawn + run on it.
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(16), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(10));
    assert_eq!(cluster.where_is(pid), Some(m(0)));
}

#[test]
fn post_dtk_query_status_roundtrip() {
    // QueryStatus over a DTK link: the kernel answers over the carried
    // reply link — exercised here through the public harness API plus a
    // probe process that records the reply.
    let mut cluster = Cluster::mesh(2);
    let target = cluster
        .spawn(m(1), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    cluster
        .post_dtk(
            target,
            m(1),
            demos_types::tags::KERNEL_OP,
            KernelOp::Suspend.to_bytes(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(50));
    assert_eq!(
        cluster.node(m(1)).kernel.process(target).unwrap().status,
        ExecStatus::Suspended
    );
    cluster
        .post_dtk(
            target,
            m(1),
            demos_types::tags::KERNEL_OP,
            KernelOp::Resume.to_bytes(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(50));
    assert_ne!(
        cluster.node(m(1)).kernel.process(target).unwrap().status,
        ExecStatus::Suspended
    );
}

#[test]
fn dtk_follows_forwarding_addresses() {
    // A control op addressed with a stale hint reaches the process's
    // kernel at its new home (§2.2: "without worrying about which
    // processor the process is on — or is moving to").
    let mut cluster = Cluster::mesh(3);
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    cluster.migrate(pid, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    assert_eq!(cluster.where_is(pid), Some(m(2)));
    // Address the Suspend to the OLD machine.
    cluster
        .post_dtk(
            pid,
            m(0),
            demos_types::tags::KERNEL_OP,
            KernelOp::Suspend.to_bytes(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(100));
    assert_eq!(
        cluster.node(m(2)).kernel.process(pid).unwrap().status,
        ExecStatus::Suspended,
        "control op chased the forwarding address"
    );
}

#[test]
fn capacity_rejection_on_spawn() {
    let kcfg = KernelConfig {
        max_processes: 2,
        ..Default::default()
    };
    let mut cluster = ClusterBuilder::new(1).kernel_config(kcfg).build();
    cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    assert!(cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .is_err());
}

#[test]
fn capacity_rejection_on_migration() {
    let kcfg = KernelConfig {
        max_processes: 1,
        ..Default::default()
    };
    let mut cluster = ClusterBuilder::new(2).kernel_config(kcfg).build();
    let a = cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    let _b = cluster
        .spawn(m(1), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    // m1 is full: the offer is rejected with Capacity and `a` stays put.
    cluster.migrate(a, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    assert_eq!(cluster.where_is(a), Some(m(0)));
    assert_eq!(cluster.node(m(1)).engine.stats().rejected, 1);
}

#[test]
fn gc_disabled_keeps_forwarding_addresses() {
    // Paper default: "we have not found it necessary to remove forwarding
    // addresses."
    let mut cluster = Cluster::mesh(3); // gc_forwarding = false by default
    let pid = cluster
        .spawn(m(0), "cargo", &Cargo::state(0), ImageLayout::default())
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    cluster.migrate(pid, m(1)).unwrap();
    cluster.run_for(Duration::from_millis(300));
    cluster
        .post_dtk(
            pid,
            m(1),
            demos_types::tags::KERNEL_OP,
            KernelOp::Kill.to_bytes(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(300));
    assert!(cluster.where_is(pid).is_none());
    assert!(
        cluster
            .node(m(0))
            .kernel
            .forwarding_table()
            .contains_key(&pid),
        "entry survives the process (paper default)"
    );
}
