//! Event-core scheduling cost tests: the indexed event loop must touch
//! only nodes with actual work, not scan the whole cluster. These pin
//! the per-step visit budget so a reintroduced O(n) scan fails loudly.

use demos_sim::prelude::*;
use demos_sim::programs::PingPong;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// Spawn a linked ping-pong pair across two machines, first serving.
fn pingpong_pair(cluster: &mut Cluster, a: MachineId, b: MachineId) {
    let pa = cluster
        .spawn(
            a,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            b,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(
            pa,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[1]),
            vec![lb],
        )
        .unwrap();
    cluster
        .post(
            pb,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[0]),
            vec![la],
        )
        .unwrap();
}

/// 64 machines, two active ping-pong pairs, everything else idle. The
/// scan-based loop visited all 64 nodes per step (≥64 visits/step); the
/// indexed loop must only touch the four machines doing work, plus their
/// transport chatter — single digits per step.
#[test]
fn mostly_idle_cluster_stays_within_visit_budget() {
    let mut cluster = ClusterBuilder::new(64).seed(7).no_trace().build();
    pingpong_pair(&mut cluster, m(3), m(11));
    pingpong_pair(&mut cluster, m(40), m(59));
    // Warm up past bootstrap, then measure steady state.
    cluster.run_for(Duration::from_millis(5));
    cluster.reset_step_stats();
    cluster.run_for(Duration::from_millis(100));
    let stats = cluster.step_stats();
    assert!(
        stats.steps > 100,
        "expected a busy steady state, got {} steps",
        stats.steps
    );
    let per_step = stats.node_visits() as f64 / stats.steps as f64;
    assert!(
        per_step <= 10.0,
        "event loop visits {per_step:.2} nodes/step on a 64-machine \
         mostly-idle cluster (stats: {stats:?}); an O(n) scan crept back in"
    );
}

/// The budget must not grow with cluster size: the same two-pair workload
/// on 8 and 128 machines costs the same visits per step.
#[test]
fn visit_cost_is_independent_of_cluster_size() {
    let run = |n: usize| {
        let mut cluster = ClusterBuilder::new(n).seed(7).no_trace().build();
        pingpong_pair(&mut cluster, m(0), m(1));
        pingpong_pair(&mut cluster, m(2), m(3));
        cluster.run_for(Duration::from_millis(5));
        cluster.reset_step_stats();
        cluster.run_for(Duration::from_millis(100));
        let stats = cluster.step_stats();
        stats.node_visits() as f64 / stats.steps.max(1) as f64
    };
    let small = run(8);
    let large = run(128);
    assert!(
        large <= small * 1.5 + 1.0,
        "visits/step grew with cluster size: {small:.2} @ 8 machines vs \
         {large:.2} @ 128"
    );
}

/// Sanity: the counters actually count, and reset clears them.
#[test]
fn step_stats_accumulate_and_reset() {
    let mut cluster = ClusterBuilder::new(2).seed(1).no_trace().build();
    pingpong_pair(&mut cluster, m(0), m(1));
    cluster.run_for(Duration::from_millis(10));
    let stats = cluster.step_stats();
    assert!(stats.steps > 0);
    assert!(stats.cpu_visits > 0, "pingpong activations ran");
    assert!(stats.frame_visits > 0, "balls crossed the network");
    assert_eq!(
        stats.node_visits(),
        stats.cpu_visits + stats.frame_visits + stats.timer_visits
    );
    cluster.reset_step_stats();
    assert_eq!(cluster.step_stats(), StepStats::default());
}
