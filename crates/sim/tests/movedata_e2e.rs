//! End-to-end user-level move-data: the §2.2 mechanism for large data
//! transfers through data-area links, across machines, with live reads,
//! writes, validation failures, and interaction with migration.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, MoveDataReq, Program};
use demos_sim::prelude::*;
use demos_types::{DataArea, LinkIdx};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

const GRANT: u16 = tags::USER_BASE + 10;
const GO_READ: u16 = tags::USER_BASE + 11;
const GO_WRITE: u16 = tags::USER_BASE + 12;

/// Holds a 1 KiB buffer as its program state and grants a data-area link
/// over it on request. The buffer lives at offset 4 of the data segment
/// (after the state-length header), so the granted window starts there.
struct BufferHost {
    buf: Vec<u8>,
}

impl BufferHost {
    const LEN: u32 = 1024;
    fn state() -> Vec<u8> {
        (0..Self::LEN).map(|i| (i % 251) as u8).collect()
    }
    fn restore(state: &[u8]) -> Box<dyn Program> {
        Box::new(BufferHost {
            buf: state.to_vec(),
        })
    }
}

impl Program for BufferHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type == GRANT {
            // Reply with a read/write window over the buffer region of the
            // data segment ([4, 4+LEN): past the 4-byte state-length header).
            if let Some(reply) = msg.reply() {
                let _ = ctx.send(
                    reply,
                    GRANT,
                    Bytes::new(),
                    &[Carry::NewArea(
                        LinkAttrs::DATA_READ | LinkAttrs::DATA_WRITE,
                        DataArea {
                            offset: 4,
                            len: BufferHost::LEN,
                        },
                    )],
                );
            }
        }
    }

    fn on_data_write(&mut self, off: u32, bytes: &[u8]) {
        // Window offsets are data-segment offsets; the buffer begins at 4.
        let start = off.saturating_sub(4) as usize;
        if start + bytes.len() <= self.buf.len() {
            self.buf[start..start + bytes.len()].copy_from_slice(bytes);
        }
    }

    fn save(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

/// Drives move-data ops against a granted window and records completions.
#[derive(Default)]
struct Copier {
    area: u32,
    done: Vec<(u16, u8, u32)>, // (token, status, len)
}

impl Copier {
    fn restore(state: &[u8]) -> Box<dyn Program> {
        let mut b = Bytes::copy_from_slice(state);
        let area = if b.remaining() >= 4 { b.get_u32() } else { 0 };
        let mut done = Vec::new();
        while b.remaining() >= 7 {
            done.push((b.get_u16(), b.get_u8(), b.get_u32()));
        }
        Box::new(Copier { area, done })
    }
}

impl Program for Copier {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            GRANT if !msg.links.is_empty() => {
                self.area = msg.links[0].0;
            }
            GO_READ => {
                // Read 600 bytes of the remote buffer into our own data
                // segment at offset 100.
                let _ = ctx.move_data(MoveDataReq {
                    link: LinkIdx(self.area),
                    read: true,
                    remote_off: 0,
                    local_off: 100,
                    len: 600,
                    token: 1,
                });
            }
            GO_WRITE => {
                // Write 64 bytes into the remote buffer at 512, sourced
                // from our own data segment's (zeroed) padding region.
                let _ = ctx.move_data(MoveDataReq {
                    link: LinkIdx(self.area),
                    read: false,
                    remote_off: 512,
                    local_off: 2000,
                    len: 64,
                    token: 2,
                });
            }
            demos_kernel::local_tags::MOVE_DATA_DONE => {
                if let Some((tok, status, len)) = demos_kernel::decode_md_done(&msg.payload) {
                    self.done.push((tok, status, len));
                }
            }
            _ => {}
        }
    }

    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.area);
        for (t, s, l) in &self.done {
            b.put_u16(*t);
            b.put_u8(*s);
            b.put_u32(*l);
        }
        b.to_vec()
    }
}

fn build() -> Cluster {
    ClusterBuilder::new(3)
        .register("buffer_host", BufferHost::restore)
        .register("copier", Copier::restore)
        .build()
}

fn copier_done(cluster: &Cluster, pid: ProcessId) -> Vec<(u16, u8, u32)> {
    let machine = cluster.where_is(pid).unwrap();
    let state = cluster
        .node(machine)
        .kernel
        .process(pid)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    let mut b = Bytes::copy_from_slice(&state[4..]);
    let mut out = Vec::new();
    while b.remaining() >= 7 {
        out.push((b.get_u16(), b.get_u8(), b.get_u32()));
    }
    out
}

fn setup(cluster: &mut Cluster) -> (ProcessId, ProcessId) {
    let host = cluster
        .spawn(
            m(0),
            "buffer_host",
            &BufferHost::state(),
            ImageLayout::default(),
        )
        .unwrap();
    let copier = cluster
        .spawn(m(1), "copier", &[0u8; 4], ImageLayout::default())
        .unwrap();
    // The copier asks for a grant: post a GRANT to the host with the
    // copier as reply target.
    let reply = cluster.link_to(copier).unwrap();
    cluster
        .post(host, GRANT, Bytes::new(), vec![reply])
        .unwrap();
    cluster.run_for(Duration::from_millis(50));
    (host, copier)
}

#[test]
fn remote_read_through_area_link() {
    let mut cluster = build();
    let (host, copier) = setup(&mut cluster);
    cluster.post(copier, GO_READ, Bytes::new(), vec![]).unwrap();
    cluster.run_for(Duration::from_millis(200));

    let done = copier_done(&cluster, copier);
    assert_eq!(done, vec![(1, 0, 600)], "read completed: {done:?}");
    // The bytes landed in the copier's data segment at offset 100 and
    // match the host's live buffer pattern.
    let cm = cluster.where_is(copier).unwrap();
    let data = cluster
        .node(cm)
        .kernel
        .process(copier)
        .unwrap()
        .image
        .read_data(100, 600)
        .unwrap()
        .to_vec();
    let expect: Vec<u8> = (0..600u32).map(|i| (i % 251) as u8).collect();
    assert_eq!(data, expect);
    let _ = host;
}

#[test]
fn remote_write_through_area_link_reaches_program() {
    let mut cluster = build();
    let (host, copier) = setup(&mut cluster);
    cluster
        .post(copier, GO_WRITE, Bytes::new(), vec![])
        .unwrap();
    cluster.run_for(Duration::from_millis(200));

    let done = copier_done(&cluster, copier);
    assert_eq!(
        done,
        vec![(2, 0, 64)],
        "write confirmed end-to-end: {done:?}"
    );
    // The host *program* saw the write (on_data_write hook): its saved
    // buffer shows the copier's zero bytes at 512..576.
    let hm = cluster.where_is(host).unwrap();
    let buf = cluster
        .node(hm)
        .kernel
        .process(host)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    assert!(buf[512..576].iter().all(|&b| b == 0), "written region");
    assert_eq!(
        buf[511],
        (511 % 251) as u8,
        "byte before window edge untouched"
    );
    assert_eq!(
        buf[576],
        (576 % 251) as u8,
        "byte after written range untouched"
    );
}

#[test]
fn write_survives_host_migration_afterwards() {
    // A write ingested via on_data_write is part of program state, so it
    // migrates with the process.
    let mut cluster = build();
    let (host, copier) = setup(&mut cluster);
    cluster
        .post(copier, GO_WRITE, Bytes::new(), vec![])
        .unwrap();
    cluster.run_for(Duration::from_millis(200));
    cluster.migrate(host, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    assert_eq!(cluster.where_is(host), Some(m(2)));
    let buf = cluster
        .node(m(2))
        .kernel
        .process(host)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    assert!(
        buf[512..576].iter().all(|&b| b == 0),
        "remote write survived migration"
    );
}

#[test]
fn read_follows_host_after_migration() {
    // The copier's area link goes stale when the host migrates; the DTK
    // ReadReq chases the forwarding address and the read still works.
    let mut cluster = build();
    let (host, copier) = setup(&mut cluster);
    cluster.migrate(host, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(400));
    cluster.post(copier, GO_READ, Bytes::new(), vec![]).unwrap();
    cluster.run_for(Duration::from_millis(300));
    let done = copier_done(&cluster, copier);
    assert_eq!(
        done,
        vec![(1, 0, 600)],
        "read served from the new home: {done:?}"
    );
    assert!(
        cluster.trace().forwards_for(host) >= 1,
        "request was forwarded"
    );
}

#[test]
fn out_of_window_rejected() {
    // A request outside the granted window fails with an error completion
    // and no data movement.
    let mut cluster = build();
    let (_host, copier) = setup(&mut cluster);
    // Patch the copier's request: remote_off 1000 + len 600 exceeds the
    // 1024-byte window. Easiest path: a custom GO via direct ctx isn't
    // available, so grant-area validation is covered at the unit level;
    // here verify the *local* bounds check instead (local_off beyond the
    // copier's own segment is caught at completion).
    let machine = cluster.where_is(copier).unwrap();
    {
        let node = cluster.node_mut(machine);
        let proc = node.kernel.process_mut(copier).unwrap();
        // Shrink the copier's view by replacing its area link with one
        // whose window is only 8 bytes: a 600-byte read must be refused.
        let idx = LinkIdx(demos_sim::programs::cargo_received(&[0; 8]) as u32 + 1);
        let _ = idx; // (area link is at index 1: the first installed link)
        let link = proc.links.get(LinkIdx(1)).unwrap();
        let mut small = link;
        small.area = Some(DataArea { offset: 4, len: 8 });
        proc.links.remove(LinkIdx(1)).unwrap();
        let new_idx = proc.links.insert(small);
        // Point the program's stored index at the shrunken link.
        let mut state = proc.program.as_ref().unwrap().save();
        state[..4].copy_from_slice(&new_idx.0.to_be_bytes());
        let prog = Copier::restore(&state);
        proc.program = Some(prog);
    }
    cluster.post(copier, GO_READ, Bytes::new(), vec![]).unwrap();
    cluster.run_for(Duration::from_millis(200));
    let done = copier_done(&cluster, copier);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].0, 1, "token echoed");
    assert_ne!(done[0].1, 0, "completion reports failure");
}
