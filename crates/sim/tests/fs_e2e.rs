//! File-system tests, culminating in the paper's own hard case: migrating
//! a file-system process while several user processes perform I/O (§2.3).

use demos_sim::boot::{
    boot_system, spawn_fs_clients, total_client_errors, total_client_ops, BootConfig,
};
use demos_sim::prelude::*;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

#[test]
fn clients_do_io_through_the_four_fs_processes() {
    let mut cluster = Cluster::mesh(3);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let clients = spawn_fs_clients(&mut cluster, &handles, m(1), 3, 2, 2_000, 128, 50).unwrap();
    cluster.run_for(Duration::from_millis(500));
    let ops = total_client_ops(&cluster, &clients);
    assert!(ops > 50, "clients completed {ops} ops");
    assert_eq!(total_client_errors(&cluster, &clients), 0);
    // The disk actually served blocks.
    let disk = cluster.node(m(0)).kernel.process(handles.fs_disk).unwrap();
    let disk_state = disk.program.as_ref().unwrap().save();
    assert!(disk_state.len() > 512, "disk holds allocated blocks");
}

#[test]
fn data_written_is_data_read() {
    // One client, 100% writes for a while, then check a read round-trips
    // through cache+disk: covered indirectly — the client writes patterns
    // and a separate verification reads a block via the trace-free path.
    let mut cluster = Cluster::mesh(2);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let clients = spawn_fs_clients(&mut cluster, &handles, m(1), 1, 1, 1_000, 256, 50).unwrap();
    cluster.run_for(Duration::from_secs(1));
    let ops = total_client_ops(&cluster, &clients);
    assert!(ops > 100);
    assert_eq!(
        total_client_errors(&cluster, &clients),
        0,
        "mixed read/write stream is clean"
    );
}

#[test]
fn migrate_file_server_under_client_io() {
    // The paper's test: "It migrates a file system process while several
    // user processes are performing I/O."
    let mut cluster = Cluster::mesh(4);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let clients = spawn_fs_clients(&mut cluster, &handles, m(1), 2, 2, 2_000, 128, 50).unwrap();
    let more = spawn_fs_clients(&mut cluster, &handles, m(2), 2, 2, 2_000, 128, 50).unwrap();
    let all: Vec<ProcessId> = clients.into_iter().chain(more).collect();

    cluster.run_for(Duration::from_millis(300));
    let before = total_client_ops(&cluster, &all);
    assert!(before > 20);

    // Move the client-facing file server m0 → m3 while I/O is in flight.
    cluster.migrate(handles.fs_file, m(3)).unwrap();
    cluster.run_for(Duration::from_millis(700));

    assert_eq!(cluster.where_is(handles.fs_file), Some(m(3)));
    let after = total_client_ops(&cluster, &all);
    assert!(
        after > before + 20,
        "I/O continued through the migration: {before} → {after}"
    );
    assert_eq!(
        total_client_errors(&cluster, &all),
        0,
        "no client observed an error"
    );

    // The server had many stale links pointing at it (the hard case of
    // §2.4/§5); they were forwarded and then updated.
    assert!(cluster.trace().forwards_for(handles.fs_file) >= 1);
    let updates = cluster.trace().count(|r| {
        matches!(r.event, TraceEvent::LinkUpdateApplied { migrated, patched, .. }
            if migrated == handles.fs_file && patched > 0)
    });
    assert!(updates >= 1, "client links to the server were updated");

    // And the rest of the quartet still lives on m0.
    assert_eq!(cluster.where_is(handles.fs_disk), Some(m(0)));
    assert_eq!(cluster.where_is(handles.fs_cache), Some(m(0)));
}

#[test]
fn migrate_disk_server_under_io() {
    // Even the process whose image contains the disk blocks can move.
    let mut cluster = Cluster::mesh(3);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let clients = spawn_fs_clients(&mut cluster, &handles, m(1), 2, 1, 3_000, 256, 30).unwrap();
    cluster.run_for(Duration::from_millis(400));
    let before = total_client_ops(&cluster, &clients);

    cluster.migrate(handles.fs_disk, m(2)).unwrap();
    cluster.run_for(Duration::from_millis(800));

    assert_eq!(cluster.where_is(handles.fs_disk), Some(m(2)));
    let after = total_client_ops(&cluster, &clients);
    assert!(
        after > before,
        "I/O resumed after the disk server moved: {before} → {after}"
    );
    assert_eq!(total_client_errors(&cluster, &clients), 0);
}

#[test]
fn migrate_whole_fs_quartet_sequentially() {
    let mut cluster = Cluster::mesh(3);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    let clients = spawn_fs_clients(&mut cluster, &handles, m(1), 1, 1, 3_000, 128, 50).unwrap();
    cluster.run_for(Duration::from_millis(300));

    for pid in [
        handles.fs_dir,
        handles.fs_cache,
        handles.fs_file,
        handles.fs_disk,
    ] {
        cluster.migrate(pid, m(2)).unwrap();
        cluster.run_for(Duration::from_millis(600));
        assert_eq!(cluster.where_is(pid), Some(m(2)), "{pid} moved");
    }
    let before = total_client_ops(&cluster, &clients);
    cluster.run_for(Duration::from_millis(500));
    let after = total_client_ops(&cluster, &clients);
    assert!(
        after > before,
        "file system fully relocated and still serving: {before} → {after}"
    );
    assert_eq!(total_client_errors(&cluster, &clients), 0);
}

#[test]
fn switchboard_lookup_roundtrip() {
    // A client process can discover the fs through the switchboard.
    use demos_sysproc::{sys, SbMsg};
    use demos_types::wire::Wire;

    let mut cluster = Cluster::mesh(2);
    let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
    cluster.run_for(Duration::from_millis(50));

    // Post a Lookup whose reply goes to a cargo process; the carried link
    // in the reply proves distribution works.
    let probe = cluster
        .spawn(
            m(1),
            "cargo",
            &demos_sim::programs::Cargo::state(0),
            ImageLayout::default(),
        )
        .unwrap();
    let reply = cluster.link_to(probe).unwrap();
    cluster
        .post(
            handles.switchboard,
            sys::SWITCHBOARD,
            SbMsg::Lookup { name: "fs".into() }.to_bytes(),
            vec![reply],
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(100));
    let p = cluster.node(m(1)).kernel.process(probe).unwrap();
    assert!(
        p.links.iter().any(|(_, l)| l.target() == handles.fs_file),
        "probe received a link to the fs via the switchboard"
    );
}
