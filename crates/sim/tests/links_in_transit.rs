//! §2.4: "Links may be either in some process's link table or in a message
//! that is enroute to a process." Links riding inside messages that get
//! held and forwarded by a migration must still work at the destination —
//! capability passing survives relocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_kernel::{Carry, Ctx, Delivered, Program};
use demos_sim::prelude::*;
use demos_types::LinkIdx;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

const HANDOFF: u16 = tags::USER_BASE + 20;
const POKE: u16 = tags::USER_BASE + 21;

/// On HANDOFF (carrying a link), immediately sends POKE over that link.
#[derive(Default)]
struct Introducee {
    pokes_sent: u64,
}

impl Program for Introducee {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type == HANDOFF {
            if let Some(&link) = msg.links.first() {
                if ctx.send(link, POKE, Bytes::new(), &[]).is_ok() {
                    self.pokes_sent += 1;
                }
            }
        }
    }
    fn save(&self) -> Vec<u8> {
        self.pokes_sent.to_be_bytes().to_vec()
    }
}

/// Counts POKEs.
#[derive(Default)]
struct Target {
    pokes: u64,
}

impl Program for Target {
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Delivered) {
        if msg.msg_type == POKE {
            self.pokes += 1;
        }
    }
    fn save(&self) -> Vec<u8> {
        self.pokes.to_be_bytes().to_vec()
    }
}

/// On GO, sends HANDOFF to the link in slot 0, carrying the link in slot 1.
#[derive(Default)]
struct Introducer {
    to: u32,
    carried: u32,
}

const GO: u16 = tags::USER_BASE + 22;

impl Program for Introducer {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivered) {
        match msg.msg_type {
            x if x == wl::INIT && msg.links.len() >= 2 => {
                self.to = msg.links[0].0;
                self.carried = msg.links[1].0;
            }
            x if x == GO => {
                let _ = ctx.send(
                    LinkIdx(self.to),
                    HANDOFF,
                    Bytes::new(),
                    &[Carry::Move(LinkIdx(self.carried))],
                );
            }
            _ => {}
        }
    }
    fn save(&self) -> Vec<u8> {
        let mut b = BytesMut::new();
        b.put_u32(self.to);
        b.put_u32(self.carried);
        b.to_vec()
    }
}

fn counter(cluster: &Cluster, pid: ProcessId) -> u64 {
    let machine = cluster.where_is(pid).unwrap();
    let s = cluster
        .node(machine)
        .kernel
        .process(pid)
        .unwrap()
        .program
        .as_ref()
        .unwrap()
        .save();
    let mut b = Bytes::copy_from_slice(&s);
    b.get_u64()
}

#[test]
fn carried_link_survives_hold_and_forward() {
    let mut cluster = ClusterBuilder::new(4)
        .register("introducee", |_| Box::<Introducee>::default())
        .register("target", |_| Box::<Target>::default())
        .register("introducer", |_| Box::<Introducer>::default())
        .build();

    // A (introducer, m0) will hand B (introducee, m1) a link to C (target, m2).
    let a = cluster
        .spawn(m(0), "introducer", &[0u8; 8], ImageLayout::default())
        .unwrap();
    let b = cluster
        .spawn(m(1), "introducee", &[0u8; 8], ImageLayout::default())
        .unwrap();
    let c = cluster
        .spawn(m(2), "target", &[0u8; 8], ImageLayout::default())
        .unwrap();
    let lb = cluster.link_to(b).unwrap();
    let lc = cluster.link_to(c).unwrap();
    cluster
        .post(a, wl::INIT, Bytes::new(), vec![lb, lc])
        .unwrap();
    cluster.run_for(Duration::from_millis(20));

    // Freeze B by starting its migration, then fire the handoff so the
    // HANDOFF message (with the link to C inside) lands on B's in-migration
    // queue and is forwarded in step 6.
    cluster.migrate(b, m(3)).unwrap();
    cluster.post(a, GO, Bytes::new(), vec![]).unwrap();
    cluster.run_for(Duration::from_millis(600));

    assert_eq!(cluster.where_is(b), Some(m(3)), "B migrated");
    assert_eq!(
        counter(&cluster, b),
        1,
        "B received the handoff at its new home and used the link"
    );
    assert_eq!(
        counter(&cluster, c),
        1,
        "the carried link worked from the new location"
    );
}

#[test]
fn carried_link_to_a_migrated_target_still_resolves() {
    // The link handed over names C at its OLD machine; C migrates before
    // the link is ever used. First use is forwarded, then updated.
    let mut cluster = ClusterBuilder::new(4)
        .register("introducee", |_| Box::<Introducee>::default())
        .register("target", |_| Box::<Target>::default())
        .register("introducer", |_| Box::<Introducer>::default())
        .build();
    let a = cluster
        .spawn(m(0), "introducer", &[0u8; 8], ImageLayout::default())
        .unwrap();
    let b = cluster
        .spawn(m(1), "introducee", &[0u8; 8], ImageLayout::default())
        .unwrap();
    let c = cluster
        .spawn(m(2), "target", &[0u8; 8], ImageLayout::default())
        .unwrap();
    let lb = cluster.link_to(b).unwrap();
    let lc = cluster.link_to(c).unwrap();
    cluster
        .post(a, wl::INIT, Bytes::new(), vec![lb, lc])
        .unwrap();
    cluster.run_for(Duration::from_millis(20));

    // C moves away; A's stored link (and the one it will hand over) is now
    // stale. Context independence (§2.1) says it must still work.
    cluster.migrate(c, m(3)).unwrap();
    cluster.run_for(Duration::from_millis(500));
    cluster.post(a, GO, Bytes::new(), vec![]).unwrap();
    cluster.run_for(Duration::from_millis(300));

    assert_eq!(
        counter(&cluster, c),
        1,
        "poke reached C at its new home via forwarding"
    );
    assert!(cluster.trace().forwards_for(c) >= 1);
    // And B's copy of the link got patched by the update.
    let bm = cluster.where_is(b).unwrap();
    let bp = cluster.node(bm).kernel.process(b).unwrap();
    for (_, l) in bp.links.iter().filter(|(_, l)| l.target() == c) {
        assert_eq!(l.addr.last_known_machine, m(3));
    }
}
