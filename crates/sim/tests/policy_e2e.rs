//! Policy-driven migration: the motivating applications of §1 —
//! load balancing, communication affinity, and evacuating a dying
//! processor — running closed-loop against the cluster.

use demos_policy::{CommAffinity, Evacuate, Hysteresis, LoadBalance};
use demos_sim::prelude::*;
use demos_sim::programs::{burner_done, CpuBurner};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn spawn_burners(
    cluster: &mut Cluster,
    machine: MachineId,
    n: usize,
    work_us: u32,
) -> Vec<ProcessId> {
    (0..n)
        .map(|_| {
            cluster
                .spawn(
                    machine,
                    "cpu_burner",
                    &CpuBurner::state(0, work_us, 1_000),
                    ImageLayout::default(),
                )
                .unwrap()
        })
        .collect()
}

fn total_done(cluster: &Cluster, pids: &[ProcessId]) -> u64 {
    pids.iter()
        .filter_map(|&pid| {
            let machine = cluster.where_is(pid)?;
            let p = cluster.node(machine).kernel.process(pid)?;
            Some(burner_done(&p.program.as_ref()?.save()))
        })
        .sum()
}

#[test]
fn load_balancer_spreads_burners() {
    // All work starts on m0 of a 4-machine cluster.
    let mut cluster = Cluster::mesh(4);
    let pids = spawn_burners(&mut cluster, m(0), 8, 900);
    let policy = LoadBalance::new(
        2,
        Hysteresis::new(Duration::from_millis(50), Duration::from_millis(10)),
    );
    let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(20));
    driver.run(&mut cluster, Duration::from_secs(3));

    // Work spread out across machines.
    let counts: Vec<usize> = (0..4).map(|i| cluster.node(m(i)).kernel.nprocs()).collect();
    assert!(
        counts[0] < 8,
        "some processes left the hot machine: {counts:?}"
    );
    let populated = counts.iter().filter(|&&c| c > 0).count();
    assert!(populated >= 3, "work spread over ≥3 machines: {counts:?}");
    assert!(driver.orders_issued >= 3);
    assert_eq!(total_done(&cluster, &pids), {
        // Every burner kept making progress wherever it ran.
        let sum = total_done(&cluster, &pids);
        assert!(sum > 1000, "{sum} iterations total");
        sum
    });
}

#[test]
fn balanced_cluster_finishes_work_faster() {
    // Identical finite workload, with and without the balancer: the
    // balanced run completes more iterations in the same virtual time.
    let run = |balance: bool| {
        let mut cluster = ClusterBuilder::new(4).seed(1).no_trace().build();
        let pids = spawn_burners(&mut cluster, m(0), 8, 950);
        if balance {
            let policy = LoadBalance::new(
                2,
                Hysteresis::new(Duration::from_millis(50), Duration::from_millis(10)),
            );
            let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(20));
            driver.run(&mut cluster, Duration::from_secs(4));
        } else {
            cluster.run_for(Duration::from_secs(4));
        }
        total_done(&cluster, &pids)
    };
    let unbalanced = run(false);
    let balanced = run(true);
    assert!(
        balanced as f64 > unbalanced as f64 * 1.5,
        "balancing wins despite migration cost: {unbalanced} vs {balanced}"
    );
}

#[test]
fn affinity_moves_client_next_to_server() {
    // Line topology m0 - m1 - m2: a ping-pong pair with one end at m0 and
    // the other at m2 talks across two hops; the affinity policy moves
    // the m2 end next to (onto) m0.
    let topo = Topology::line(3, EdgeParams::default());
    let mut cluster = ClusterBuilder::new(3).topology(topo).build();
    let pa = cluster
        .spawn(
            m(0),
            "pingpong",
            &demos_sim::programs::PingPong::state(0, 20),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            m(2),
            "pingpong",
            &demos_sim::programs::PingPong::state(0, 20),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[1]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();

    let policy = CommAffinity::new(
        500,
        0.6,
        Hysteresis::new(Duration::from_secs(1), Duration::ZERO),
    );
    let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(100));
    driver.run(&mut cluster, Duration::from_secs(2));

    // One of the pair moved to the other's machine.
    let (ma, mb) = (cluster.where_is(pa).unwrap(), cluster.where_is(pb).unwrap());
    assert_eq!(
        ma, mb,
        "affinity colocated the communicating pair: {ma} vs {mb}"
    );
}

#[test]
fn evacuation_saves_work_from_dying_machine() {
    let mut cluster = Cluster::mesh(3);
    let pids = spawn_burners(&mut cluster, m(0), 4, 500);
    cluster.run_for(Duration::from_millis(200));

    // m0 begins to fail: 20× slowdown (health 0.05).
    cluster.degrade(m(0), 20.0);
    let policy = Evacuate::new(0.5);
    let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(50));
    driver.run(&mut cluster, Duration::from_secs(1));

    // Everyone left the sinking ship.
    assert_eq!(cluster.node(m(0)).kernel.nprocs(), 0, "m0 evacuated");
    for &pid in &pids {
        let machine = cluster.where_is(pid).unwrap();
        assert_ne!(machine, m(0));
    }
    // And they keep working at their new homes.
    let before = total_done(&cluster, &pids);
    cluster.run_for(Duration::from_millis(500));
    assert!(total_done(&cluster, &pids) > before + 100);
}

#[test]
fn evacuation_beats_no_evacuation_on_crash() {
    // Degradation followed by a hard crash: with evacuation the work
    // survives; without it, the processes die with the machine.
    let run = |evacuate: bool| {
        let mut cluster = ClusterBuilder::new(3).seed(3).no_trace().build();
        let pids = spawn_burners(&mut cluster, m(0), 4, 500);
        cluster.run_for(Duration::from_millis(100));
        cluster.degrade(m(0), 10.0);
        if evacuate {
            let mut driver =
                PolicyDriver::new(Box::new(Evacuate::new(0.5)), Duration::from_millis(50));
            driver.run(&mut cluster, Duration::from_millis(800));
        } else {
            cluster.run_for(Duration::from_millis(800));
        }
        cluster.crash(m(0));
        cluster.run_for(Duration::from_secs(1));
        let survivors = pids
            .iter()
            .filter(|&&p| cluster.where_is(p).is_some())
            .count();
        (survivors, total_done(&cluster, &pids))
    };
    let (died_survivors, died_work) = run(false);
    let (saved_survivors, saved_work) = run(true);
    assert_eq!(
        died_survivors, 0,
        "without evacuation the crash kills everything"
    );
    assert_eq!(saved_survivors, 4, "evacuated processes survive the crash");
    assert!(saved_work > died_work, "{saved_work} > {died_work}");
}
