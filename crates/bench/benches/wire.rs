//! Microbenchmarks of the wire codec: the per-message overhead every
//! kernel operation pays.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use demos_types::proto::MigrateMsg;
use demos_types::wire::Wire;
use demos_types::{Link, MachineId, Message, MsgFlags, MsgHeader, ProcessId};

fn sample_message(payload: usize, links: usize) -> Message {
    let pid = ProcessId {
        creating_machine: MachineId(1),
        local_uid: 7,
    };
    Message {
        header: MsgHeader {
            dest: pid.at(MachineId(2)),
            src: pid,
            src_machine: MachineId(1),
            msg_type: 0x1001,
            flags: MsgFlags::NONE,
            hops: 0,
        },
        links: (0..links).map(|_| Link::to(pid.at(MachineId(2)))).collect(),
        payload: Bytes::from(vec![0xA5u8; payload]),
        corr: demos_types::CorrId::NONE,
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for (name, payload, links) in [
        ("small_msg", 16usize, 0usize),
        ("msg_1k", 1024, 0),
        ("msg_1k_links", 1024, 4),
    ] {
        let msg = sample_message(payload, links);
        g.bench_function(format!("encode/{name}"), |b| b.iter(|| msg.to_bytes()));
        let bytes = msg.to_bytes();
        g.bench_function(format!("decode/{name}"), |b| {
            b.iter_batched(
                || bytes.clone(),
                |b| Message::from_bytes(&b).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    let offer = MigrateMsg::Offer {
        ctx: 1,
        pid: ProcessId {
            creating_machine: MachineId(0),
            local_uid: 3,
        },
        resident_len: 250,
        swappable_len: 600,
        image_len: 65536,
    };
    g.bench_function("encode/migrate_offer", |b| b.iter(|| offer.to_bytes()));
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
