//! Event-loop throughput: wall-clock cost of advancing a mostly-idle
//! 64-machine cluster through a fixed slice of virtual time. This is the
//! scheduler-overhead benchmark — only a handful of machines exchange
//! messages, so the per-step cost of *finding* the next event dominates,
//! which is exactly what the indexed event core attacks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use demos_sim::prelude::*;
use demos_sim::programs::{CpuBurner, PingPong};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

fn pingpong_pair(cluster: &mut Cluster, a: MachineId, b: MachineId) {
    let pa = cluster
        .spawn(
            a,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            b,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(
            pa,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[1]),
            vec![lb],
        )
        .unwrap();
    cluster
        .post(
            pb,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[0]),
            vec![la],
        )
        .unwrap();
}

fn warm_cluster(n: usize) -> Cluster {
    let mut cluster = ClusterBuilder::new(n).seed(7).no_trace().build();
    pingpong_pair(&mut cluster, m(0), m(1));
    pingpong_pair(&mut cluster, m((n / 2) as u16), m((n / 2 + 1) as u16));
    // Timer-driven jobs: cheap, frequent events — the mostly-idle regime
    // where finding the next event dominates the step cost.
    for k in 0..2u16 {
        cluster
            .spawn(
                m(k),
                "cpu_burner",
                &CpuBurner::state(0, 10, 100),
                ImageLayout::default(),
            )
            .unwrap();
    }
    cluster.run_for(Duration::from_millis(5));
    cluster
}

fn bench_cluster_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_step");
    g.sample_size(20);
    for machines in [16usize, 64, 256] {
        g.bench_function(format!("advance_50ms_{machines}m"), |b| {
            b.iter_batched(
                || warm_cluster(machines),
                |mut cluster| {
                    cluster.run_for(Duration::from_millis(50));
                    cluster
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cluster_step);
criterion_main!(benches);
