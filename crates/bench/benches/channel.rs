//! Reliable-channel throughput: how fast the transport substrate pumps
//! sequenced, acknowledged messages between two endpoints.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use demos_net::{ChannelConfig, Endpoint, Frame, Phys};
use demos_types::{MachineId, Time};

/// Zero-latency in-memory "physical layer" delivering frames instantly.
#[derive(Default)]
struct Loopback {
    to_a: Vec<Frame>,
    to_b: Vec<Frame>,
}

impl Phys for Loopback {
    fn transmit(&mut self, _now: Time, _src: MachineId, dst: MachineId, frame: Frame) {
        if dst == MachineId(0) {
            self.to_a.push(frame);
        } else {
            self.to_b.push(frame);
        }
    }
}

fn pump(n: usize, payload: usize) {
    let mut a = Endpoint::new(MachineId(0), ChannelConfig::default());
    let mut b = Endpoint::new(MachineId(1), ChannelConfig::default());
    let mut phys = Loopback::default();
    let msg = Bytes::from(vec![7u8; payload]);
    let mut delivered = 0usize;
    let mut sent = 0usize;
    while delivered < n {
        while sent < n && a.in_flight() < 32 {
            a.send(
                Time(0),
                MachineId(1),
                msg.clone(),
                demos_types::CorrId::NONE,
                &mut phys,
            );
            sent += 1;
        }
        for f in std::mem::take(&mut phys.to_b) {
            delivered += b.on_frame(Time(0), MachineId(0), f, &mut phys).len();
        }
        for f in std::mem::take(&mut phys.to_a) {
            a.on_frame(Time(0), MachineId(1), f, &mut phys);
        }
    }
    assert_eq!(delivered, n);
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("channel");
    for payload in [64usize, 1024] {
        g.throughput(Throughput::Bytes((1000 * payload) as u64));
        g.bench_function(format!("pump_1000x{payload}"), |b| {
            b.iter(|| pump(1000, payload))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_channel);
criterion_main!(benches);
