//! Delivery-path benchmarks: direct delivery vs delivery through a
//! forwarding address (the §4 redirection), measured as simulator
//! wall-clock per delivered ping-pong rally.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use demos_sim::prelude::*;
use demos_sim::programs::PingPong;

fn pair(chain: u16) -> Cluster {
    // pa on m0; pb starts on m1 and is optionally migrated down a chain so
    // pa's link goes stale by `chain` hops. Link updates are what we want
    // to EXCLUDE here, so the sender link is re-staled by rebuilding pa's
    // table each iteration — instead we simply measure the first rally
    // after migration, dominated by the forwarding path.
    let n = (chain + 3) as usize;
    let mut cluster = ClusterBuilder::new(n).no_trace().build();
    let pa = cluster
        .spawn(
            MachineId(0),
            "pingpong",
            &PingPong::state(200, 10),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            MachineId(1),
            "pingpong",
            &PingPong::state(200, 10),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(pa, wl::INIT, bytes::Bytes::from_static(&[0]), vec![lb])
        .unwrap();
    cluster
        .post(pb, wl::INIT, bytes::Bytes::from_static(&[0]), vec![la])
        .unwrap();
    for d in 0..chain {
        cluster.migrate(pb, MachineId(2 + d)).unwrap();
        cluster.run_quiescent(Duration::from_secs(2));
    }
    cluster
}

fn bench_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("delivery");
    g.sample_size(20);
    for chain in [0u16, 1, 4] {
        g.bench_function(format!("rally_200_chain{chain}"), |b| {
            b.iter_batched(
                || pair(chain),
                |mut cluster| {
                    // Serve the first ball; 200 rallies run to completion.
                    let pa = ProcessId {
                        creating_machine: MachineId(0),
                        local_uid: 1,
                    };
                    cluster
                        .post(pa, wl::BALL, bytes::Bytes::new(), vec![])
                        .unwrap();
                    cluster.run_quiescent(Duration::from_secs(30));
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
