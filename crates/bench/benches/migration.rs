//! End-to-end migration benchmark: simulator wall-clock cost of one full
//! eight-step migration at several image sizes (the virtual-time costs
//! are reported by `exp_cost_vs_size`; this measures the harness itself).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use demos_sim::prelude::*;

fn cluster_with_cargo(code_kib: u32) -> (Cluster, ProcessId) {
    let mut cluster = ClusterBuilder::new(2).no_trace().build();
    let layout = ImageLayout {
        code: code_kib * 1024,
        data: 2048,
        stack: 1024,
    };
    let pid = cluster
        .spawn(
            MachineId(0),
            "cargo",
            &demos_sim::programs::Cargo::state(64),
            layout,
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(5));
    (cluster, pid)
}

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.sample_size(20);
    for code_kib in [4u32, 64, 512] {
        g.bench_function(format!("migrate_{code_kib}KiB"), |b| {
            b.iter_batched(
                || cluster_with_cargo(code_kib),
                |(mut cluster, pid)| {
                    cluster.migrate(pid, MachineId(1)).unwrap();
                    cluster.run_quiescent(Duration::from_secs(5));
                    assert_eq!(cluster.where_is(pid), Some(MachineId(1)));
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
