//! Forwarding and link-update experiments: E4 (per-message forwarding
//! overhead), E5 (link-update convergence), E7 (migration chains and
//! forwarding-address GC), E8 (the non-delivery ablation), E13
//! (`DELIVERTOKERNEL` during migration).

use crate::{section, Table};
use demos_sim::prelude::*;
use demos_sim::programs::{client_stats, Client, EchoServer};
use demos_types::proto::KernelOp;
use demos_types::wire::Wire;

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// Build an echo server on m0 with `k` clients on machines 1..=k.
fn client_server(cluster: &mut Cluster, k: u16, period_us: u32) -> (ProcessId, Vec<ProcessId>) {
    let server = cluster
        .spawn(
            m(0),
            "echo_server",
            &EchoServer::state(50),
            ImageLayout::default(),
        )
        .unwrap();
    let mut clients = Vec::new();
    for i in 1..=k {
        let c = cluster
            .spawn(
                m(i),
                "client",
                &Client::state(0, period_us, 32),
                ImageLayout::default(),
            )
            .unwrap();
        let link = cluster.link_to(server).unwrap();
        cluster
            .post(c, wl::INIT, bytes::Bytes::new(), vec![link])
            .unwrap();
        clients.push(c);
    }
    (server, clients)
}

/// E4 — each message through a forwarding address generates exactly two
/// additional messages: the forward and the link update (§6, Fig 4-1).
pub fn e4_forwarding_overhead() {
    section("E4: per-message forwarding overhead (paper: 2 extra messages each)");
    let mut t = Table::new([
        "clients",
        "forwarded msgs",
        "link updates",
        "extra msgs",
        "extra per forwarded",
    ]);
    for k in [1u16, 2, 4, 8] {
        let mut cluster = Cluster::mesh(k as usize + 2);
        let (server, _clients) = client_server(&mut cluster, k, 5_000);
        cluster.run_for(Duration::from_millis(100));
        cluster.migrate(server, m(k + 1)).unwrap();
        cluster.run_for(Duration::from_millis(400));
        let forwards = cluster.trace().forwards_for(server) as u64;
        let updates = cluster
            .trace()
            .count(|r| matches!(r.event, TraceEvent::LinkUpdateSent { migrated, .. } if migrated == server))
            as u64;
        // Every forward = 1 resubmitted message + 1 update message.
        let extra = forwards + updates;
        t.row([
            k.to_string(),
            forwards.to_string(),
            updates.to_string(),
            extra.to_string(),
            format!("{:.1}", extra as f64 / forwards.max(1) as f64),
        ]);
    }
    t.print();
    println!();
    println!("Each forwarded message costs exactly one resubmission plus one link");
    println!("update back to the sender's kernel: 2 extra messages, as §6 states.");
}

/// E5 — messages sent on a stale link before it is updated: worst case 2,
/// typically 1 (§6, Fig 5-1).
pub fn e5_link_update() {
    section("E5: stale sends per link before update (paper: worst 2, typically 1)");
    let mut t = Table::new([
        "client period",
        "clients",
        "mean stale sends",
        "max stale sends",
    ]);
    for (label, period_us) in [
        ("200us (flood)", 200u32),
        ("1ms", 1_000),
        ("5ms", 5_000),
        ("20ms", 20_000),
    ] {
        let k = 6u16;
        let mut cluster = Cluster::mesh(k as usize + 2);
        let (server, clients) = client_server(&mut cluster, k, period_us);
        cluster.run_for(Duration::from_millis(100));
        cluster.migrate(server, m(k + 1)).unwrap();
        cluster.run_for(Duration::from_millis(600));
        // Stale sends per client = link updates sent on its behalf.
        let mut counts = Vec::new();
        for &c in &clients {
            let n = cluster.trace().count(|r| {
                matches!(r.event, TraceEvent::LinkUpdateSent { sender, migrated, .. }
                    if sender == c && migrated == server)
            });
            counts.push(n as f64);
        }
        let mean = demos_sim::metrics::mean(counts.iter().copied());
        let max = counts.iter().cloned().fold(0.0f64, f64::max);
        t.row([
            label.to_string(),
            k.to_string(),
            format!("{mean:.2}"),
            format!("{max:.0}"),
        ]);
    }
    t.print();
    println!();
    println!("With request/reply pacing a link is stale for exactly one message; only");
    println!("a flood faster than the update round-trip reaches the worst case.");
}

/// E7 — repeated migration: forwarding chains, their collapse by link
/// update, and garbage collection via death notices (§4).
pub fn e7_chain() {
    section("E7: forwarding chains after k migrations (paper: 8-byte residual entries)");
    let mut t = Table::new([
        "k (migrations)",
        "hops of 1st msg",
        "hops of 2nd msg",
        "fwd entries",
        "residual bytes",
        "entries after GC",
    ]);
    for k in [1u16, 2, 4, 8] {
        let n = k as usize + 2;
        let mut cluster = ClusterBuilder::new(n)
            .kernel_config(KernelConfig {
                gc_forwarding: true,
                ..Default::default()
            })
            .build();
        let server = cluster
            .spawn(
                m(0),
                "echo_server",
                &EchoServer::state(20),
                ImageLayout::default(),
            )
            .unwrap();
        // A quiet client that will send exactly two requests later.
        let client = cluster
            .spawn(
                m(n as u16 - 1),
                "client",
                &Client::state(2, 150_000, 16),
                ImageLayout::default(),
            )
            .unwrap();
        cluster.run_for(Duration::from_millis(10));
        // Chain of migrations m0 → m1 → … → mk, no traffic meanwhile.
        for dest in 1..=k {
            cluster.migrate(server, m(dest)).unwrap();
            cluster.run_for(Duration::from_millis(300));
        }
        // Now wire the client with a maximally stale link (hint = m0).
        let stale = demos_types::Link::to(server.at(m(0)));
        cluster
            .post(client, wl::INIT, bytes::Bytes::new(), vec![stale])
            .unwrap();
        cluster.run_for(Duration::from_millis(600));
        // First request chased the whole chain; second went direct.
        let hops: Vec<u8> = cluster
            .trace()
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::Enqueued {
                    pid,
                    msg_type,
                    hops,
                    ..
                } if *pid == server && *msg_type == wl::REQ => Some(*hops),
                _ => None,
            })
            .collect();
        let entries: usize = (0..n)
            .filter(|&i| {
                cluster
                    .node(m(i as u16))
                    .kernel
                    .forwarding_table()
                    .contains_key(&server)
            })
            .count();
        // Kill the server: death notices walk the chain backwards (§4).
        let loc = cluster.where_is(server).unwrap();
        cluster
            .post_dtk(
                server,
                loc,
                demos_types::tags::KERNEL_OP,
                KernelOp::Kill.to_bytes(),
            )
            .unwrap();
        cluster.run_for(Duration::from_millis(200));
        let after_gc: usize = (0..n)
            .filter(|&i| {
                cluster
                    .node(m(i as u16))
                    .kernel
                    .forwarding_table()
                    .contains_key(&server)
            })
            .count();
        t.row([
            k.to_string(),
            hops.first()
                .map(|h| h.to_string())
                .unwrap_or_else(|| "-".into()),
            hops.get(1)
                .map(|h| h.to_string())
                .unwrap_or_else(|| "-".into()),
            entries.to_string(),
            (entries * 8).to_string(),
            after_gc.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("The first message traverses every hop of the chain; the link update");
    println!("collapses the path so the second goes direct. Residuals cost 8 bytes");
    println!("per machine (§4); with gc_forwarding the death notice reclaims them.");
}

/// E8 — ablation: return-to-sender instead of forwarding (§4's rejected
/// alternative — "this method also violates the transparency of
/// communications fundamental to DEMOS/MP").
pub fn e8_ablation_nondelivery() {
    section("E8: forwarding vs non-delivery ablation (paper: forwarding preserves transparency)");
    let mut t = Table::new([
        "mode",
        "replies before",
        "replies after",
        "non-deliverable",
        "dead links",
    ]);
    for forwarding in [true, false] {
        let mut cluster = ClusterBuilder::new(4)
            .kernel_config(KernelConfig {
                forwarding,
                ..Default::default()
            })
            .build();
        let (server, clients) = client_server(&mut cluster, 2, 5_000);
        cluster.run_for(Duration::from_millis(200));
        let before: u64 = clients
            .iter()
            .map(|&c| {
                let mm = cluster.where_is(c).unwrap();
                client_stats(
                    &cluster
                        .node(mm)
                        .kernel
                        .process(c)
                        .unwrap()
                        .program
                        .as_ref()
                        .unwrap()
                        .save(),
                )
                .recv
            })
            .sum();
        cluster.migrate(server, m(3)).unwrap();
        cluster.run_for(Duration::from_millis(500));
        let after: u64 = clients
            .iter()
            .map(|&c| {
                let mm = cluster.where_is(c).unwrap();
                client_stats(
                    &cluster
                        .node(mm)
                        .kernel
                        .process(c)
                        .unwrap()
                        .program
                        .as_ref()
                        .unwrap()
                        .save(),
                )
                .recv
            })
            .sum::<u64>()
            - before;
        let nondeliverable: u64 = (0..4)
            .map(|i| cluster.node(m(i)).kernel.stats().nondeliverable)
            .sum();
        let dead_links: usize = clients
            .iter()
            .map(|&c| {
                let mm = cluster.where_is(c).unwrap();
                cluster
                    .node(mm)
                    .kernel
                    .process(c)
                    .unwrap()
                    .links
                    .iter()
                    .filter(|(_, l)| {
                        l.target() == server
                            && l.attrs.contains(
                                <demos_types::LinkAttrs as demos_kernel::LinkAttrsExt>::DEAD,
                            )
                    })
                    .count()
            })
            .sum();
        t.row([
            if forwarding {
                "forwarding (§4)"
            } else {
                "return-to-sender"
            }
            .to_string(),
            before.to_string(),
            after.to_string(),
            nondeliverable.to_string(),
            dead_links.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("With forwarding the migration is invisible to clients. In the rejected");
    println!("alternative their messages bounce, links go dead, and the clients would");
    println!("need recovery logic — the transparency violation §4 describes.");
}

/// E13 — `DELIVERTOKERNEL` control messages are held during migration and
/// delivered when normal receiving resumes (§2.2).
pub fn e13_dtk_during_migration() {
    section("E13: DELIVERTOKERNEL control op racing a migration (paper: held and forwarded)");
    let mut cluster = Cluster::mesh(2);
    let pid = cluster
        .spawn(
            m(0),
            "cpu_burner",
            &demos_sim::programs::CpuBurner::state(0, 100, 1_000),
            ImageLayout {
                code: 256 * 1024,
                data: 4096,
                stack: 2048,
            },
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(20));
    let t0 = cluster.now();
    cluster.migrate(pid, m(1)).unwrap();
    // While the process is in migration, a Suspend control op arrives.
    cluster
        .post_dtk(
            pid,
            m(0),
            demos_types::tags::KERNEL_OP,
            KernelOp::Suspend.to_bytes(),
        )
        .unwrap();
    cluster.run_for(Duration::from_millis(500));

    let frozen = cluster
        .trace()
        .phase_time(pid, MigrationPhase::Frozen, t0)
        .unwrap();
    let restarted = cluster
        .trace()
        .phase_time(pid, MigrationPhase::Restarted, t0)
        .unwrap();
    let received_at_dest = cluster
        .trace()
        .records()
        .iter()
        .find(|r| {
            r.machine == m(1)
                && matches!(r.event, TraceEvent::KernelReceived { pid: p, msg_type, .. }
                    if p == pid && msg_type == demos_types::tags::KERNEL_OP)
        })
        .map(|r| r.at);
    let status = cluster.node(m(1)).kernel.process(pid).map(|p| p.status);

    let mut t = Table::new(["event", "virtual time"]);
    t.row(["frozen (step 1)".to_string(), format!("{frozen}")]);
    t.row([
        "suspend sent while in migration".to_string(),
        format!("{t0}"),
    ]);
    t.row([
        "restarted at destination (step 8)".to_string(),
        format!("{restarted}"),
    ]);
    t.row([
        "suspend received by destination kernel".to_string(),
        received_at_dest
            .map(|t| format!("{t}"))
            .unwrap_or_else(|| "-".into()),
    ]);
    t.row(["final status".to_string(), format!("{status:?}")]);
    t.print();
    println!();
    println!("The control op was held on the in-migration queue, forwarded in step 6,");
    println!("and received by the *destination* kernel after restart — \"control can");
    println!("follow a process through disturbances in its execution\" (§7).");
}
