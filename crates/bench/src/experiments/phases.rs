//! E16 — migration phase costs through the observability pipeline.
//!
//! Reproduces the shape of the paper's §6 cost table (per-step costs,
//! dominated by the state/image transfer) from the *flight recorder*
//! rather than the full trace: each sub-run serializes every machine's
//! ring, parses and merges the dump exactly as the `demos-trace` CLI
//! would, and prints the per-phase percentile table stitched from the
//! compact records. The span profiler's `demos-top` phase panel renders
//! the same migrations row-by-row as a cross-check.
//!
//! The whole experiment runs twice and asserts both the printed output
//! and the recorder dump are byte-identical — the determinism claim the
//! rest of the harness leans on, extended to the new subsystem.

use demos_obs::recorder::{merge, parse_dump, PhaseTable};
use demos_sim::prelude::*;

use crate::section;

/// Where the last sub-run's recorder dump lands (CI's trace-tools smoke
/// job points `demos-trace` at it).
pub const E16_DUMP_PATH: &str = "target/e16_phase_costs.flight";

const SEED: u64 = 1234;
const MIGRATIONS: usize = 6;

struct SubRun {
    label: &'static str,
    code_kib: u32,
    accept: AcceptPolicy,
}

const CASES: [SubRun; 4] = [
    SubRun {
        label: "image 4 KiB",
        code_kib: 4,
        accept: AcceptPolicy::Always,
    },
    SubRun {
        label: "image 64 KiB",
        code_kib: 64,
        accept: AcceptPolicy::Always,
    },
    SubRun {
        label: "image 256 KiB",
        code_kib: 256,
        accept: AcceptPolicy::Always,
    },
    SubRun {
        label: "rejecting destination (policy ablation)",
        code_kib: 4,
        accept: AcceptPolicy::Never,
    },
];

/// Run one sub-case: spawn cargo processes, migrate each off m0, and
/// return the cluster for inspection.
fn run_case(case: &SubRun) -> Cluster {
    let mut cluster = ClusterBuilder::new(4)
        .seed(SEED)
        .migration_config(MigrationConfig {
            accept: case.accept,
            ..MigrationConfig::default()
        })
        .build();
    let layout = ImageLayout {
        code: case.code_kib * 1024,
        data: 2048,
        stack: 1024,
    };
    let mut pids = Vec::new();
    for _ in 0..MIGRATIONS {
        pids.push(
            cluster
                .spawn(
                    MachineId(0),
                    "cargo",
                    &demos_sim::programs::Cargo::state(64),
                    layout,
                )
                .unwrap(),
        );
    }
    cluster.run_for(Duration::from_millis(5));
    // Staggered so each lifecycle's phases are cleanly separated on the
    // virtual clock; destinations round-robin over the other machines.
    for (k, &pid) in pids.iter().enumerate() {
        cluster.migrate(pid, MachineId(1 + (k % 3) as u16)).unwrap();
        cluster.run_for(Duration::from_millis(30));
    }
    cluster.run_for(Duration::from_millis(300));
    cluster
}

/// One full pass: every sub-case's table plus the phase panel, and the
/// last Always-policy sub-run's recorder dump.
fn run_once() -> (String, Vec<u8>) {
    let mut out = String::new();
    let mut dump_for_ci = Vec::new();
    for case in &CASES {
        let cluster = run_case(case);
        let dump = cluster.recorder_dump();
        let records = merge(&parse_dump(&dump).expect("own dump parses"));
        let table = PhaseTable::from_records(&records);
        out.push_str(&format!("{} — per-phase costs (us):\n", case.label));
        out.push_str(&table.render());
        out.push('\n');
        if matches!(case.accept, AcceptPolicy::Always) {
            // The span profiler must agree with the recorder pipeline.
            let spans = demos_sim::migration_spans_of(cluster.trace());
            let completed = spans.iter().filter(|s| s.completed()).count() as u64;
            assert_eq!(
                completed, table.completed,
                "span profiler and recorder pipeline agree"
            );
            dump_for_ci = dump;
            if case.code_kib == 256 {
                out.push_str("phase panel (demos-top view of the same migrations):\n");
                out.push_str(&cluster.phase_report());
                out.push('\n');
            }
        }
    }
    (out, dump_for_ci)
}

/// E16 — per-phase migration cost percentiles from the flight recorder.
pub fn e16_phase_costs() {
    section("E16: migration phase costs via flight recorder (paper: transfer dominates)");
    let (first, dump_first) = run_once();
    let (second, dump_second) = run_once();
    assert_eq!(first, second, "E16 output must replay byte-identically");
    assert_eq!(
        dump_first, dump_second,
        "recorder dump must replay byte-identically"
    );
    print!("{first}");
    let _ = std::fs::create_dir_all("target");
    std::fs::write(E16_DUMP_PATH, &dump_first).expect("write flight dump");
    println!("determinism: output and recorder dump byte-identical across two runs");
    println!("flight dump written to {E16_DUMP_PATH} (query with demos-trace)");
    println!();
    println!("Negotiation and restart are near-constant; the transfer phase scales");
    println!("with the image, reproducing §6's conclusion that moving the memory");
    println!("image overshadows every other step of the protocol.");
}
