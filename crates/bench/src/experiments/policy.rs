//! Scenario experiments: E6 (server vs user migration), E9 (load
//! balancing), E10 (communication affinity), E11 (evacuating a dying
//! processor).

use crate::{section, Table};
use demos_policy::{CommAffinity, Evacuate, Hysteresis, LoadBalance};
use demos_sim::boot::{
    boot_system, spawn_fs_clients, total_client_errors, total_client_ops, BootConfig,
};
use demos_sim::prelude::*;
use demos_sim::programs::{burner_done, CpuBurner};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// E6 — migrating a server process is the hard case (§2.3, §5): many
/// long-lived links point at it. Compare against migrating a user process.
pub fn e6_server_migration() {
    section("E6: server vs user process migration under active I/O (the paper's test case)");
    let mut t = Table::new([
        "migrated",
        "held msgs fwd (step 6)",
        "fwd-address hits",
        "links patched",
        "client errors",
        "ops before",
        "ops after",
    ]);
    for server_case in [true, false] {
        let mut cluster = Cluster::mesh(4);
        let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
        let clients1 =
            spawn_fs_clients(&mut cluster, &handles, m(1), 2, 2, 2_000, 128, 50).unwrap();
        let clients2 =
            spawn_fs_clients(&mut cluster, &handles, m(2), 2, 2, 2_000, 128, 50).unwrap();
        let all: Vec<ProcessId> = clients1.iter().chain(clients2.iter()).copied().collect();
        cluster.run_for(Duration::from_millis(300));
        let before_ops = total_client_ops(&cluster, &all);

        let victim = if server_case { handles.fs_file } else { all[0] };
        let t0 = cluster.now();
        cluster.migrate(victim, m(3)).unwrap();
        cluster.run_for(Duration::from_millis(700));

        let pending = cluster
            .trace()
            .records()
            .iter()
            .find_map(|r| match r.event {
                TraceEvent::Migration {
                    pid,
                    phase: MigrationPhase::PendingForwarded,
                    ..
                } if pid == victim && r.at >= t0 => {
                    // Count of step-6 messages comes from the source stats.
                    None::<u64>
                }
                _ => None,
            })
            .unwrap_or(0)
            .max(
                cluster.node(m(0)).engine.stats().pending_forwarded
                    + cluster.node(m(1)).engine.stats().pending_forwarded
                    + cluster.node(m(2)).engine.stats().pending_forwarded,
            );
        let forwards = cluster.trace().forwards_for(victim) as u64;
        let patched: u64 = cluster
            .trace()
            .records()
            .iter()
            .map(|r| match r.event {
                TraceEvent::LinkUpdateApplied {
                    migrated, patched, ..
                } if migrated == victim => patched as u64,
                _ => 0,
            })
            .sum();
        let after_ops = total_client_ops(&cluster, &all);
        t.row([
            if server_case {
                "file server".to_string()
            } else {
                "user client".to_string()
            },
            pending.to_string(),
            forwards.to_string(),
            patched.to_string(),
            total_client_errors(&cluster, &all).to_string(),
            before_ops.to_string(),
            after_ops.to_string(),
        ]);
    }
    t.print();
    println!();
    println!("The server's many live request links make it the worst case: more held");
    println!("messages and more links to patch — yet zero client-visible errors,");
    println!("exactly the transparency the paper's fs-migration test demonstrated.");
}

/// E9 — dynamic load balancing improves throughput despite migration cost
/// (§1), with the hysteresis knob of §3.1 exercised under arrival churn.
pub fn e9_load_balance() {
    section("E9: load balancing throughput (paper motivation: better overall throughput)");
    // Jobs arrive in waves at machine 0 ("a balanced execution mix can be
    // disturbed … by the creation of a new process with unexpected
    // resource requirements", §1): an initial batch of long jobs plus a
    // burst of finite jobs every 400 ms.
    let run = |balance: Option<Duration>| -> (u64, u64) {
        let mut cluster = ClusterBuilder::new(4).seed(11).no_trace().build();
        let mut pids: Vec<ProcessId> = (0..8)
            .map(|_| {
                cluster
                    .spawn(
                        m(0),
                        "cpu_burner",
                        &CpuBurner::state(0, 900, 1_000),
                        ImageLayout::default(),
                    )
                    .unwrap()
            })
            .collect();
        let mut driver = balance.map(|per_pid| {
            let policy = LoadBalance::new(2, Hysteresis::new(per_pid, Duration::from_millis(5)));
            PolicyDriver::new(Box::new(policy), Duration::from_millis(20))
        });
        let mut done_exited: u64 = 0;
        for wave in 0..10 {
            if wave > 0 && wave % 2 == 0 {
                for _ in 0..2 {
                    pids.push(
                        cluster
                            .spawn(
                                m(0),
                                "cpu_burner",
                                &CpuBurner::state(400, 900, 1_000),
                                ImageLayout::default(),
                            )
                            .unwrap(),
                    );
                }
            }
            match &mut driver {
                Some(d) => d.run(&mut cluster, Duration::from_millis(400)),
                None => cluster.run_for(Duration::from_millis(400)),
            }
            // Finite burners exit when done; bank their iterations.
            pids.retain(|&pid| {
                if cluster.where_is(pid).is_none() {
                    done_exited += 400; // a finished finite job ran its limit
                    false
                } else {
                    true
                }
            });
        }
        let done: u64 = pids
            .iter()
            .filter_map(|&pid| {
                let mm = cluster.where_is(pid)?;
                let p = cluster.node(mm).kernel.process(pid)?;
                Some(burner_done(&p.program.as_ref()?.save()))
            })
            .sum::<u64>()
            + done_exited;
        (done, driver.map(|d| d.orders_issued).unwrap_or(0))
    };
    let mut t = Table::new(["policy", "iterations done", "migrations", "speedup"]);
    let (base, _) = run(None);
    t.row([
        "static (no migration)".to_string(),
        base.to_string(),
        "0".into(),
        "1.00x".into(),
    ]);
    for (label, per_pid) in [
        ("balance, hysteresis 500ms", Duration::from_millis(500)),
        ("balance, hysteresis 50ms", Duration::from_millis(50)),
        ("balance, no hysteresis", Duration::ZERO),
    ] {
        let (done, migs) = run(Some(per_pid));
        t.row([
            label.to_string(),
            done.to_string(),
            migs.to_string(),
            format!("{:.2}x", done as f64 / base as f64),
        ]);
    }
    t.print();
    println!();
    println!("Work arrives in bursts on one of four machines; the balancer spreads it");
    println!("and wins despite paying the relocation cost.");

    // Hysteresis ablation (§3.1: "a hysteresis mechanism to keep from
    // incurring the cost of migration more often than justified by the
    // gains"): an over-aggressive imbalance threshold oscillates — five
    // jobs can never split evenly over two machines — unless the global
    // hysteresis interval damps it.
    section("E9b: hysteresis ablation under an oscillating imbalance");
    let run2 = |global: Duration| -> (u64, u64) {
        let mut cluster = ClusterBuilder::new(2).seed(7).no_trace().build();
        let pids: Vec<ProcessId> = (0..5)
            .map(|_| {
                cluster
                    .spawn(
                        m(0),
                        "cpu_burner",
                        &CpuBurner::state(0, 900, 1_000),
                        ImageLayout::default(),
                    )
                    .unwrap()
            })
            .collect();
        let policy = LoadBalance::new(1, Hysteresis::new(Duration::ZERO, global));
        let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(20));
        driver.run(&mut cluster, Duration::from_secs(3));
        let done: u64 = pids
            .iter()
            .filter_map(|&pid| {
                let mm = cluster.where_is(pid)?;
                let p = cluster.node(mm).kernel.process(pid)?;
                Some(burner_done(&p.program.as_ref()?.save()))
            })
            .sum();
        (done, driver.orders_issued)
    };
    let mut t2 = Table::new(["global hysteresis", "migrations", "iterations done"]);
    for (label, g) in [
        ("none", Duration::ZERO),
        ("100ms", Duration::from_millis(100)),
        ("500ms", Duration::from_millis(500)),
    ] {
        let (done, migs) = run2(g);
        t2.row([label.to_string(), migs.to_string(), done.to_string()]);
    }
    t2.print();
    println!();
    println!("Five jobs cannot split evenly over two machines, so an aggressive");
    println!("threshold keeps ordering pointless moves; hysteresis suppresses them");
    println!("at no throughput cost — §3.1\'s justification for the mechanism.");
}

/// E10 — moving a process closer to the resource it uses most heavily
/// reduces system-wide communication traffic (§1).
pub fn e10_affinity() {
    section("E10: communication affinity on a line topology (paper motivation: less traffic)");
    let run = |affinity: bool| -> (u64, u64, u64) {
        let topo = Topology::line(4, EdgeParams::default());
        let mut cluster = ClusterBuilder::new(4).topology(topo).seed(5).build();
        let handles = boot_system(&mut cluster, BootConfig::default()).unwrap();
        // A heavy I/O client at the far end of the line (3 hops from the fs).
        let clients = spawn_fs_clients(&mut cluster, &handles, m(3), 1, 1, 1_500, 256, 50).unwrap();
        cluster.run_for(Duration::from_millis(300));
        let hops0 = cluster.net().stats().byte_hops;
        if affinity {
            let policy = CommAffinity::new(
                1_000,
                0.6,
                Hysteresis::new(Duration::from_secs(1), Duration::ZERO),
            );
            let mut driver = PolicyDriver::new(Box::new(policy), Duration::from_millis(100));
            driver.run(&mut cluster, Duration::from_secs(2));
        } else {
            cluster.run_for(Duration::from_secs(2));
        }
        let hops = cluster.net().stats().byte_hops - hops0;
        let ops = total_client_ops(&cluster, &clients);
        let client_machine = cluster.where_is(clients[0]).unwrap();
        (hops, ops, client_machine.0 as u64)
    };
    let mut t = Table::new(["policy", "byte*hops", "client ops", "client ends on"]);
    let (hops_static, ops_static, loc_static) = run(false);
    let (hops_aff, ops_aff, loc_aff) = run(true);
    t.row([
        "static".to_string(),
        hops_static.to_string(),
        ops_static.to_string(),
        format!("m{loc_static}"),
    ]);
    t.row([
        "affinity".to_string(),
        hops_aff.to_string(),
        ops_aff.to_string(),
        format!("m{loc_aff}"),
    ]);
    t.print();
    println!();
    println!("The affinity policy moves the client next to its file server; network");
    println!("load (byte*hops) drops and the client completes more operations.");
}

/// E11 — evacuating a gradually failing processor ("rats leaving a sinking
/// ship", §1).
pub fn e11_sinking_ship() {
    section("E11: evacuation from a dying processor (paper: migrate off before it fails)");
    let run = |evacuate: bool| -> (usize, u64) {
        let mut cluster = ClusterBuilder::new(3).seed(3).no_trace().build();
        let pids: Vec<ProcessId> = (0..4)
            .map(|_| {
                cluster
                    .spawn(
                        m(0),
                        "cpu_burner",
                        &CpuBurner::state(0, 500, 1_000),
                        ImageLayout::default(),
                    )
                    .unwrap()
            })
            .collect();
        cluster.run_for(Duration::from_millis(100));
        cluster.degrade(m(0), 10.0); // the processor begins to die
        if evacuate {
            let mut driver =
                PolicyDriver::new(Box::new(Evacuate::new(0.5)), Duration::from_millis(50));
            driver.run(&mut cluster, Duration::from_millis(800));
        } else {
            cluster.run_for(Duration::from_millis(800));
        }
        cluster.crash(m(0)); // …and dies
        cluster.run_for(Duration::from_secs(1));
        let survivors = pids
            .iter()
            .filter(|&&p| cluster.where_is(p).is_some())
            .count();
        let work: u64 = pids
            .iter()
            .filter_map(|&pid| {
                let mm = cluster.where_is(pid)?;
                let p = cluster.node(mm).kernel.process(pid)?;
                Some(burner_done(&p.program.as_ref()?.save()))
            })
            .sum();
        (survivors, work)
    };
    let mut t = Table::new(["policy", "survivors (of 4)", "total iterations"]);
    let (s0, w0) = run(false);
    let (s1, w1) = run(true);
    t.row(["no evacuation".to_string(), s0.to_string(), w0.to_string()]);
    t.row([
        "evacuate on degradation".to_string(),
        s1.to_string(),
        w1.to_string(),
    ]);
    t.print();
    println!();
    println!("With evacuation every process escapes before the crash and keeps");
    println!("computing elsewhere; without it the work dies with the machine.");
}
