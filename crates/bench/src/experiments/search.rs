//! Search experiment: E17 — coverage-guided vs blind fault discovery.

use crate::{section, Table};
use demos_chaos::{campaign, CampaignConfig, Generator, RunConfig};

/// Executions a trial may spend before it is counted as a timeout.
const CAP: u64 = 2_000;
/// Independent trials per (ablation, strategy) cell.
const TRIALS: u64 = 10;

/// Blind baseline: draw scenarios from the same seed stream the guided
/// campaign's fresh draws use (`base + i`) and run each once under the
/// ablation. Returns executions until the first violation, or `CAP`.
fn blind(generator: Generator, fault: &RunConfig, base: u64) -> u64 {
    for i in 0..CAP {
        let sc = generator.scenario(base.wrapping_add(i));
        if demos_chaos::run(&sc, fault).violation.is_some() {
            return i + 1;
        }
    }
    CAP
}

/// Guided: one coverage-guided campaign, stop at the first violation.
fn guided(generator: Generator, fault: &RunConfig, base: u64) -> u64 {
    let cfg = CampaignConfig {
        seed: base,
        generator,
        fault: *fault,
        jobs: 4,
        batch: 16,
        max_execs: Some(CAP),
        stop_on_violation: true,
        ..CampaignConfig::default()
    };
    let report = campaign(&cfg, &|| true);
    report.bugs.first().map_or(CAP, |b| b.execs_at)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn mean(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>() / xs.len() as u64
}

/// E17 — executions to first violation, blind sampling vs the
/// coverage-guided campaign, under the *rare* scenario regimes.
///
/// The rare regimes make the triggering fault genuinely scarce in fresh
/// draws (a migrate event rides a 0.3% per-slot roll, a permanent crash
/// a 1% per-machine roll), so blind sampling pays the full rarity price
/// on every draw. The guided campaign pays it only until the first
/// feature-novel scenario survives into the pool; after that, mutation
/// (insert/duplicate/splice over the stable text form) manufactures the
/// missing fault far more cheaply than rejection-sampling it. Both
/// sides draw fresh scenarios from the *same* seed stream, so the gap
/// isolates the feedback loop, not generator luck.
pub fn e17_coverage_search() {
    section("E17: coverage-guided vs blind fault discovery (executions to first violation)");
    let cells: [(&str, Generator, RunConfig); 2] = [
        (
            "no-forwarding",
            Generator::RareClassic,
            RunConfig {
                disable_forwarding: true,
                ..RunConfig::default()
            },
        ),
        (
            "no-recovery",
            Generator::RareRecovery,
            RunConfig {
                disable_recovery: true,
                ..RunConfig::default()
            },
        ),
    ];
    for (name, generator, fault) in cells {
        let mut t = Table::new(["trial (base seed)", "blind execs", "guided execs"]);
        let mut blinds = Vec::new();
        let mut guideds = Vec::new();
        for trial in 0..TRIALS {
            let base = 1 + trial * 1_000;
            let b = blind(generator, &fault, base);
            let g = guided(generator, &fault, base);
            t.row([format!("{base}"), format!("{b}"), format!("{g}")]);
            blinds.push(b);
            guideds.push(g);
        }
        t.row([
            "median".to_string(),
            format!("{}", median(blinds.clone())),
            format!("{}", median(guideds.clone())),
        ]);
        t.row([
            "mean".to_string(),
            format!("{}", mean(&blinds)),
            format!("{}", mean(&guideds)),
        ]);
        println!("\nablation: {name} (cap {CAP} execs/trial)");
        t.print();
    }
}
