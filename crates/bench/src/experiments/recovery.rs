//! Recovery experiment: E14 — failure-detection and recovery latency as
//! a function of the heartbeat interval.

use crate::{section, Table};
use demos_sim::prelude::*;
use demos_sim::programs::{client_stats, Client, EchoServer};

fn m(i: u16) -> MachineId {
    MachineId(i)
}

/// E14 — detection and recovery latency vs heartbeat interval (§1, §4).
///
/// The paper frames checkpoint/restore as "a migration off a crashed
/// processor". With silence-based detection the time a service is dark
/// after a crash decomposes into *detection* (heartbeat interval ×
/// `dead_after`) plus *re-homing* (restore + forwarding installation),
/// so the heartbeat interval is the knob that trades steady-state beat
/// traffic against outage length. Fixed thresholds (`suspect_after` 3,
/// `dead_after` 10 beats), one crash per run, one protected echo server
/// under client load.
pub fn e14_recovery_latency() {
    section("E14: detection + recovery latency vs heartbeat interval (crash of a serving machine)");
    let mut t = Table::new([
        "hb interval",
        "detect (ms)",
        "recover (ms)",
        "beats sent",
        "replies resumed",
    ]);
    for hb_ms in [1u64, 2, 5, 10, 20] {
        let mut cluster = ClusterBuilder::new(3)
            .seed(14)
            .no_trace()
            .kernel_config(KernelConfig {
                heartbeat_every: Duration::from_millis(hb_ms),
                suspect_after: 3,
                dead_after: 10,
                ..KernelConfig::default()
            })
            .recovery(RecoveryConfig {
                checkpoint_every: Duration::from_millis(5),
                protect_all: false,
            })
            .build();
        let server = cluster
            .spawn(
                m(1),
                "echo_server",
                &EchoServer::state(20),
                ImageLayout::default(),
            )
            .unwrap();
        let client = cluster
            .spawn(
                m(0),
                "client",
                &Client::state(2_000, 500, 64),
                ImageLayout::default(),
            )
            .unwrap();
        let ls = cluster.link_to(server).unwrap();
        cluster
            .post(client, wl::INIT, bytes::Bytes::new(), vec![ls])
            .unwrap();
        cluster.protect(server);
        cluster.run_for(Duration::from_millis(50));
        cluster.crash(m(1));
        cluster.run_for(Duration::from_millis(600));
        let mid = {
            let p = cluster.node(m(0)).kernel.process(client).unwrap();
            client_stats(&p.program.as_ref().unwrap().save())
        };
        cluster.run_for(Duration::from_millis(300));
        let after = {
            let p = cluster.node(m(0)).kernel.process(client).unwrap();
            client_stats(&p.program.as_ref().unwrap().save())
        };
        let r = cluster.recovery().expect("recovery attached");
        let ep = r
            .episodes()
            .iter()
            .find(|e| e.machine == m(1))
            .expect("death detected");
        let crashed = ep.crashed_at.expect("ground truth");
        let beats: u64 = (0..3)
            .filter(|&i| i != 1)
            .map(|i| cluster.node(m(i)).kernel.detector_stats().beats_sent)
            .sum();
        t.row([
            format!("{hb_ms} ms"),
            format!(
                "{:.1}",
                ep.detected_at.since(crashed).as_micros() as f64 / 1_000.0
            ),
            format!(
                "{:.1}",
                ep.recovered_at.since(crashed).as_micros() as f64 / 1_000.0
            ),
            beats.to_string(),
            (after.recv > mid.recv).to_string(),
        ]);
    }
    t.print();
    println!();
    println!("Detection tracks interval x dead_after (10 beats); re-homing adds");
    println!("well under a millisecond on top, so the outage is detector-bound:");
    println!("faster heartbeats buy shorter outages at linear beat traffic.");
}
