//! Cost experiments: E1 (state sizes), E2 (administrative messages),
//! E3 (cost vs image size), E12 (pending-queue forwarding).

use crate::{fmt_bytes, measure_migration, section, total_traffic, traffic_delta, Table};
use demos_sim::boot::{boot_system, spawn_shell, BootConfig};
use demos_sim::prelude::*;
use demos_types::proto::{AreaSel, KernelOp, MigrateMsg, MoveDataMsg, RejectReason};
use demos_types::wire::Wire;
use demos_types::Link;

/// E1 — resident ≈250 B; swappable ≈600 B scaling with the link table (§6).
pub fn e1_state_sizes() {
    section("E1: state sizes vs link-table size (paper: resident ~250 B, swappable ~600 B)");
    let mut table = Table::new(["links", "resident (B)", "swappable (B)", "image (B)"]);
    for links in [0usize, 5, 10, 15, 20, 25, 30, 40, 64] {
        let mut cluster = ClusterBuilder::new(2).build();
        let pid = cluster
            .spawn(
                MachineId(0),
                "cargo",
                &demos_sim::programs::Cargo::state(64),
                ImageLayout::default(),
            )
            .unwrap();
        for k in 0..links {
            let target = ProcessId {
                creating_machine: MachineId(1),
                local_uid: 100 + k as u32,
            };
            cluster
                .node_mut(MachineId(0))
                .kernel
                .install_link(pid, Link::to(target.at(MachineId(1))))
                .unwrap();
        }
        cluster.run_for(Duration::from_millis(5));
        let m = measure_migration(&mut cluster, pid, MachineId(1));
        table.row([
            links.to_string(),
            m.resident.to_string(),
            m.swappable.to_string(),
            m.image.to_string(),
        ]);
    }
    table.print();
    println!();
    println!("Each link adds a fixed 22 bytes to the swappable state; a typical");
    println!("server-grade table of ~25 links lands near the paper's ~600 bytes.");
}

/// E2 — the nine administrative messages of §6, counted on the wire.
pub fn e2_admin_cost() {
    // Three machines: PM on m2, the migrating process goes m0 → m1, so
    // every administrative message crosses the network and is counted.
    let mut cluster = Cluster::mesh(3);
    let handles = boot_system(
        &mut cluster,
        BootConfig {
            control_machine: MachineId(2),
            fs_machine: MachineId(2),
            ..Default::default()
        },
    )
    .unwrap();
    let script = vec![
        demos_sysproc::ScriptEntry {
            delay_us: 1_000,
            cmd: demos_sysproc::Cmd::Spawn {
                machine: MachineId(0),
                program: "cargo".into(),
                state: demos_sim::programs::Cargo::state(256),
                layout: ImageLayout::default(),
            },
        },
        demos_sysproc::ScriptEntry {
            delay_us: 100_000,
            cmd: demos_sysproc::Cmd::Migrate {
                nth: 0,
                dest: MachineId(1),
            },
        },
    ];
    spawn_shell(&mut cluster, &handles, MachineId(2), &script).unwrap();
    cluster.run_for(Duration::from_millis(95));
    let before = total_traffic(&cluster);
    cluster.run_for(Duration::from_millis(400));
    let after = total_traffic(&cluster);
    let d = traffic_delta(&after, &before);

    section("E2: administrative messages of one migration (paper: 9 messages, 6-12 B payloads)");
    let mut t = Table::new(["category", "messages", "wire bytes"]);
    t.row([
        "MigrateRequest (#1, DTK control op)".to_string(),
        d.kernel_op.msgs.to_string(),
        d.kernel_op.bytes.to_string(),
    ]);
    t.row([
        "migration protocol (#2,#3,#7,#8,#9)".to_string(),
        d.migrate.msgs.to_string(),
        d.migrate.bytes.to_string(),
    ]);
    t.row([
        "state-pull requests (#4,#5,#6)".to_string(),
        d.md_req.msgs.to_string(),
        d.md_req.bytes.to_string(),
    ]);
    t.row([
        "TOTAL administrative".to_string(),
        d.admin().msgs.to_string(),
        d.admin().bytes.to_string(),
    ]);
    t.row([
        "(state transfer: data packets)".to_string(),
        d.md_data.msgs.to_string(),
        d.md_data.bytes.to_string(),
    ]);
    t.row([
        "(state transfer: packet acks)".to_string(),
        d.md_ack.msgs.to_string(),
        d.md_ack.bytes.to_string(),
    ]);
    t.row([
        "(state transfer: completion)".to_string(),
        d.md_done.msgs.to_string(),
        d.md_done.bytes.to_string(),
    ]);
    t.print();

    section("E2b: encoded payload size of each administrative message");
    let pid = ProcessId {
        creating_machine: MachineId(0),
        local_uid: 1,
    };
    let samples: Vec<(&str, usize)> = vec![
        (
            "#1 MigrateRequest",
            KernelOp::MigrateRequest {
                dest: MachineId(1),
                flags: 0,
            }
            .wire_len(),
        ),
        (
            "#2 Offer",
            MigrateMsg::Offer {
                ctx: 1,
                pid,
                resident_len: 250,
                swappable_len: 600,
                image_len: 14336,
            }
            .wire_len(),
        ),
        (
            "#3 Accept",
            MigrateMsg::Accept {
                ctx: 1,
                slot: 1,
                window: 1024,
            }
            .wire_len(),
        ),
        (
            "#3' Reject",
            MigrateMsg::Reject {
                ctx: 1,
                pid,
                reason: RejectReason::Policy,
            }
            .wire_len(),
        ),
        (
            "#4-#6 ReadReq (each)",
            MoveDataMsg::ReadReq {
                op: 1,
                target: pid,
                sel: AreaSel::Resident,
                offset: 0,
                len: 0,
            }
            .wire_len(),
        ),
        (
            "#7 TransferComplete",
            MigrateMsg::TransferComplete {
                ctx: 1,
                received: 15000,
            }
            .wire_len(),
        ),
        (
            "#8 CleanupDone",
            MigrateMsg::CleanupDone {
                ctx: 1,
                forwarded: 0,
            }
            .wire_len(),
        ),
        (
            "#9 Done",
            MigrateMsg::Done {
                pid,
                dest: MachineId(1),
                status: 0,
            }
            .wire_len(),
        ),
    ];
    let mut t2 = Table::new(["message", "payload bytes"]);
    for (name, len) in samples {
        t2.row([name.to_string(), len.to_string()]);
    }
    t2.print();
    println!();
    println!("Count matches the paper's nine (request + 4 protocol + 3 pulls + done).");
    println!("Most payloads fall in the paper's 6-12 byte range; Offer (17 B) and the");
    println!("18-byte pull requests carry full 48-bit pids and 32-bit sizes where the");
    println!("Z8000 original used 16-bit quantities — see EXPERIMENTS.md.");
}

/// E3 — migration cost vs image size (§6).
pub fn e3_cost_vs_size() {
    section("E3: migration cost vs image size (paper: image overshadows system state)");
    let mut t = Table::new([
        "image",
        "admin msgs",
        "admin B",
        "state B",
        "data pkts",
        "transfer B",
        "freeze→restart",
    ]);
    for code_kib in [1u32, 4, 16, 64, 256, 1024] {
        let mut cluster = ClusterBuilder::new(2).build();
        let layout = ImageLayout {
            code: code_kib * 1024,
            data: 2048,
            stack: 1024,
        };
        let pid = cluster
            .spawn(
                MachineId(0),
                "cargo",
                &demos_sim::programs::Cargo::state(64),
                layout,
            )
            .unwrap();
        cluster.run_for(Duration::from_millis(5));
        let m = measure_migration(&mut cluster, pid, MachineId(1));
        let state_bytes = (m.resident + m.swappable) as u64;
        t.row([
            fmt_bytes(m.image as u64),
            m.traffic.admin().msgs.to_string(),
            m.traffic.admin().bytes.to_string(),
            state_bytes.to_string(),
            m.traffic.md_data.msgs.to_string(),
            fmt_bytes(m.traffic.md_data.bytes),
            format!("{}", m.duration),
        ]);
    }
    t.print();
    println!();
    println!("Administrative bytes are constant; total cost tracks the image size,");
    println!("matching §6: three data moves dominated by code+data for real processes.");
}

/// E12 — each pending message is forwarded at normal inter-machine cost
/// (§6 / step 6 of §3.1). The table is built from the JSON-lines
/// exporter's output, round-tripped through the parser, exactly as an
/// out-of-process consumer would see it.
pub fn e12_pending_queue() {
    use demos_obs::json::{self, Json};

    /// Sum of user-class messages across the parsed machine lines.
    fn user_msgs(lines: &[Json]) -> u64 {
        lines
            .iter()
            .flat_map(|l| {
                l.get("traffic")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
            })
            .filter(|t| t.str_field("class") == Some("user"))
            .filter_map(|t| t.u64_field("msgs"))
            .sum()
    }

    section("E12: pending-queue forwarding cost (paper: each queued message forwarded)");
    let mut t = Table::new([
        "queued msgs",
        "forwarded",
        "user msgs on wire",
        "freeze→restart",
    ]);
    let mut final_report = String::new();
    for q in [0usize, 8, 32, 128, 256] {
        let mut cluster = Cluster::mesh(2);
        let pid = cluster
            .spawn(
                MachineId(0),
                "cargo",
                &demos_sim::programs::Cargo::state(64),
                ImageLayout::default(),
            )
            .unwrap();
        cluster.run_for(Duration::from_millis(5));
        cluster.node_mut(MachineId(0)).kernel.suspend(pid);
        for i in 0..q {
            cluster
                .post(
                    pid,
                    demos_types::tags::USER_BASE + 9,
                    bytes::Bytes::from(vec![i as u8; 16]),
                    vec![],
                )
                .unwrap();
        }
        let before = json::parse_lines(&cluster.json_lines()).expect("exporter emits valid JSON");
        let m = measure_migration(&mut cluster, pid, MachineId(1));
        let after = json::parse_lines(&cluster.json_lines()).expect("exporter emits valid JSON");
        // The held messages now sit on the (still suspended) process's
        // queue at the destination: machine 1's msgq gauge.
        let forwarded = after
            .iter()
            .find(|l| l.u64_field("machine") == Some(1))
            .and_then(|l| l.u64_field("msgq"))
            .unwrap_or(0);
        t.row([
            q.to_string(),
            forwarded.to_string(),
            (user_msgs(&after) - user_msgs(&before)).to_string(),
            format!("{}", m.duration),
        ]);
        final_report = cluster.report();
    }
    t.print();
    println!();
    println!("Step 6 resends every held message with a rewritten location hint; the");
    println!("cost per message equals any other inter-machine message (§6).");
    println!();
    println!("cluster state after the last run (demos-top):");
    println!("{final_report}");
}
