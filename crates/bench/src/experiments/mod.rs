//! The experiment suite: one function per entry of DESIGN.md's index.
//!
//! Each function is self-contained (builds its own cluster, prints its
//! own tables) so the thin binaries under `src/bin/` and the `run_all`
//! driver can invoke them interchangeably.

mod costs;
mod forwarding;
mod phases;
mod policy;
mod recovery;
mod search;

pub use costs::{e12_pending_queue, e1_state_sizes, e2_admin_cost, e3_cost_vs_size};
pub use forwarding::{
    e13_dtk_during_migration, e4_forwarding_overhead, e5_link_update, e7_chain,
    e8_ablation_nondelivery,
};
pub use phases::{e16_phase_costs, E16_DUMP_PATH};
pub use policy::{e10_affinity, e11_sinking_ship, e6_server_migration, e9_load_balance};
pub use recovery::e14_recovery_latency;
pub use search::e17_coverage_search;

/// Run every experiment in order.
pub fn run_all() {
    e1_state_sizes();
    e2_admin_cost();
    e3_cost_vs_size();
    e4_forwarding_overhead();
    e5_link_update();
    e6_server_migration();
    e7_chain();
    e8_ablation_nondelivery();
    e9_load_balance();
    e10_affinity();
    e11_sinking_ship();
    e12_pending_queue();
    e13_dtk_during_migration();
    e14_recovery_latency();
    e16_phase_costs();
    e17_coverage_search();
}
