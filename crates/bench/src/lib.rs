//! Experiment harness for the DEMOS/MP reproduction.
//!
//! Each binary under `src/bin/` regenerates one experiment from
//! DESIGN.md's index (E1–E13), printing paper-style tables; `run_all`
//! executes the whole suite. Criterion benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use demos_kernel::{MsgCount, TrafficBreakdown};
use demos_sim::prelude::*;
use demos_types::MachineId;

/// Render a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// A simple aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringify each cell).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Print aligned.
    pub fn print(&self) {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Merge traffic counters across every kernel in the cluster.
pub fn total_traffic(cluster: &Cluster) -> TrafficBreakdown {
    let mut t = TrafficBreakdown::default();
    for i in 0..cluster.len() {
        t.merge(&cluster.node(MachineId(i as u16)).kernel.stats().traffic);
    }
    t
}

/// `a - b` per category (counters are monotonic).
pub fn traffic_delta(a: &TrafficBreakdown, b: &TrafficBreakdown) -> TrafficBreakdown {
    fn d(x: MsgCount, y: MsgCount) -> MsgCount {
        MsgCount {
            msgs: x.msgs - y.msgs,
            bytes: x.bytes - y.bytes,
        }
    }
    TrafficBreakdown {
        kernel_op: d(a.kernel_op, b.kernel_op),
        migrate: d(a.migrate, b.migrate),
        md_req: d(a.md_req, b.md_req),
        md_data: d(a.md_data, b.md_data),
        md_ack: d(a.md_ack, b.md_ack),
        md_done: d(a.md_done, b.md_done),
        link_maint: d(a.link_maint, b.link_maint),
        mgmt: d(a.mgmt, b.mgmt),
        user: d(a.user, b.user),
    }
}

/// Everything measured about one migration.
#[derive(Debug, Clone, Copy)]
pub struct MigrationMeasurement {
    /// Resident-state bytes transferred.
    pub resident: u32,
    /// Swappable-state bytes transferred.
    pub swappable: u32,
    /// Image bytes transferred.
    pub image: u32,
    /// Virtual time from freeze to restart.
    pub duration: Duration,
    /// Remote traffic attributable to the migration, by category.
    pub traffic: TrafficBreakdown,
}

/// Migrate `pid` to `dest` on an otherwise-quiet cluster and measure the
/// transfer (sizes, elapsed virtual time, per-category traffic).
pub fn measure_migration(
    cluster: &mut Cluster,
    pid: ProcessId,
    dest: MachineId,
) -> MigrationMeasurement {
    let src = cluster.where_is(pid).expect("process exists");
    let (resident, swappable, image) = {
        let proc = cluster.node(src).kernel.process(pid).expect("exists");
        (
            proc.serialize_resident().len() as u32,
            proc.serialize_swappable().len() as u32,
            proc.image.to_flat().len() as u32,
        )
    };
    let before_traffic = total_traffic(cluster);
    let t0 = cluster.now();
    cluster.migrate(pid, dest).expect("migration starts");
    // Run until the Restarted phase lands (bounded).
    let mut restarted = None;
    for _ in 0..100_000 {
        if let Some(t) = cluster
            .trace()
            .phase_time(pid, MigrationPhase::Restarted, t0)
        {
            restarted = Some(t);
            break;
        }
        if !cluster.step() {
            break;
        }
    }
    let restarted = restarted
        .or_else(|| {
            cluster
                .trace()
                .phase_time(pid, MigrationPhase::Restarted, t0)
        })
        .expect("migration completed");
    let traffic = traffic_delta(&total_traffic(cluster), &before_traffic);
    MigrationMeasurement {
        resident,
        swappable,
        image,
        duration: restarted.since(t0),
        traffic,
    }
}

/// Format bytes human-readably.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(["col", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        t.print(); // smoke: no panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(17), "17 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }

    #[test]
    fn measure_migration_on_quiet_cluster() {
        let mut cluster = Cluster::mesh(2);
        let pid = cluster
            .spawn(
                MachineId(0),
                "cargo",
                &demos_sim::programs::Cargo::state(1000),
                ImageLayout::default(),
            )
            .unwrap();
        cluster.run_for(Duration::from_millis(5));
        let m = measure_migration(&mut cluster, pid, MachineId(1));
        assert!((230..=270).contains(&m.resident), "resident {}", m.resident);
        assert!(m.image > 14_000, "image includes declared segments");
        assert!(m.duration.as_micros() > 0);
        assert_eq!(
            m.traffic.migrate.msgs, 4,
            "Offer, Accept, TransferComplete, CleanupDone"
        );
        assert_eq!(
            m.traffic.md_req.msgs, 3,
            "three state pulls (§3.1 steps 4-5)"
        );
        assert!(
            m.traffic.md_data.bytes as u32 > m.image,
            "image dominates transfer"
        );
    }
}
