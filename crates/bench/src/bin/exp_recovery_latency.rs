//! Experiment binary: see `demos_bench::experiments::e14_recovery_latency`.
fn main() {
    demos_bench::experiments::e14_recovery_latency();
}
