//! Experiment binary: see `demos_bench::experiments::e17_coverage_search`.
fn main() {
    demos_bench::experiments::e17_coverage_search();
}
