//! Experiment binary: see `demos_bench::experiments::e16_phase_costs`.
fn main() {
    demos_bench::experiments::e16_phase_costs();
}
