//! Run the full experiment suite (E1-E13), printing every table.
fn main() {
    println!("DEMOS/MP process-migration reproduction: full experiment suite");
    println!("(paper: Powell & Miller, 'Process Migration in DEMOS/MP', SOSP 1983)");
    demos_bench::experiments::run_all();
}
