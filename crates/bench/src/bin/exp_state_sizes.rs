//! Experiment binary: see `demos_bench::experiments::e1_state_sizes`.
fn main() {
    demos_bench::experiments::e1_state_sizes();
}
