//! Experiment binary: see `demos_bench::experiments::e4_forwarding_overhead`.
fn main() {
    demos_bench::experiments::e4_forwarding_overhead();
}
