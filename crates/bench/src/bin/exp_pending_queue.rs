//! Experiment binary: see `demos_bench::experiments::e12_pending_queue`.
fn main() {
    demos_bench::experiments::e12_pending_queue();
}
