//! Experiment binary: see `demos_bench::experiments::e8_ablation_nondelivery`.
fn main() {
    demos_bench::experiments::e8_ablation_nondelivery();
}
