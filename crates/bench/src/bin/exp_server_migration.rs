//! Experiment binary: see `demos_bench::experiments::e6_server_migration`.
fn main() {
    demos_bench::experiments::e6_server_migration();
}
