//! Experiment binary: see `demos_bench::experiments::e2_admin_cost`.
fn main() {
    demos_bench::experiments::e2_admin_cost();
}
