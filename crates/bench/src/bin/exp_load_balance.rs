//! Experiment binary: see `demos_bench::experiments::e9_load_balance`.
fn main() {
    demos_bench::experiments::e9_load_balance();
}
