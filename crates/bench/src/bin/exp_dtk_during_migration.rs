//! Experiment binary: see `demos_bench::experiments::e13_dtk_during_migration`.
fn main() {
    demos_bench::experiments::e13_dtk_during_migration();
}
