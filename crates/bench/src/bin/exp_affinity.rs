//! Experiment binary: see `demos_bench::experiments::e10_affinity`.
fn main() {
    demos_bench::experiments::e10_affinity();
}
