//! Tracked performance baseline for the discrete-event core.
//!
//! Measures event-loop throughput — `Cluster::step` calls per second of
//! wall clock — on mostly-idle clusters of 2/16/64/256 machines, the
//! regime where the cost of *finding* the next event dominates. A
//! second, strong-scaling section sweeps the sharded parallel executor
//! over 256/1024/4096-machine clusters at 1/2/4/8 shards with a
//! workload that scales with size, reporting node visits per second and
//! speedup over the one-shard run. Writes the results as JSON
//! (`BENCH_EVENTLOOP.json` by default) so CI can compare against the
//! committed baseline and fail on regressions.
//!
//! Usage:
//!   perf_baseline [--quick] [--out FILE] [--check BASELINE]
//!
//! * `--quick`  — shorter runs for CI smoke (same rates, more noise);
//! * `--out`    — where to write the JSON (default `BENCH_EVENTLOOP.json`);
//! * `--check`  — compare against a baseline JSON: exit non-zero if the
//!   64-machine throughput dropped more than 30%. To stay meaningful on
//!   machines of different speeds (CI runners vs the machine that
//!   committed the baseline), the gate compares *normalized* throughput:
//!   events/sec at 64 machines divided by the same run's 2-machine rate.
//!   Machine speed cancels; what remains is exactly how the loop scales
//!   with cluster size — an O(n) scan creeping back in craters it.

use demos_sim::prelude::*;
use demos_sim::programs::{CpuBurner, PingPong};
use std::time::Instant;

const SIZES: [usize; 4] = [2, 16, 64, 256];
/// Cluster sizes for the parallel strong-scaling section. The last one
/// is skipped under `--quick`.
const PAR_SIZES: [usize; 3] = [256, 1024, 4096];
/// Shard counts swept per size in the parallel section.
const PAR_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Regression gate: fail `--check` below this fraction of the baseline.
const MIN_RATIO: f64 = 0.7;
/// Cluster size the `--check` gate applies to.
const GATE_MACHINES: usize = 64;
/// Recorder-overhead gate: recorder-on throughput at 64 machines must
/// stay above this fraction of recorder-off. The target is within 5%
/// (0.95); the gate sits at 0.90 to absorb runner noise while still
/// catching any allocation or copy creeping into the record path.
const RECORDER_MIN_RATIO: f64 = 0.90;

fn m(i: usize) -> MachineId {
    MachineId(i as u16)
}

fn pingpong_pair(cluster: &mut Cluster, a: MachineId, b: MachineId) {
    let pa = cluster
        .spawn(
            a,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let pb = cluster
        .spawn(
            b,
            "pingpong",
            &PingPong::state(0, 50),
            ImageLayout::default(),
        )
        .unwrap();
    let la = cluster.link_to(pa).unwrap();
    let lb = cluster.link_to(pb).unwrap();
    cluster
        .post(
            pa,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[1]),
            vec![lb],
        )
        .unwrap();
    cluster
        .post(
            pb,
            programs::wl::INIT,
            bytes::Bytes::from_static(&[0]),
            vec![la],
        )
        .unwrap();
}

/// A cluster with a fixed workload regardless of size — two message
/// pairs plus two timer-driven jobs on a handful of machines, everything
/// else idle — warmed past bootstrap. Scheduler overhead, not workload,
/// is the measurand: most events are cheap timer ticks, the regime where
/// the cost of finding the next event dominates the step. The flight
/// recorder runs at `recorder_capacity` (0 disables it — the baseline
/// side of the recorder-overhead comparison).
fn warm_cluster_cap(n: usize, recorder_capacity: usize) -> Cluster {
    let mut cluster = ClusterBuilder::new(n)
        .seed(7)
        .no_trace()
        .recorder_capacity(recorder_capacity)
        .build();
    pingpong_pair(&mut cluster, m(0), m(1));
    if n >= 4 {
        pingpong_pair(&mut cluster, m(n / 2), m(n / 2 + 1));
    }
    for k in 0..2usize.min(n) {
        cluster
            .spawn(
                m(k),
                "cpu_burner",
                &CpuBurner::state(0, 10, 100),
                ImageLayout::default(),
            )
            .unwrap();
    }
    cluster.run_for(Duration::from_millis(5));
    cluster
}

struct Sample {
    machines: usize,
    steps: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

/// One row of the parallel strong-scaling sweep. Unlike the sequential
/// rows, the workload *scales with* machine count (one message pair per
/// eight machines, one timer job per eight) so more shards have real
/// work to split, and the rate counts node visits rather than `step`
/// calls — the two loops batch work differently, so steps/sec would not
/// be comparable across thread counts but visits/sec is.
struct ParSample {
    machines: usize,
    threads: usize,
    visits: u64,
    wall_secs: f64,
    events_per_sec: f64,
    segments: u64,
}

/// A cluster whose workload grows with its size: a cross-cluster
/// ping-pong pair per eight machines and a periodic CPU burner on every
/// eighth machine. Trace and flight recorder are off — at 4096 machines
/// the recorder rings alone would dominate memory and the measurement.
fn warm_parallel_cluster(n: usize, threads: usize) -> Cluster {
    let mut cluster = ClusterBuilder::new(n)
        .seed(7)
        .no_trace()
        .recorder_capacity(0)
        .shards(threads)
        .build();
    for i in 0..n / 8 {
        pingpong_pair(&mut cluster, m(i), m(n - 1 - i));
    }
    for k in (0..n).step_by(8) {
        cluster
            .spawn(
                m(k),
                "cpu_burner",
                &CpuBurner::state(0, 120, 900),
                ImageLayout::default(),
            )
            .unwrap();
    }
    cluster.run_for(Duration::from_millis(2));
    cluster
}

/// Strong-scaling measurement: drive fresh clusters through `virt` of
/// virtual time via `run_for` (the sharded executor dispatches from
/// `run_until`, not `step`) until `min_wall` wall seconds accumulate.
fn measure_parallel(n: usize, threads: usize, virt: Duration, min_wall: f64) -> ParSample {
    let visits_of = |c: &Cluster| {
        let s = c.step_stats();
        s.cpu_visits + s.frame_visits + s.timer_visits
    };
    let mut visits = 0u64;
    let mut segments = 0u64;
    let mut wall = 0.0f64;
    while wall < min_wall {
        let mut cluster = warm_parallel_cluster(n, threads);
        let before = visits_of(&cluster);
        let t0 = Instant::now();
        cluster.run_for(virt);
        wall += t0.elapsed().as_secs_f64();
        visits += visits_of(&cluster) - before;
        segments = cluster.parallel_segments();
    }
    ParSample {
        machines: n,
        threads,
        visits,
        wall_secs: wall,
        events_per_sec: visits as f64 / wall,
        segments,
    }
}

/// Drive fresh clusters through `virt` of virtual time until at least
/// `min_wall` seconds of wall clock have accumulated.
fn measure(n: usize, virt: Duration, min_wall: f64) -> Sample {
    measure_cap(n, demos_sim::DEFAULT_RECORDER_CAPACITY, virt, min_wall)
}

/// [`measure`] with an explicit recorder capacity.
fn measure_cap(n: usize, cap: usize, virt: Duration, min_wall: f64) -> Sample {
    let mut steps = 0u64;
    let mut wall = 0.0f64;
    while wall < min_wall {
        let mut cluster = warm_cluster_cap(n, cap);
        let target = cluster.now() + virt;
        let t0 = Instant::now();
        while cluster.now() < target {
            if !cluster.step() {
                break;
            }
            steps += 1;
        }
        wall += t0.elapsed().as_secs_f64();
    }
    Sample {
        machines: n,
        steps,
        wall_secs: wall,
        events_per_sec: steps as f64 / wall,
    }
}

fn render_json(
    quick: bool,
    virt_ms: u64,
    samples: &[Sample],
    recorder: &(Sample, Sample),
    cores: usize,
    par: &[ParSample],
) -> String {
    let (on, off) = recorder;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"event_loop\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"virtual_ms_per_run\": {virt_ms},\n"));
    out.push_str(&format!(
        "  \"recorder\": {{\"machines\": {}, \"on_events_per_sec\": {:.1}, \
         \"off_events_per_sec\": {:.1}, \"on_off_ratio\": {:.4}}},\n",
        on.machines,
        on.events_per_sec,
        off.events_per_sec,
        on.events_per_sec / off.events_per_sec
    ));
    // Parallel rows deliberately use the key "m", not "machines":
    // `baseline_rate`'s textual scan keys on `"machines": N,` lines and
    // must keep matching only the sequential results.
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str("  \"parallel\": [\n");
    for (i, p) in par.iter().enumerate() {
        let base = par
            .iter()
            .find(|q| q.machines == p.machines && q.threads == 1)
            .map_or(1.0, |q| q.events_per_sec);
        out.push_str(&format!(
            "    {{\"m\": {}, \"threads\": {}, \"visits\": {}, \"wall_secs\": {:.4}, \
             \"visits_per_sec\": {:.1}, \"speedup\": {:.3}, \"segments\": {}}}{}\n",
            p.machines,
            p.threads,
            p.visits,
            p.wall_secs,
            p.events_per_sec,
            p.events_per_sec / base,
            p.segments,
            if i + 1 < par.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"machines\": {}, \"steps\": {}, \"wall_secs\": {:.4}, \
             \"events_per_sec\": {:.1}}}{}\n",
            s.machines,
            s.steps,
            s.wall_secs,
            s.events_per_sec,
            if i + 1 < samples.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull `events_per_sec` for a given machine count out of a baseline
/// JSON written by this binary (dumb textual scan — no JSON dependency).
fn baseline_rate(json: &str, machines: usize) -> Option<f64> {
    // Match only result rows: the "recorder" line also names a machine
    // count but carries on/off rates under different keys.
    let marker = format!("\"machines\": {machines},");
    let line = json
        .lines()
        .find(|l| l.contains(&marker) && l.contains("\"events_per_sec\": "))?;
    let tail = line.split("\"events_per_sec\": ").nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = String::from("BENCH_EVENTLOOP.json");
    let mut check_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let virt = if quick {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(1000)
    };
    let min_wall = if quick { 0.2 } else { 1.0 };

    let mut samples = Vec::new();
    for &n in &SIZES {
        let s = measure(n, virt, min_wall);
        eprintln!(
            "machines={:3}  steps={:8}  wall={:.3}s  events/sec={:.0}",
            s.machines, s.steps, s.wall_secs, s.events_per_sec
        );
        samples.push(s);
    }

    // Recorder overhead at the gate size: same workload with the flight
    // recorder at its default capacity vs disabled, measured back to
    // back so machine drift hits both equally.
    let rec_on = measure_cap(
        GATE_MACHINES,
        demos_sim::DEFAULT_RECORDER_CAPACITY,
        virt,
        min_wall,
    );
    let rec_off = measure_cap(GATE_MACHINES, 0, virt, min_wall);
    let rec_ratio = rec_on.events_per_sec / rec_off.events_per_sec;
    eprintln!(
        "recorder @{GATE_MACHINES} machines: on {:.0} ev/s, off {:.0} ev/s \
         ({:.1}% overhead)",
        rec_on.events_per_sec,
        rec_off.events_per_sec,
        (1.0 - rec_ratio) * 100.0
    );
    let recorder = (rec_on, rec_off);

    // Parallel strong scaling: scaled workload, shard counts 1..8. On a
    // single-core runner the parallel rows mostly pay barrier overhead;
    // the committed JSON records `cores` so readers can tell which
    // regime the numbers come from.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut par = Vec::new();
    for &n in &PAR_SIZES {
        if quick && n > 1024 {
            continue;
        }
        for &threads in &PAR_THREADS {
            let p = measure_parallel(n, threads, virt, min_wall);
            let base = par
                .iter()
                .find(|q: &&ParSample| q.machines == n && q.threads == 1)
                .map_or(p.events_per_sec, |q| q.events_per_sec);
            eprintln!(
                "parallel m={:4} threads={}  visits={:9}  wall={:.3}s  \
                 visits/sec={:.0}  speedup={:.2}x  segments={}",
                p.machines,
                p.threads,
                p.visits,
                p.wall_secs,
                p.events_per_sec,
                p.events_per_sec / base,
                p.segments
            );
            par.push(p);
        }
    }

    let json = render_json(
        quick,
        virt.as_micros() / 1000,
        &samples,
        &recorder,
        cores,
        &par,
    );
    std::fs::write(&out_path, &json).expect("write results");
    eprintln!("wrote {out_path}");

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).expect("read baseline");
        let base_gate = baseline_rate(&baseline, GATE_MACHINES)
            .expect("baseline has no 64-machine events_per_sec");
        let base_ref = baseline_rate(&baseline, 2).expect("baseline has no 2-machine rate");
        let rate_of = |n: usize| {
            samples
                .iter()
                .find(|s| s.machines == n)
                .expect("size measured")
                .events_per_sec
        };
        let want = base_gate / base_ref;
        let got = rate_of(GATE_MACHINES) / rate_of(2);
        let ratio = got / want;
        eprintln!(
            "check @{GATE_MACHINES} machines (normalized to 2-machine rate): \
             current {got:.3} vs baseline {want:.3} ({:.0}% of baseline, gate {:.0}%)",
            ratio * 100.0,
            MIN_RATIO * 100.0
        );
        if ratio < MIN_RATIO {
            eprintln!("FAIL: event-loop throughput regressed more than 30%");
            std::process::exit(1);
        }
        // Recorder row: self-contained (on vs off within this run), so
        // older baseline files without the row still gate cleanly.
        eprintln!(
            "check recorder overhead @{GATE_MACHINES} machines: on/off ratio {rec_ratio:.3} \
             (gate {RECORDER_MIN_RATIO:.2})",
        );
        if rec_ratio < RECORDER_MIN_RATIO {
            eprintln!("FAIL: flight recorder costs more than 10% of event-loop throughput");
            std::process::exit(1);
        }
        eprintln!("OK");
    }
}
