//! Experiment binary: see `demos_bench::experiments::e5_link_update`.
fn main() {
    demos_bench::experiments::e5_link_update();
}
