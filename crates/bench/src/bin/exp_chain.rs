//! Experiment binary: see `demos_bench::experiments::e7_chain`.
fn main() {
    demos_bench::experiments::e7_chain();
}
