//! Experiment binary: see `demos_bench::experiments::e11_sinking_ship`.
fn main() {
    demos_bench::experiments::e11_sinking_ship();
}
