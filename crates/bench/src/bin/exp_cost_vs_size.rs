//! Experiment binary: see `demos_bench::experiments::e3_cost_vs_size`.
fn main() {
    demos_bench::experiments::e3_cost_vs_size();
}
