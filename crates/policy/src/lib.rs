//! Migration decision policies.
//!
//! The paper implements the migration *mechanism* and leaves the decision
//! rule open: "designing an efficient and effective decision rule is
//! still an open research topic" (§3.1). It does, however, enumerate what
//! a rule needs — resource-use evaluation, per-processor load assessment,
//! a way to collect that information in one place, an improvement
//! strategy, and "a hysteresis mechanism to keep from incurring the cost
//! of migration more often than justified by the gains" (§3.1) — and
//! motivates three uses: load balancing, moving processes closer to the
//! resources they use most heavily, and evacuating dying processors (§1).
//!
//! This crate implements exactly those three rules as pure functions over
//! a [`ClusterView`] snapshot. They produce [`MigrationOrder`]s; the
//! harness (or a process manager) applies them through the migration
//! mechanism. Policies are deterministic: given the same view and
//! history, they make the same decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use demos_types::{Duration, MachineId, ProcessId, Time};

/// One machine's load, as collected by the process/memory managers
/// ("processor loading and memory demand for each machine is required",
/// §3.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineLoad {
    /// The machine.
    pub machine: MachineId,
    /// Run-queue length.
    pub runq: usize,
    /// Resident processes.
    pub nprocs: usize,
    /// CPU utilization over the sampling window, 0..=1.
    pub cpu_util: f64,
    /// Image memory in use, bytes.
    pub mem_used: u64,
    /// Image memory capacity, bytes.
    pub mem_capacity: u64,
    /// Health: 1.0 = nominal, lower = degraded, 0.0 = dead. (The paper's
    /// "failure modes that manifest themselves as gradual degradation".)
    pub health: f64,
}

/// One process's resource profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessInfo {
    /// The process.
    pub pid: ProcessId,
    /// Where it currently runs.
    pub machine: MachineId,
    /// Total CPU consumed.
    pub cpu_used: Duration,
    /// Image size, bytes (the dominant migration cost, §6).
    pub image_len: u64,
    /// System processes are not migrated by automatic policies ("servers
    /// are often tied to unmovable resources", §5).
    pub privileged: bool,
    /// Cumulative bytes sent per destination machine (communication
    /// accounting; "collection of the communication data is beyond the
    /// ability of most current systems", §3.1 — ours collects it).
    pub bytes_sent_to: Vec<(MachineId, u64)>,
}

/// A snapshot of the whole cluster at `at`.
#[derive(Clone, Debug, Default)]
pub struct ClusterView {
    /// Snapshot time.
    pub at: Time,
    /// Per-machine loads (indexed by machine id order).
    pub machines: Vec<MachineLoad>,
    /// Every (migratable-relevant) process.
    pub processes: Vec<ProcessInfo>,
}

impl Default for MachineLoad {
    fn default() -> Self {
        MachineLoad {
            machine: MachineId(0),
            runq: 0,
            nprocs: 0,
            cpu_util: 0.0,
            mem_used: 0,
            mem_capacity: u64::MAX,
            health: 1.0,
        }
    }
}

/// A decision: move `pid` to `dest`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationOrder {
    /// Process to move.
    pub pid: ProcessId,
    /// Destination machine.
    pub dest: MachineId,
}

/// A migration decision rule.
pub trait Policy {
    /// Inspect a snapshot and decide which migrations to order now.
    fn decide(&mut self, view: &ClusterView) -> Vec<MigrationOrder>;
}

/// Hysteresis bookkeeping shared by the policies (§3.1: "a hysteresis
/// mechanism to keep from incurring the cost of migration more often than
/// justified by the gains").
#[derive(Clone, Debug)]
pub struct Hysteresis {
    /// Minimum interval between migrations of the *same* process.
    pub per_process: Duration,
    /// Minimum interval between any two orders issued by this policy.
    pub global: Duration,
    last_global: Option<Time>,
    last_per_pid: BTreeMap<ProcessId, Time>,
}

impl Hysteresis {
    /// New hysteresis with the given intervals.
    pub fn new(per_process: Duration, global: Duration) -> Self {
        Hysteresis {
            per_process,
            global,
            last_global: None,
            last_per_pid: BTreeMap::new(),
        }
    }

    /// Disabled hysteresis (every decision allowed).
    pub fn off() -> Self {
        Hysteresis::new(Duration::ZERO, Duration::ZERO)
    }

    /// May the policy act at all right now?
    pub fn global_ok(&self, now: Time) -> bool {
        self.last_global.is_none_or(|t| now.since(t) >= self.global)
    }

    /// May `pid` be moved right now?
    pub fn pid_ok(&self, now: Time, pid: ProcessId) -> bool {
        self.last_per_pid
            .get(&pid)
            .is_none_or(|&t| now.since(t) >= self.per_process)
    }

    /// Record an issued order.
    pub fn note(&mut self, now: Time, pid: ProcessId) {
        self.last_global = Some(now);
        self.last_per_pid.insert(pid, now);
    }
}

/// Threshold load balancing: when the spread between the most and least
/// loaded machines exceeds `imbalance`, move one user process from the
/// hottest machine to the coolest ("distribute the load as evenly as
/// possible across the set of available resources", §1).
#[derive(Debug)]
pub struct LoadBalance {
    /// Minimum run-queue spread (hottest − coolest) to act on.
    pub imbalance: usize,
    /// Maximum orders per decision round.
    pub max_moves: usize,
    /// Hysteresis state.
    pub hysteresis: Hysteresis,
}

impl LoadBalance {
    /// A balancer acting on a run-queue spread of `imbalance`.
    pub fn new(imbalance: usize, hysteresis: Hysteresis) -> Self {
        LoadBalance {
            imbalance: imbalance.max(1),
            max_moves: 1,
            hysteresis,
        }
    }

    fn load_of(m: &MachineLoad) -> usize {
        // Runnable work outweighs mere residency.
        m.runq * 4 + m.nprocs
    }
}

impl Policy for LoadBalance {
    fn decide(&mut self, view: &ClusterView) -> Vec<MigrationOrder> {
        if !self.hysteresis.global_ok(view.at) {
            return Vec::new();
        }
        let mut orders = Vec::new();
        let healthy: Vec<&MachineLoad> = view.machines.iter().filter(|m| m.health > 0.5).collect();
        if healthy.len() < 2 {
            return orders;
        }
        let hottest = healthy
            .iter()
            .max_by_key(|m| (Self::load_of(m), m.machine.0))
            .expect("nonempty");
        let coolest = healthy
            .iter()
            .min_by_key(|m| (Self::load_of(m), m.machine.0))
            .expect("nonempty");
        if hottest.machine == coolest.machine || hottest.runq < coolest.runq + self.imbalance {
            return orders;
        }
        // Pick the cheapest eligible process on the hottest machine
        // (smallest image → smallest relocation cost, §6).
        let mut candidates: Vec<&ProcessInfo> = view
            .processes
            .iter()
            .filter(|p| {
                p.machine == hottest.machine
                    && !p.privileged
                    && self.hysteresis.pid_ok(view.at, p.pid)
            })
            .collect();
        candidates.sort_by_key(|p| (p.image_len, p.pid.local_uid, p.pid.creating_machine.0));
        for p in candidates.into_iter().take(self.max_moves) {
            if coolest.mem_used + p.image_len > coolest.mem_capacity {
                continue;
            }
            self.hysteresis.note(view.at, p.pid);
            orders.push(MigrationOrder {
                pid: p.pid,
                dest: coolest.machine,
            });
        }
        orders
    }
}

/// Communication affinity: move a process next to the machine it sends
/// most of its traffic to ("moving a process closer to the resource it is
/// using most heavily may reduce system-wide communication traffic", §1).
///
/// Works on *deltas* between successive snapshots so old history does not
/// pin a process forever.
#[derive(Debug)]
pub struct CommAffinity {
    /// Act only when the dominant remote destination received at least
    /// this many bytes since the last snapshot.
    pub min_bytes: u64,
    /// Act only when the dominant destination carries at least this
    /// fraction of the process's remote traffic (0..=1).
    pub dominance: f64,
    /// Hysteresis state.
    pub hysteresis: Hysteresis,
    prev: BTreeMap<(ProcessId, MachineId), u64>,
}

impl CommAffinity {
    /// New affinity policy.
    pub fn new(min_bytes: u64, dominance: f64, hysteresis: Hysteresis) -> Self {
        CommAffinity {
            min_bytes,
            dominance,
            hysteresis,
            prev: BTreeMap::new(),
        }
    }
}

impl Policy for CommAffinity {
    fn decide(&mut self, view: &ClusterView) -> Vec<MigrationOrder> {
        let mut orders = Vec::new();
        // Guard against symmetric swaps: if this round already moves some
        // process A→B, a simultaneous B→A move would leave the pair still
        // separated (they would trade places). One mover per machine pair
        // per round; hysteresis keeps the next round from thrashing.
        let mut pair_taken: std::collections::BTreeSet<(MachineId, MachineId)> =
            std::collections::BTreeSet::new();
        for p in &view.processes {
            if p.privileged {
                continue;
            }
            let mut deltas: Vec<(MachineId, u64)> = Vec::new();
            let mut total = 0u64;
            for &(m, bytes) in &p.bytes_sent_to {
                let prev = self.prev.insert((p.pid, m), bytes).unwrap_or(0);
                let d = bytes.saturating_sub(prev);
                if m != p.machine && d > 0 {
                    deltas.push((m, d));
                    total += d;
                }
            }
            if total < self.min_bytes {
                continue;
            }
            let Some(&(dest, top)) = deltas.iter().max_by_key(|&&(m, d)| (d, m.0)) else {
                continue;
            };
            if (top as f64) < self.dominance * total as f64 {
                continue;
            }
            if !self.hysteresis.global_ok(view.at) || !self.hysteresis.pid_ok(view.at, p.pid) {
                continue;
            }
            if pair_taken.contains(&(dest, p.machine)) {
                continue;
            }
            pair_taken.insert((p.machine, dest));
            self.hysteresis.note(view.at, p.pid);
            orders.push(MigrationOrder { pid: p.pid, dest });
        }
        orders
    }
}

/// Evacuation: move every process off machines whose health has fallen
/// below a threshold ("working processes may be migrated from a dying
/// processor — like rats leaving a sinking ship — before it completely
/// fails", §1).
#[derive(Debug)]
pub struct Evacuate {
    /// Health below which a machine is considered dying.
    pub health_threshold: f64,
}

impl Evacuate {
    /// New evacuation policy.
    pub fn new(health_threshold: f64) -> Self {
        Evacuate { health_threshold }
    }
}

impl Policy for Evacuate {
    fn decide(&mut self, view: &ClusterView) -> Vec<MigrationOrder> {
        let mut orders = Vec::new();
        let dying: Vec<MachineId> = view
            .machines
            .iter()
            .filter(|m| m.health < self.health_threshold)
            .map(|m| m.machine)
            .collect();
        if dying.is_empty() {
            return orders;
        }
        // Spread evacuees round-robin over healthy machines, least loaded
        // first.
        let mut healthy: Vec<&MachineLoad> = view
            .machines
            .iter()
            .filter(|m| m.health >= self.health_threshold)
            .collect();
        healthy.sort_by_key(|m| (m.runq, m.nprocs, m.machine.0));
        if healthy.is_empty() {
            return orders;
        }
        let mut k = 0usize;
        for p in &view.processes {
            if dying.contains(&p.machine) {
                let dest = healthy[k % healthy.len()].machine;
                k += 1;
                orders.push(MigrationOrder { pid: p.pid, dest });
            }
        }
        orders
    }
}

/// Cost-aware load balancing: like [`LoadBalance`], but weighs the
/// estimated relocation cost against the expected gain before ordering a
/// move (§3.1: "a strategy for improving the operation of the system
/// considering the appropriate costs"). A process is moved only when the
/// run-queue spread is large enough that the CPU time it stands to gain
/// over `horizon` exceeds the transfer cost expressed in time.
#[derive(Debug)]
pub struct CostAwareBalance {
    /// Underlying threshold balancer.
    pub inner: LoadBalance,
    /// Transfer throughput used to convert bytes to time, bytes/second.
    pub bytes_per_sec: u64,
    /// How far ahead the gain is credited.
    pub horizon: Duration,
}

impl CostAwareBalance {
    /// New cost-aware balancer.
    pub fn new(
        imbalance: usize,
        hysteresis: Hysteresis,
        bytes_per_sec: u64,
        horizon: Duration,
    ) -> Self {
        CostAwareBalance {
            inner: LoadBalance::new(imbalance, hysteresis),
            bytes_per_sec: bytes_per_sec.max(1),
            horizon,
        }
    }

    /// Estimated time to transfer a process of `image_len` bytes.
    fn transfer_time(&self, image_len: u64) -> Duration {
        let bytes = estimate_cost_bytes(250, 600, image_len, 0);
        Duration::from_micros(bytes.saturating_mul(1_000_000) / self.bytes_per_sec)
    }
}

impl Policy for CostAwareBalance {
    fn decide(&mut self, view: &ClusterView) -> Vec<MigrationOrder> {
        let orders = self.inner.decide(view);
        orders
            .into_iter()
            .filter(|o| {
                let Some(p) = view.processes.iter().find(|p| p.pid == o.pid) else {
                    return false;
                };
                let Some(src) = view.machines.iter().find(|m| m.machine == p.machine) else {
                    return false;
                };
                // Expected gain: on the hot machine the process gets
                // ~1/runq of a CPU; on an idle one, ~a full CPU. Credit the
                // difference over the horizon.
                let share_here = 1.0 / (src.runq.max(1) as f64);
                let gain_us = (1.0 - share_here) * self.horizon.as_micros() as f64;
                let cost_us = self.transfer_time(p.image_len).as_micros() as f64;
                gain_us > cost_us
            })
            .collect()
    }
}

/// Estimated cost of moving a process, in message bytes (§6: state
/// transfer dominated by the image for non-trivial processes, plus the
/// nine administrative messages).
pub fn estimate_cost_bytes(resident: u64, swappable: u64, image: u64, queued_msgs: u64) -> u64 {
    const ADMIN: u64 = 9 * 10; // nine messages, ~10-byte payloads
    const PER_MSG_HEADER: u64 = 26;
    resident + swappable + image + ADMIN + queued_msgs * PER_MSG_HEADER
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(u: u32) -> ProcessId {
        ProcessId {
            creating_machine: MachineId(0),
            local_uid: u,
        }
    }

    fn machine(m: u16, runq: usize) -> MachineLoad {
        MachineLoad {
            machine: MachineId(m),
            runq,
            nprocs: runq,
            ..Default::default()
        }
    }

    fn process(u: u32, m: u16) -> ProcessInfo {
        ProcessInfo {
            pid: pid(u),
            machine: MachineId(m),
            cpu_used: Duration::ZERO,
            image_len: 1000,
            privileged: false,
            bytes_sent_to: vec![],
        }
    }

    #[test]
    fn load_balance_moves_from_hot_to_cool() {
        let mut p = LoadBalance::new(2, Hysteresis::off());
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 6), machine(1, 0)],
            processes: vec![process(1, 0), process(2, 0)],
        };
        let orders = p.decide(&view);
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].dest, MachineId(1));
    }

    #[test]
    fn load_balance_respects_imbalance_threshold() {
        let mut p = LoadBalance::new(4, Hysteresis::off());
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 3), machine(1, 1)],
            processes: vec![process(1, 0)],
        };
        assert!(p.decide(&view).is_empty(), "spread of 2 below threshold 4");
    }

    #[test]
    fn load_balance_skips_privileged() {
        let mut p = LoadBalance::new(1, Hysteresis::off());
        let mut proc = process(1, 0);
        proc.privileged = true;
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 8), machine(1, 0)],
            processes: vec![proc],
        };
        assert!(p.decide(&view).is_empty());
    }

    #[test]
    fn hysteresis_blocks_rapid_remigration() {
        let h = Hysteresis::new(Duration::from_secs(1), Duration::ZERO);
        let mut p = LoadBalance::new(1, h);
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 8), machine(1, 0)],
            processes: vec![process(1, 0)],
        };
        assert_eq!(p.decide(&view).len(), 1);
        // Same process still "hot" moments later: blocked.
        let view2 = ClusterView {
            at: Time(1000),
            ..view.clone()
        };
        assert!(p.decide(&view2).is_empty());
        // After the interval it may move again.
        let view3 = ClusterView {
            at: Time(2_000_000),
            ..view
        };
        assert_eq!(p.decide(&view3).len(), 1);
    }

    #[test]
    fn affinity_follows_dominant_traffic_delta() {
        let h = Hysteresis::off();
        let mut p = CommAffinity::new(100, 0.6, h);
        let mut proc = process(1, 0);
        proc.bytes_sent_to = vec![(MachineId(1), 1000), (MachineId(2), 50)];
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 0), machine(1, 0), machine(2, 0)],
            processes: vec![proc.clone()],
        };
        let orders = p.decide(&view);
        assert_eq!(
            orders,
            vec![MigrationOrder {
                pid: pid(1),
                dest: MachineId(1)
            }]
        );
        // Unchanged counters → zero delta → no repeat order.
        let view2 = ClusterView {
            at: Time(10),
            machines: view.machines.clone(),
            processes: vec![proc],
        };
        assert!(p.decide(&view2).is_empty());
    }

    #[test]
    fn affinity_ignores_local_traffic() {
        let mut p = CommAffinity::new(10, 0.5, Hysteresis::off());
        let mut proc = process(1, 0);
        proc.bytes_sent_to = vec![(MachineId(0), 100_000)];
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 0), machine(1, 0)],
            processes: vec![proc],
        };
        assert!(p.decide(&view).is_empty());
    }

    #[test]
    fn evacuate_empties_dying_machine() {
        let mut p = Evacuate::new(0.5);
        let mut dying = machine(0, 2);
        dying.health = 0.2;
        let view = ClusterView {
            at: Time(0),
            machines: vec![dying, machine(1, 0), machine(2, 1)],
            processes: vec![process(1, 0), process(2, 0), process(3, 1)],
        };
        let orders = p.decide(&view);
        assert_eq!(orders.len(), 2, "both processes on m0 leave");
        assert!(orders.iter().all(|o| o.dest != MachineId(0)));
        // Round-robin spreads them.
        assert_ne!(orders[0].dest, orders[1].dest);
    }

    #[test]
    fn cost_aware_blocks_moves_that_cannot_pay_off() {
        // A huge process on a barely-loaded machine: the threshold rule
        // would move it, the cost-aware rule refuses.
        let mut naive = LoadBalance::new(2, Hysteresis::off());
        let mut wise = CostAwareBalance::new(
            2,
            Hysteresis::off(),
            1_000_000,                 // 1 MB/s transfer
            Duration::from_millis(10), // short horizon
        );
        let mut huge = process(1, 0);
        huge.image_len = 512 * 1024; // ~0.5 s to move, can't pay off in 10 ms
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 6), machine(1, 0)],
            processes: vec![huge],
        };
        assert_eq!(naive.decide(&view).len(), 1, "threshold rule moves it");
        assert!(wise.decide(&view).is_empty(), "cost-aware rule refuses");
    }

    #[test]
    fn cost_aware_allows_profitable_moves() {
        let mut wise = CostAwareBalance::new(
            2,
            Hysteresis::off(),
            10_000_000,             // 10 MB/s
            Duration::from_secs(2), // long horizon
        );
        let mut small = process(1, 0);
        small.image_len = 16 * 1024;
        let view = ClusterView {
            at: Time(0),
            machines: vec![machine(0, 6), machine(1, 0)],
            processes: vec![small],
        };
        assert_eq!(
            wise.decide(&view).len(),
            1,
            "cheap move with big gain proceeds"
        );
    }

    #[test]
    fn cost_estimate_scales_with_image() {
        let small = estimate_cost_bytes(250, 600, 10_000, 0);
        let big = estimate_cost_bytes(250, 600, 1_000_000, 0);
        assert!(big > small);
        assert_eq!(big - small, 990_000);
        assert!(estimate_cost_bytes(0, 0, 0, 10) > estimate_cost_bytes(0, 0, 0, 0));
    }
}
