//! Reliable, sequenced per-peer channels — the delivery guarantee.
//!
//! DEMOS/MP's fundamental communication guarantee is that "any message sent
//! will eventually be delivered" (§2.1), supplied below the kernel by the
//! *published communications* mechanism. This module substitutes a
//! conventional sequenced transport: per source-destination pair, data
//! frames carry increasing sequence numbers, the receiver acknowledges
//! cumulatively, the sender retransmits on timeout, and duplicates are
//! suppressed. Frames may overtake each other on the simulated network
//! (a short frame can beat a long one), so the receiver reorders via a
//! small buffer; delivery to the kernel is exactly-once, in send order.
//!
//! The sender never stalls waiting for an acknowledgement (§6: "the
//! sending kernel does not have to wait for the acknowledgement to send
//! the next packet") until the configurable window fills.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use demos_types::{Duration, MachineId, Time};

use crate::frame::Frame;
use crate::network::Phys;

/// Tuning knobs for the reliable channel.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Retransmission timeout.
    pub rto: Duration,
    /// Maximum unacknowledged data frames per peer before sends queue.
    pub window: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        // RTO of 20 ms against default edge latencies of ~0.5–1 ms leaves
        // ample headroom while still recovering promptly under loss.
        ChannelConfig { rto: Duration::from_millis(20), window: 64 }
    }
}

/// Per-peer channel state.
#[derive(Debug, Default)]
struct Peer {
    /// Next sequence number to assign (sequences start at 1).
    next_seq: u64,
    /// In-flight frames awaiting acknowledgement, in sequence order.
    unacked: VecDeque<(u64, Bytes)>,
    /// Sends deferred because the window was full.
    pending: VecDeque<Bytes>,
    /// When the oldest unacked frame times out.
    rto_deadline: Option<Time>,
    /// Highest sequence delivered in order to the local kernel.
    recv_cum: u64,
    /// Out-of-order frames buffered for reassembly.
    reorder: BTreeMap<u64, Bytes>,
    /// Retransmitted frames (statistics).
    retransmits: u64,
}

/// One machine's end of the reliable transport: a set of sequenced channels
/// to every peer it has communicated with.
#[derive(Debug)]
pub struct Endpoint {
    machine: MachineId,
    cfg: ChannelConfig,
    peers: BTreeMap<MachineId, Peer>,
}

impl Endpoint {
    /// Create the endpoint for `machine`.
    pub fn new(machine: MachineId, cfg: ChannelConfig) -> Self {
        Endpoint { machine, cfg, peers: BTreeMap::new() }
    }

    /// The machine this endpoint belongs to.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Reliably send one encoded message to `dst`.
    ///
    /// # Panics
    /// Debug-asserts that `dst` is a remote machine; local delivery is the
    /// kernel's job and never touches the transport.
    pub fn send(&mut self, now: Time, dst: MachineId, msg_bytes: Bytes, phys: &mut dyn Phys) {
        debug_assert_ne!(dst, self.machine, "local sends must not use the transport");
        let cfg = self.cfg;
        let src = self.machine;
        let peer = self.peers.entry(dst).or_default();
        if peer.unacked.len() >= cfg.window {
            peer.pending.push_back(msg_bytes);
            return;
        }
        Self::transmit_data(src, cfg, peer, now, dst, msg_bytes, phys);
    }

    fn transmit_data(
        src: MachineId,
        cfg: ChannelConfig,
        peer: &mut Peer,
        now: Time,
        dst: MachineId,
        msg_bytes: Bytes,
        phys: &mut dyn Phys,
    ) {
        peer.next_seq += 1;
        let seq = peer.next_seq;
        peer.unacked.push_back((seq, msg_bytes.clone()));
        if peer.rto_deadline.is_none() {
            peer.rto_deadline = Some(now + cfg.rto);
        }
        phys.transmit(now, src, dst, Frame::Data { seq, payload: msg_bytes });
    }

    /// Handle an incoming frame from `from`; returns message payloads now
    /// deliverable to the kernel, in order.
    pub fn on_frame(
        &mut self,
        now: Time,
        from: MachineId,
        frame: Frame,
        phys: &mut dyn Phys,
    ) -> Vec<Bytes> {
        let cfg = self.cfg;
        let src = self.machine;
        let peer = self.peers.entry(from).or_default();
        match frame {
            Frame::Data { seq, payload } => {
                // Always (re-)acknowledge so lost acks cannot wedge the peer.
                if seq <= peer.recv_cum {
                    phys.transmit(now, src, from, Frame::Ack { cum: peer.recv_cum });
                    return Vec::new();
                }
                peer.reorder.insert(seq, payload);
                let mut delivered = Vec::new();
                while let Some(p) = peer.reorder.remove(&(peer.recv_cum + 1)) {
                    peer.recv_cum += 1;
                    delivered.push(p);
                }
                phys.transmit(now, src, from, Frame::Ack { cum: peer.recv_cum });
                delivered
            }
            Frame::Ack { cum } => {
                while peer.unacked.front().is_some_and(|&(s, _)| s <= cum) {
                    peer.unacked.pop_front();
                }
                // Window may have opened: flush deferred sends.
                while peer.unacked.len() < cfg.window {
                    let Some(msg) = peer.pending.pop_front() else { break };
                    Self::transmit_data(src, cfg, peer, now, from, msg, phys);
                }
                peer.rto_deadline =
                    if peer.unacked.is_empty() { None } else { Some(now + cfg.rto) };
                Vec::new()
            }
        }
    }

    /// Earliest retransmission deadline across all peers, if any frame is
    /// in flight.
    pub fn next_timeout(&self) -> Option<Time> {
        self.peers.values().filter_map(|p| p.rto_deadline).min()
    }

    /// Retransmit everything whose deadline has passed (go-back-N).
    pub fn on_timeout(&mut self, now: Time, phys: &mut dyn Phys) {
        let cfg = self.cfg;
        let src = self.machine;
        for (&dst, peer) in self.peers.iter_mut() {
            let Some(deadline) = peer.rto_deadline else { continue };
            if deadline > now {
                continue;
            }
            for (seq, payload) in &peer.unacked {
                peer.retransmits += 1;
                phys.transmit(now, src, dst, Frame::Data { seq: *seq, payload: payload.clone() });
            }
            peer.rto_deadline = Some(now + cfg.rto);
        }
    }

    /// Total frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.peers.values().map(|p| p.unacked.len()).sum()
    }

    /// Total retransmitted frames since creation.
    pub fn retransmits(&self) -> u64 {
        self.peers.values().map(|p| p.retransmits).sum()
    }

    /// Drop all channel state for `peer`: sequence numbers, in-flight and
    /// deferred frames. Used when a crashed peer is revived with a fresh
    /// endpoint — both sides must restart their sequence spaces, or the
    /// survivor's high sequence numbers would sit in the revived peer's
    /// reorder buffer forever. Any unacknowledged messages to the dead
    /// peer are lost, like everything else on it.
    pub fn reset_peer(&mut self, peer: MachineId) {
        self.peers.remove(&peer);
    }

    /// Whether every send has been acknowledged and nothing is queued.
    pub fn quiescent(&self) -> bool {
        self.peers.values().all(|p| p.unacked.is_empty() && p.pending.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records transmitted frames instead of delivering them.
    #[derive(Default)]
    struct Capture(Vec<(MachineId, MachineId, Frame)>);

    impl Phys for Capture {
        fn transmit(&mut self, _now: Time, src: MachineId, dst: MachineId, frame: Frame) {
            self.0.push((src, dst, frame));
        }
    }

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    fn bytes(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn in_order_delivery_with_acks() {
        let mut a = Endpoint::new(m(0), ChannelConfig::default());
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("one"), &mut phys);
        a.send(Time(0), m(1), bytes("two"), &mut phys);
        let frames: Vec<Frame> = phys.0.drain(..).map(|(_, _, f)| f).collect();
        let mut delivered = Vec::new();
        for f in frames {
            delivered.extend(b.on_frame(Time(1), m(0), f, &mut phys));
        }
        assert_eq!(delivered, vec![bytes("one"), bytes("two")]);
        // b sent cumulative acks; feed them back to a.
        let acks: Vec<Frame> = phys.0.drain(..).map(|(_, _, f)| f).collect();
        assert!(acks.iter().all(|f| f.is_ack()));
        for f in acks {
            a.on_frame(Time(2), m(1), f, &mut phys);
        }
        assert_eq!(a.in_flight(), 0);
        assert!(a.quiescent());
        assert!(a.next_timeout().is_none());
    }

    #[test]
    fn reorder_buffering() {
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        // seq 2 arrives before seq 1.
        let d =
            b.on_frame(Time(0), m(0), Frame::Data { seq: 2, payload: bytes("two") }, &mut phys);
        assert!(d.is_empty());
        let d =
            b.on_frame(Time(1), m(0), Frame::Data { seq: 1, payload: bytes("one") }, &mut phys);
        assert_eq!(d, vec![bytes("one"), bytes("two")]);
    }

    #[test]
    fn duplicates_suppressed_and_reacked() {
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        let d1 = b.on_frame(Time(0), m(0), Frame::Data { seq: 1, payload: bytes("x") }, &mut phys);
        assert_eq!(d1.len(), 1);
        let d2 = b.on_frame(Time(1), m(0), Frame::Data { seq: 1, payload: bytes("x") }, &mut phys);
        assert!(d2.is_empty(), "duplicate must not be delivered twice");
        // Both receipts generated an ack.
        assert_eq!(phys.0.iter().filter(|(_, _, f)| f.is_ack()).count(), 2);
    }

    #[test]
    fn retransmit_after_timeout() {
        let cfg = ChannelConfig { rto: Duration::from_millis(5), window: 4 };
        let mut a = Endpoint::new(m(0), cfg);
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("lost"), &mut phys);
        phys.0.clear(); // the frame is "lost"
        assert_eq!(a.next_timeout(), Some(Time(5_000)));
        a.on_timeout(Time(5_000), &mut phys);
        assert_eq!(phys.0.len(), 1, "frame retransmitted");
        assert_eq!(a.retransmits(), 1);
        assert_eq!(a.next_timeout(), Some(Time(10_000)), "deadline re-armed");
    }

    #[test]
    fn window_defers_and_flushes() {
        let cfg = ChannelConfig { rto: Duration::from_millis(5), window: 2 };
        let mut a = Endpoint::new(m(0), cfg);
        let mut phys = Capture::default();
        for s in ["1", "2", "3", "4"] {
            a.send(Time(0), m(1), Bytes::from(s.as_bytes().to_vec()), &mut phys);
        }
        assert_eq!(phys.0.len(), 2, "window limits in-flight frames");
        assert_eq!(a.in_flight(), 2);
        // Ack the first two: the remaining two go out.
        a.on_frame(Time(1), m(1), Frame::Ack { cum: 2 }, &mut phys);
        assert_eq!(phys.0.len(), 4);
        assert!(!a.quiescent());
    }

    #[test]
    fn ack_for_old_seq_ignored() {
        let mut a = Endpoint::new(m(0), ChannelConfig::default());
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("x"), &mut phys);
        a.on_frame(Time(1), m(1), Frame::Ack { cum: 0 }, &mut phys);
        assert_eq!(a.in_flight(), 1, "cum=0 acknowledges nothing");
    }
}
