//! Reliable, sequenced per-peer channels — the delivery guarantee.
//!
//! DEMOS/MP's fundamental communication guarantee is that "any message sent
//! will eventually be delivered" (§2.1), supplied below the kernel by the
//! *published communications* mechanism. This module substitutes a
//! conventional sequenced transport: per source-destination pair, data
//! frames carry increasing sequence numbers, the receiver acknowledges
//! cumulatively, the sender retransmits on timeout, and duplicates are
//! suppressed. Frames may overtake each other on the simulated network
//! (a short frame can beat a long one), so the receiver reorders via a
//! small buffer; delivery to the kernel is exactly-once, in send order.
//!
//! The sender never stalls waiting for an acknowledgement (§6: "the
//! sending kernel does not have to wait for the acknowledgement to send
//! the next packet") until the configurable window fills.
//!
//! For causal tracing, each queued message keeps its correlation id next
//! to (never inside) its wire bytes: the id rides in [`FrameMeta`] on
//! every transmission — including retransmissions, which are marked as
//! such — and is handed back with the payload on delivery so the
//! receiving kernel can re-attach it.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use bytes::Bytes;
use demos_types::{CorrId, Duration, MachineId, Time};

use crate::frame::{Frame, FrameMeta};
use crate::network::{NetEvent, Phys};

/// Tuning knobs for the reliable channel.
#[derive(Clone, Copy, Debug)]
pub struct ChannelConfig {
    /// Retransmission timeout for the first retransmission round. Later
    /// rounds back off exponentially (with deterministic jitter) up to
    /// `rto << max_backoff_exp`.
    pub rto: Duration,
    /// Maximum unacknowledged data frames per peer before sends queue.
    pub window: usize,
    /// Ceiling on the backoff exponent: the inter-retransmission gap never
    /// exceeds `rto * 2^max_backoff_exp` (plus jitter).
    pub max_backoff_exp: u32,
    /// Consecutive retransmission rounds without an ack before the peer is
    /// escalated to [`PeerState::Dead`] and its queued frames are bounced.
    /// `0` disables the budget: the channel retransmits forever and only
    /// an explicit [`Endpoint::mark_dead`] (the kernel failure detector)
    /// can condemn a peer.
    pub retx_budget: u32,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        // RTO of 20 ms against default edge latencies of ~0.5–1 ms leaves
        // ample headroom while still recovering promptly under loss.
        ChannelConfig {
            rto: Duration::from_millis(20),
            window: 64,
            max_backoff_exp: 6,
            retx_budget: 0,
        }
    }
}

/// Liveness verdict the transport holds about one peer.
///
/// Escalation is one-way from the channel's point of view: a peer goes
/// `Alive → Suspect` after half the retransmit budget is burned,
/// `Suspect → Dead` when the budget is exhausted (or the kernel's failure
/// detector calls [`Endpoint::mark_dead`]). An ack de-escalates
/// `Suspect → Alive`; `Dead` is terminal until [`Endpoint::reset_peer`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PeerState {
    /// Acks are flowing; nothing is overdue.
    #[default]
    Alive,
    /// Retransmissions have gone unacknowledged for half the budget.
    Suspect,
    /// The peer is condemned: nothing more will be sent to it, and every
    /// queued frame has been bounced back to the kernel.
    Dead,
}

/// A frame returned to the kernel instead of being (re)transmitted,
/// because its destination is [`PeerState::Dead`]. Carries everything the
/// kernel needs to run its local non-deliverable handling.
#[derive(Debug, Clone)]
pub struct Bounce {
    /// The condemned destination machine.
    pub dst: MachineId,
    /// Correlation id the message was queued with.
    pub corr: CorrId,
    /// The encoded message bytes, exactly as queued.
    pub bytes: Bytes,
}

/// Transport health counters for one endpoint, across all its peers.
/// Survive [`Endpoint::reset_peer`] (they describe the machine, not the
/// connection).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Data frames retransmitted after timeout.
    pub retransmits: u64,
    /// Acks received that acknowledged nothing new.
    pub dup_acks: u64,
    /// Incoming data frames suppressed as duplicates.
    pub dedup_drops: u64,
    /// Frames discarded because they carried a connection epoch different
    /// from the current one: stragglers transmitted by (or to) a previous
    /// incarnation of the channel, still in flight across a reset. Their
    /// sequence numbers belong to a dead sequence space and must not be
    /// woven into the current one.
    pub stale_drops: u64,
    /// Frames bounced back to the kernel because their peer was Dead.
    pub bounced: u64,
}

/// One message queued in the transport: its correlation id alongside its
/// encoded bytes.
#[derive(Debug, Clone)]
struct Queued {
    corr: CorrId,
    bytes: Bytes,
}

/// Per-peer channel state.
#[derive(Debug, Default)]
struct Peer {
    /// Connection incarnation. Every frame in both directions carries it;
    /// a frame whose epoch differs from ours is a straggler from a dead
    /// incarnation and is discarded. Bumped by [`Endpoint::reset_peer`]
    /// on every reboot of either end — the cluster reset protocol hands
    /// both ends the same new value, so live traffic always agrees.
    epoch: u32,
    /// Next sequence number to assign (sequences start at 1).
    next_seq: u64,
    /// In-flight frames awaiting acknowledgement, in sequence order.
    unacked: VecDeque<(u64, Queued)>,
    /// Sends deferred because the window was full.
    pending: VecDeque<Queued>,
    /// When the oldest unacked frame times out.
    rto_deadline: Option<Time>,
    /// Highest sequence delivered in order to the local kernel.
    recv_cum: u64,
    /// Out-of-order frames buffered for reassembly.
    reorder: BTreeMap<u64, (CorrId, Bytes)>,
    /// Liveness verdict for this peer.
    state: PeerState,
    /// Backoff exponent for the next retransmission round (0 ⇒ base RTO).
    backoff_exp: u32,
    /// Consecutive retransmission rounds since the last ack.
    retx_rounds: u32,
}

/// One machine's end of the reliable transport: a set of sequenced channels
/// to every peer it has communicated with.
#[derive(Debug)]
pub struct Endpoint {
    machine: MachineId,
    cfg: ChannelConfig,
    peers: BTreeMap<MachineId, Peer>,
    stats: ChannelStats,
    /// Min-heap over armed retransmission deadlines, lazily invalidated:
    /// an entry `(t, dst)` is live iff `peers[dst].rto_deadline == Some(t)`
    /// at the moment it is inspected. Deadlines are never removed from the
    /// heap when cleared or superseded — stale entries are discarded on
    /// peek/pop. This makes [`Endpoint::next_timeout_indexed`] an O(log n)
    /// peek instead of an O(peers) scan.
    rto_heap: BinaryHeap<Reverse<(Time, MachineId)>>,
}

impl Endpoint {
    /// Create the endpoint for `machine`.
    pub fn new(machine: MachineId, cfg: ChannelConfig) -> Self {
        Endpoint {
            machine,
            cfg,
            peers: BTreeMap::new(),
            stats: ChannelStats::default(),
            rto_heap: BinaryHeap::new(),
        }
    }

    /// The machine this endpoint belongs to.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Transport health counters.
    pub fn channel_stats(&self) -> ChannelStats {
        self.stats
    }

    /// Reliably send one encoded message to `dst`, tagged with the
    /// message's correlation id (pass [`CorrId::NONE`] for untraced
    /// traffic).
    ///
    /// If `dst` has been condemned ([`PeerState::Dead`]) nothing is
    /// transmitted: the message comes straight back as a [`Bounce`] for
    /// the kernel's local non-deliverable handling.
    ///
    /// # Panics
    /// Debug-asserts that `dst` is a remote machine; local delivery is the
    /// kernel's job and never touches the transport.
    pub fn send(
        &mut self,
        now: Time,
        dst: MachineId,
        msg_bytes: Bytes,
        corr: CorrId,
        phys: &mut dyn Phys,
    ) -> Option<Bounce> {
        debug_assert_ne!(dst, self.machine, "local sends must not use the transport");
        let cfg = self.cfg;
        let src = self.machine;
        let peer = self.peers.entry(dst).or_default();
        if peer.state == PeerState::Dead {
            self.stats.bounced += 1;
            return Some(Bounce {
                dst,
                corr,
                bytes: msg_bytes,
            });
        }
        let q = Queued {
            corr,
            bytes: msg_bytes,
        };
        if peer.unacked.len() >= cfg.window {
            peer.pending.push_back(q);
            return None;
        }
        Self::transmit_data(src, cfg, &mut self.rto_heap, peer, now, dst, q, phys);
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn transmit_data(
        src: MachineId,
        cfg: ChannelConfig,
        rto_heap: &mut BinaryHeap<Reverse<(Time, MachineId)>>,
        peer: &mut Peer,
        now: Time,
        dst: MachineId,
        q: Queued,
        phys: &mut dyn Phys,
    ) {
        peer.next_seq += 1;
        let seq = peer.next_seq;
        let frame = Frame::Data {
            epoch: peer.epoch,
            seq,
            payload: q.bytes.clone(),
            meta: FrameMeta::new(q.corr),
        };
        peer.unacked.push_back((seq, q));
        if peer.rto_deadline.is_none() {
            let deadline = now + cfg.rto;
            peer.rto_deadline = Some(deadline);
            rto_heap.push(Reverse((deadline, dst)));
        }
        phys.transmit(now, src, dst, frame);
    }

    /// Handle an incoming frame from `from`; returns `(corr, payload)`
    /// pairs now deliverable to the kernel, in order.
    pub fn on_frame(
        &mut self,
        now: Time,
        from: MachineId,
        frame: Frame,
        phys: &mut dyn Phys,
    ) -> Vec<(CorrId, Bytes)> {
        let cfg = self.cfg;
        let src = self.machine;
        let peer = self.peers.entry(from).or_default();
        // Connection-incarnation gate: a reboot of either end resets the
        // channel and bumps the epoch on both sides, but frames from the
        // old incarnation may still be in flight. Their sequence numbers
        // are meaningless in the fresh sequence space (an old seq 2 would
        // sit in the reorder buffer and later masquerade as the new seq 2),
        // so anything not from the current epoch is discarded unanswered —
        // acking it would equally confuse the sender's new send state.
        if frame.epoch() != peer.epoch {
            self.stats.stale_drops += 1;
            phys.note(NetEvent::StaleEpochDrop);
            return Vec::new();
        }
        let epoch = peer.epoch;
        match frame {
            Frame::Data {
                seq, payload, meta, ..
            } => {
                // Always (re-)acknowledge so lost acks cannot wedge the peer.
                if seq <= peer.recv_cum {
                    self.stats.dedup_drops += 1;
                    phys.note(NetEvent::DedupDrop);
                    phys.transmit(
                        now,
                        src,
                        from,
                        Frame::Ack {
                            epoch,
                            cum: peer.recv_cum,
                        },
                    );
                    return Vec::new();
                }
                match peer.reorder.entry(seq) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert((meta.corr, payload));
                    }
                    std::collections::btree_map::Entry::Occupied(_) => {
                        // Retransmission of a frame already buffered out of
                        // order: suppressed, but still re-acked below.
                        self.stats.dedup_drops += 1;
                        phys.note(NetEvent::DedupDrop);
                    }
                }
                let mut delivered = Vec::new();
                while let Some(p) = peer.reorder.remove(&(peer.recv_cum + 1)) {
                    peer.recv_cum += 1;
                    delivered.push(p);
                }
                phys.transmit(
                    now,
                    src,
                    from,
                    Frame::Ack {
                        epoch,
                        cum: peer.recv_cum,
                    },
                );
                delivered
            }
            Frame::Ack { cum, .. } => {
                let mut popped = 0u64;
                while peer.unacked.front().is_some_and(|&(s, _)| s <= cum) {
                    peer.unacked.pop_front();
                    popped += 1;
                }
                if popped == 0 {
                    self.stats.dup_acks += 1;
                    phys.note(NetEvent::DupAck);
                }
                // Window may have opened: flush deferred sends.
                while peer.unacked.len() < cfg.window {
                    let Some(q) = peer.pending.pop_front() else {
                        break;
                    };
                    Self::transmit_data(src, cfg, &mut self.rto_heap, peer, now, from, q, phys);
                }
                // An ack is proof of life: reset the backoff ladder and the
                // retransmit budget, and clear any suspicion. (Dead stays
                // dead — the queues were already bounced.)
                if popped > 0 {
                    peer.backoff_exp = 0;
                    peer.retx_rounds = 0;
                    if peer.state == PeerState::Suspect {
                        peer.state = PeerState::Alive;
                    }
                }
                peer.rto_deadline = if peer.unacked.is_empty() {
                    None
                } else {
                    let deadline = now + cfg.rto;
                    self.rto_heap.push(Reverse((deadline, from)));
                    Some(deadline)
                };
                Vec::new()
            }
        }
    }

    /// Earliest retransmission deadline across all peers, if any frame is
    /// in flight. Authoritative O(peers) scan; the simulation hot loop
    /// uses [`Endpoint::next_timeout_indexed`] instead.
    pub fn next_timeout(&self) -> Option<Time> {
        self.peers.values().filter_map(|p| p.rto_deadline).min()
    }

    /// Whether heap entry `(t, dst)` still describes `dst`'s armed
    /// deadline. A condemned or reset peer clears its deadline, so its
    /// entries go stale automatically.
    fn rto_entry_valid(&self, t: Time, dst: MachineId) -> bool {
        self.peers
            .get(&dst)
            .is_some_and(|p| p.rto_deadline == Some(t))
    }

    /// Indexed equivalent of [`Endpoint::next_timeout`]: an O(log n)
    /// peek over the deadline heap, discarding stale entries on the way.
    /// Debug builds cross-check the answer against the full scan.
    pub fn next_timeout_indexed(&mut self) -> Option<Time> {
        let r = loop {
            match self.rto_heap.peek() {
                Some(&Reverse((t, dst))) => {
                    if self.rto_entry_valid(t, dst) {
                        break Some(t);
                    }
                    self.rto_heap.pop();
                }
                None => break None,
            }
        };
        debug_assert_eq!(r, self.next_timeout(), "rto index diverged from scan");
        r
    }

    /// Deterministic jitter for the retransmission deadline: a fixed
    /// fraction (up to 1/8) of the backed-off interval, derived
    /// arithmetically from the endpoint pair and the backoff round so two
    /// machines that timed out together do not retransmit in lock-step.
    /// No RNG — the same inputs always yield the same jitter, preserving
    /// bit-for-bit replay.
    fn jitter_us(src: MachineId, dst: MachineId, exp: u32, base_us: u64) -> u64 {
        let mix = ((src.0 as u64) << 24 | (dst.0 as u64) << 8 | exp as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mix >> 48) % (base_us / 8 + 1)
    }

    /// Retransmit everything whose deadline has passed (go-back-N), with
    /// exponential backoff between rounds. Retransmissions keep their
    /// original correlation id and are marked in the frame metadata.
    ///
    /// When a peer exhausts the configured retransmit budget it is
    /// escalated to [`PeerState::Dead`] and everything queued for it is
    /// returned for the kernel's local non-deliverable handling.
    pub fn on_timeout(&mut self, now: Time, phys: &mut dyn Phys) -> Vec<Bounce> {
        let cfg = self.cfg;
        let src = self.machine;
        // Pop every due, still-live deadline from the heap instead of
        // scanning all peers. Stale entries (acked, superseded, condemned)
        // are discarded here; duplicates from repeated re-arms at the same
        // instant are deduped. Sorting restores the pre-index iteration
        // order — ascending machine id — which fixes the frame-emission
        // order and therefore the deterministic replay.
        let mut due: Vec<MachineId> = Vec::new();
        while let Some(&Reverse((t, dst))) = self.rto_heap.peek() {
            if !self.rto_entry_valid(t, dst) {
                self.rto_heap.pop();
                continue;
            }
            if t > now {
                break;
            }
            self.rto_heap.pop();
            due.push(dst);
        }
        due.sort_unstable();
        due.dedup();
        let mut bounces = Vec::new();
        for dst in due {
            let Some(peer) = self.peers.get_mut(&dst) else {
                continue;
            };
            if peer.state == PeerState::Dead {
                continue;
            }
            peer.retx_rounds += 1;
            if cfg.retx_budget > 0 {
                if peer.retx_rounds >= cfg.retx_budget {
                    bounces.extend(Self::condemn(&mut self.stats, dst, peer));
                    continue;
                }
                if peer.retx_rounds >= cfg.retx_budget.div_ceil(2) {
                    peer.state = PeerState::Suspect;
                }
            }
            for (seq, q) in &peer.unacked {
                self.stats.retransmits += 1;
                let frame = Frame::Data {
                    epoch: peer.epoch,
                    seq: *seq,
                    payload: q.bytes.clone(),
                    meta: FrameMeta::new(q.corr).retransmission(),
                };
                phys.transmit(now, src, dst, frame);
            }
            // Back off: the first round re-arms at the base RTO (exp 0),
            // later rounds double up to the ceiling, plus deterministic
            // jitter once backoff is in effect.
            let exp = peer.backoff_exp.min(cfg.max_backoff_exp);
            let base_us = cfg.rto.as_micros() << exp;
            let jitter = if exp == 0 {
                0
            } else {
                Self::jitter_us(src, dst, exp, base_us)
            };
            let deadline = now + Duration::from_micros(base_us + jitter);
            peer.rto_deadline = Some(deadline);
            self.rto_heap.push(Reverse((deadline, dst)));
            peer.backoff_exp = (peer.backoff_exp + 1).min(cfg.max_backoff_exp);
        }
        bounces
    }

    /// Transition `peer` to Dead, draining its queues into bounces.
    fn condemn(stats: &mut ChannelStats, dst: MachineId, peer: &mut Peer) -> Vec<Bounce> {
        peer.state = PeerState::Dead;
        peer.rto_deadline = None;
        let mut bounces = Vec::new();
        for (_, q) in peer.unacked.drain(..) {
            stats.bounced += 1;
            bounces.push(Bounce {
                dst,
                corr: q.corr,
                bytes: q.bytes,
            });
        }
        for q in peer.pending.drain(..) {
            stats.bounced += 1;
            bounces.push(Bounce {
                dst,
                corr: q.corr,
                bytes: q.bytes,
            });
        }
        bounces
    }

    /// Condemn `peer` on external evidence (the kernel's heartbeat
    /// failure detector): escalate it to [`PeerState::Dead`] immediately
    /// and return every queued frame as a bounce. Subsequent sends to the
    /// peer bounce synchronously until [`Endpoint::reset_peer`].
    pub fn mark_dead(&mut self, peer: MachineId) -> Vec<Bounce> {
        let entry = self.peers.entry(peer).or_default();
        Self::condemn(&mut self.stats, peer, entry)
    }

    /// The transport's liveness verdict for `peer` (Alive if unknown).
    pub fn peer_state(&self, peer: MachineId) -> PeerState {
        self.peers.get(&peer).map_or(PeerState::Alive, |p| p.state)
    }

    /// Total frames currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.peers.values().map(|p| p.unacked.len()).sum()
    }

    /// Total retransmitted frames since creation.
    pub fn retransmits(&self) -> u64 {
        self.stats.retransmits
    }

    /// Per-peer transmit backlog: `(peer, unacked, pending, state)` for
    /// every peer with channel state. Diagnostic — the chaos harness uses
    /// it to name the peer a non-quiescent endpoint is still waiting on.
    pub fn backlog(&self) -> Vec<(MachineId, usize, usize, PeerState)> {
        self.peers
            .iter()
            .map(|(&m, p)| (m, p.unacked.len(), p.pending.len(), p.state))
            .collect()
    }

    /// Drop all channel state for `peer` — sequence numbers, in-flight and
    /// deferred frames — and start connection incarnation `epoch`. Used
    /// when a crashed peer is revived with a fresh endpoint: both sides
    /// must restart their sequence spaces, or the survivor's high sequence
    /// numbers would sit in the revived peer's reorder buffer forever. Any
    /// unacknowledged messages to the dead peer are lost, like everything
    /// else on it.
    ///
    /// `epoch` must be strictly greater than every incarnation this
    /// channel has used before (the cluster reset protocol derives it from
    /// the max of both ends' current epochs), so that frames of the old
    /// incarnation still in flight across the reset are recognizably stale
    /// instead of being woven into the fresh sequence space.
    pub fn reset_peer(&mut self, peer: MachineId, epoch: u32) {
        debug_assert!(
            self.peers.get(&peer).is_none_or(|p| epoch > p.epoch),
            "channel epoch must move forward on reset"
        );
        self.peers.insert(
            peer,
            Peer {
                epoch,
                ..Peer::default()
            },
        );
    }

    /// Current connection incarnation of the channel to `peer` (0 if the
    /// pair has never communicated or been reset).
    pub fn peer_epoch(&self, peer: MachineId) -> u32 {
        self.peers.get(&peer).map_or(0, |p| p.epoch)
    }

    /// Whether every send has been acknowledged and nothing is queued.
    pub fn quiescent(&self) -> bool {
        self.peers
            .values()
            .all(|p| p.unacked.is_empty() && p.pending.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records transmitted frames instead of delivering them.
    #[derive(Default)]
    struct Capture(Vec<(MachineId, MachineId, Frame)>);

    impl Phys for Capture {
        fn transmit(&mut self, _now: Time, src: MachineId, dst: MachineId, frame: Frame) {
            self.0.push((src, dst, frame));
        }
    }

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    fn bytes(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    fn corr(n: u64) -> CorrId {
        CorrId::new(m(0), n)
    }

    fn payloads(delivered: Vec<(CorrId, Bytes)>) -> Vec<Bytes> {
        delivered.into_iter().map(|(_, b)| b).collect()
    }

    #[test]
    fn in_order_delivery_with_acks() {
        let mut a = Endpoint::new(m(0), ChannelConfig::default());
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("one"), corr(1), &mut phys);
        a.send(Time(0), m(1), bytes("two"), corr(2), &mut phys);
        let frames: Vec<Frame> = phys.0.drain(..).map(|(_, _, f)| f).collect();
        let mut delivered = Vec::new();
        for f in frames {
            delivered.extend(b.on_frame(Time(1), m(0), f, &mut phys));
        }
        assert_eq!(
            delivered,
            vec![(corr(1), bytes("one")), (corr(2), bytes("two"))],
            "correlation ids arrive with their payloads"
        );
        // b sent cumulative acks; feed them back to a.
        let acks: Vec<Frame> = phys.0.drain(..).map(|(_, _, f)| f).collect();
        assert!(acks.iter().all(|f| f.is_ack()));
        for f in acks {
            a.on_frame(Time(2), m(1), f, &mut phys);
        }
        assert_eq!(a.in_flight(), 0);
        assert!(a.quiescent());
        assert!(a.next_timeout().is_none());
    }

    #[test]
    fn reorder_buffering() {
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        // seq 2 arrives before seq 1.
        let d = b.on_frame(Time(0), m(0), Frame::data(2, bytes("two")), &mut phys);
        assert!(d.is_empty());
        let d = b.on_frame(Time(1), m(0), Frame::data(1, bytes("one")), &mut phys);
        assert_eq!(payloads(d), vec![bytes("one"), bytes("two")]);
    }

    #[test]
    fn duplicates_suppressed_and_reacked() {
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        let d1 = b.on_frame(Time(0), m(0), Frame::data(1, bytes("x")), &mut phys);
        assert_eq!(d1.len(), 1);
        let d2 = b.on_frame(Time(1), m(0), Frame::data(1, bytes("x")), &mut phys);
        assert!(d2.is_empty(), "duplicate must not be delivered twice");
        // Both receipts generated an ack.
        assert_eq!(phys.0.iter().filter(|(_, _, f)| f.is_ack()).count(), 2);
        assert_eq!(
            b.channel_stats().dedup_drops,
            1,
            "the duplicate was counted"
        );
    }

    #[test]
    fn duplicate_of_buffered_out_of_order_frame_counted() {
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        assert!(b
            .on_frame(Time(0), m(0), Frame::data(2, bytes("two")), &mut phys)
            .is_empty());
        assert!(b
            .on_frame(Time(1), m(0), Frame::data(2, bytes("two")), &mut phys)
            .is_empty());
        assert_eq!(b.channel_stats().dedup_drops, 1);
        // Delivery still exactly once when the gap fills.
        let d = b.on_frame(Time(2), m(0), Frame::data(1, bytes("one")), &mut phys);
        assert_eq!(payloads(d), vec![bytes("one"), bytes("two")]);
    }

    #[test]
    fn retransmit_after_timeout() {
        let cfg = ChannelConfig {
            rto: Duration::from_millis(5),
            window: 4,
            ..Default::default()
        };
        let mut a = Endpoint::new(m(0), cfg);
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("lost"), corr(7), &mut phys);
        phys.0.clear(); // the frame is "lost"
        assert_eq!(a.next_timeout(), Some(Time(5_000)));
        a.on_timeout(Time(5_000), &mut phys);
        assert_eq!(phys.0.len(), 1, "frame retransmitted");
        let meta = phys.0[0].2.meta().unwrap();
        assert!(meta.retx, "retransmission marked in metadata");
        assert_eq!(meta.corr, corr(7), "correlation id survives retransmission");
        assert_eq!(a.retransmits(), 1);
        assert_eq!(a.channel_stats().retransmits, 1);
        assert_eq!(a.next_timeout(), Some(Time(10_000)), "deadline re-armed");
    }

    #[test]
    fn window_defers_and_flushes() {
        let cfg = ChannelConfig {
            rto: Duration::from_millis(5),
            window: 2,
            ..Default::default()
        };
        let mut a = Endpoint::new(m(0), cfg);
        let mut phys = Capture::default();
        for (i, s) in ["1", "2", "3", "4"].iter().enumerate() {
            a.send(
                Time(0),
                m(1),
                Bytes::from(s.as_bytes().to_vec()),
                corr(i as u64 + 1),
                &mut phys,
            );
        }
        assert_eq!(phys.0.len(), 2, "window limits in-flight frames");
        assert_eq!(a.in_flight(), 2);
        // Ack the first two: the remaining two go out.
        a.on_frame(Time(1), m(1), Frame::Ack { epoch: 0, cum: 2 }, &mut phys);
        assert_eq!(phys.0.len(), 4);
        assert!(!a.quiescent());
        // A deferred message keeps its correlation id when it finally
        // leaves the window.
        assert_eq!(phys.0[3].2.meta().unwrap().corr, corr(4));
    }

    /// Backoff doubles per unacked retransmission round, caps at the
    /// configured ceiling, and an ack resets the ladder so the next loss
    /// starts again from the base RTO.
    #[test]
    fn backoff_caps_and_rearms_after_ack() {
        let cfg = ChannelConfig {
            rto: Duration::from_millis(5),
            window: 4,
            max_backoff_exp: 2,
            retx_budget: 0,
        };
        let mut a = Endpoint::new(m(0), cfg);
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("x"), corr(1), &mut phys);
        phys.0.clear();
        // Walk the ladder: gap after round n is rto<<min(n-1, cap) + jitter
        // (jitter only once backoff kicks in). At the cap the gap stops
        // growing and becomes constant — same exponent, same jitter.
        let mut now = a.next_timeout().unwrap();
        let mut gaps = Vec::new();
        for _ in 0..5 {
            a.on_timeout(now, &mut phys);
            let next = a.next_timeout().unwrap();
            gaps.push(next.since(now).as_micros());
            now = next;
        }
        assert_eq!(gaps[0], 5_000, "first round re-arms at the base RTO");
        assert!(
            (10_000..10_000 + 10_000 / 8 + 1).contains(&gaps[1]),
            "second round doubles (plus bounded jitter): {}",
            gaps[1]
        );
        assert!(
            (20_000..20_000 + 20_000 / 8 + 1).contains(&gaps[2]),
            "third round doubles again: {}",
            gaps[2]
        );
        assert_eq!(gaps[2], gaps[3], "ceiling reached: the gap stops growing");
        assert_eq!(gaps[3], gaps[4]);
        // An ack clears the ladder; a fresh loss starts from the base RTO.
        a.on_frame(now, m(1), Frame::Ack { epoch: 0, cum: 1 }, &mut phys);
        assert!(a.next_timeout().is_none());
        a.send(now, m(1), bytes("y"), corr(2), &mut phys);
        assert_eq!(
            a.next_timeout(),
            Some(now + cfg.rto),
            "backoff re-armed at base after ack"
        );
        a.on_timeout(now + cfg.rto, &mut phys);
        assert_eq!(
            a.next_timeout(),
            Some(now + cfg.rto + cfg.rto),
            "first retransmission round after an ack uses the base RTO again"
        );
    }

    /// Exhausting the retransmit budget condemns the peer: queued frames
    /// (in-flight and deferred) come back as bounces, the peer reads Dead,
    /// and later sends bounce synchronously instead of transmitting.
    #[test]
    fn budget_exhaustion_bounces_and_condemns() {
        let cfg = ChannelConfig {
            rto: Duration::from_millis(5),
            window: 1,
            max_backoff_exp: 6,
            retx_budget: 3,
        };
        let mut a = Endpoint::new(m(0), cfg);
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("one"), corr(1), &mut phys);
        a.send(Time(0), m(1), bytes("two"), corr(2), &mut phys); // deferred
        assert_eq!(a.peer_state(m(1)), PeerState::Alive);
        let mut now = a.next_timeout().unwrap();
        // Round 1 retransmits; round 2 (>= ceil(3/2)) suspects.
        assert!(a.on_timeout(now, &mut phys).is_empty());
        now = a.next_timeout().unwrap();
        assert!(a.on_timeout(now, &mut phys).is_empty());
        assert_eq!(a.peer_state(m(1)), PeerState::Suspect);
        // Round 3 exhausts the budget: both frames bounce.
        now = a.next_timeout().unwrap();
        let bounces = a.on_timeout(now, &mut phys);
        assert_eq!(bounces.len(), 2, "in-flight and deferred frames bounce");
        assert_eq!(bounces[0].dst, m(1));
        assert_eq!(bounces[0].corr, corr(1));
        assert_eq!(bounces[1].bytes, bytes("two"));
        assert_eq!(a.peer_state(m(1)), PeerState::Dead);
        assert_eq!(a.channel_stats().bounced, 2);
        assert!(a.next_timeout().is_none(), "no deadline for a dead peer");
        assert!(a.quiescent(), "nothing left queued for the dead peer");
        // A later send comes straight back.
        let b = a.send(now, m(1), bytes("three"), corr(3), &mut phys);
        let b = b.expect("send to a dead peer bounces");
        assert_eq!(b.corr, corr(3));
        assert_eq!(a.channel_stats().bounced, 3);
    }

    /// `mark_dead` (the kernel failure detector's verdict) purges the
    /// peer immediately, and `reset_peer` afterwards reconciles with the
    /// transport-conservation ledger: in-flight drops to zero, the bounce
    /// counter accounts for every purged frame, and delivery/dedup
    /// counters are untouched.
    #[test]
    fn mark_dead_purge_reconciles_with_conservation() {
        let mut a = Endpoint::new(m(0), ChannelConfig::default());
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("one"), corr(1), &mut phys);
        a.send(Time(0), m(1), bytes("two"), corr(2), &mut phys);
        a.send(Time(0), m(2), bytes("keep"), corr(3), &mut phys);
        let before = a.channel_stats();
        assert_eq!(a.in_flight(), 3);
        let bounces = a.mark_dead(m(1));
        assert_eq!(bounces.len(), 2, "only the dead peer's frames bounce");
        // Conservation: every frame formerly in flight to the dead peer is
        // now accounted for by the bounce counter, none silently vanish.
        assert_eq!(a.in_flight(), 1);
        assert_eq!(a.channel_stats().bounced - before.bounced, 2);
        assert_eq!(a.channel_stats().retransmits, before.retransmits);
        assert_eq!(a.channel_stats().dedup_drops, before.dedup_drops);
        assert_eq!(a.peer_state(m(1)), PeerState::Dead);
        assert_eq!(a.peer_state(m(2)), PeerState::Alive);
        assert_eq!(
            a.next_timeout(),
            Some(Time(0) + ChannelConfig::default().rto),
            "the live peer's deadline survives the purge"
        );
        // reset_peer forgets the verdict entirely (revival): sequence
        // space restarts and the peer is sendable again.
        a.reset_peer(m(1), 1);
        assert_eq!(a.peer_state(m(1)), PeerState::Alive);
        assert!(a
            .send(Time(10), m(1), bytes("fresh"), corr(4), &mut phys)
            .is_none());
        assert_eq!(a.in_flight(), 2);
    }

    #[test]
    fn ack_for_old_seq_ignored_and_counted() {
        let mut a = Endpoint::new(m(0), ChannelConfig::default());
        let mut phys = Capture::default();
        a.send(Time(0), m(1), bytes("x"), corr(1), &mut phys);
        a.on_frame(Time(1), m(1), Frame::Ack { epoch: 0, cum: 0 }, &mut phys);
        assert_eq!(a.in_flight(), 1, "cum=0 acknowledges nothing");
        assert_eq!(a.channel_stats().dup_acks, 1);
    }

    /// Frames of a previous connection incarnation that were still in
    /// flight across a reset are discarded — not acked, not buffered —
    /// instead of entering the fresh sequence space. Regression for a
    /// fuzzer-found trace where an old seq-2 heartbeat frame crossed a
    /// crash+revive, sat in the revived channel's reorder buffer until the
    /// new seq 1 released it, and then made the *new* seq 2 look like a
    /// duplicate (dedup drops with zero retransmissions).
    #[test]
    fn stale_epoch_frames_dropped_across_reset() {
        let mut b = Endpoint::new(m(1), ChannelConfig::default());
        let mut phys = Capture::default();
        // Old incarnation delivered seq 1; its seq 2 is still in flight.
        let d = b.on_frame(Time(0), m(0), Frame::data(1, bytes("old1")), &mut phys);
        assert_eq!(d.len(), 1);
        // The peer reboots: both ends reset to incarnation 1.
        b.reset_peer(m(0), 1);
        phys.0.clear();
        // The old incarnation's straggler arrives after the reset.
        let d = b.on_frame(Time(2), m(0), Frame::data(2, bytes("old2")), &mut phys);
        assert!(d.is_empty(), "stale frame must not be delivered");
        assert!(phys.0.is_empty(), "stale frame must not be acked");
        assert_eq!(b.channel_stats().stale_drops, 1);
        assert_eq!(b.channel_stats().dedup_drops, 0);
        // The new incarnation reuses the same sequence numbers cleanly.
        let fresh = |seq, s| Frame::Data {
            epoch: 1,
            seq,
            payload: bytes(s),
            meta: FrameMeta::default(),
        };
        let mut d = b.on_frame(Time(3), m(0), fresh(1, "new1"), &mut phys);
        d.extend(b.on_frame(Time(4), m(0), fresh(2, "new2"), &mut phys));
        assert_eq!(payloads(d), vec![bytes("new1"), bytes("new2")]);
        // A stale ack is equally ignored: it must not acknowledge frames
        // of the new incarnation that happen to share sequence numbers.
        let mut a = Endpoint::new(m(0), ChannelConfig::default());
        a.send(Time(5), m(1), bytes("x"), corr(1), &mut phys);
        a.reset_peer(m(1), 1);
        a.send(Time(6), m(1), bytes("y"), corr(2), &mut phys);
        a.on_frame(Time(7), m(1), Frame::Ack { epoch: 0, cum: 1 }, &mut phys);
        assert_eq!(a.in_flight(), 1, "old-incarnation ack ignored");
        assert_eq!(a.channel_stats().stale_drops, 1);
    }
}
