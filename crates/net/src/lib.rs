//! Simulated inter-kernel network.
//!
//! DEMOS/MP assumes "reliable delivery of messages … any message sent will
//! eventually be delivered" (§2.1), provided by the *published
//! communications* layer of Powell & Presotto 83. We do not have that
//! system (or the Z8000 network hardware), so this crate substitutes:
//!
//! * [`topology`] — a weighted graph of machines with per-edge latency,
//!   per-byte cost and loss probability, plus shortest-path routing
//!   (messages can travel "possibly through intermediate processors", §1);
//! * [`frame`] — the link-level frame format (data + cumulative acks);
//! * [`channel`] — per-peer sequenced go-back-N channels with
//!   retransmission and duplicate suppression: the delivery guarantee;
//! * [`network`] — the physical layer: a deterministic event heap that
//!   delays, drops (seeded) and delivers frames, and records the traffic
//!   statistics (frames, bytes, hops) that the paper's cost analysis (§6)
//!   is denominated in.
//!
//! Determinism: all ordering is `(time, sequence)`-keyed and all loss is
//! drawn from a seeded RNG, so a simulation replays bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod network;
pub mod topology;

pub use channel::{Bounce, ChannelConfig, ChannelStats, Endpoint, PeerState};
pub use frame::{Frame, FrameMeta};
pub use network::{InFlight, NetEvent, NetStats, Phys, SendKey, SimNetwork};
pub use topology::{EdgeParams, Topology};
