//! Cluster topology and routing.
//!
//! Machines are vertices; bidirectional edges carry latency, a per-byte
//! transmission cost and an independent loss probability. Frames follow
//! precomputed shortest-latency paths, so a message "possibly travels
//! through intermediate processors" (§1) — which is exactly what makes
//! moving a process closer to a resource reduce system-wide traffic
//! (experiment E10).
//!
//! Two representations back the same routing API:
//!
//! * **Uniform** — a complete mesh where every edge carries identical
//!   parameters (the paper's single shared network). Routes are trivially
//!   the direct edge, so construction and every query are O(1) regardless
//!   of cluster size. This is what makes 4096-machine clusters buildable:
//!   the dense matrix would need O(n²) memory and O(n³) route recompute.
//! * **Dense** — an explicit adjacency matrix with Floyd–Warshall
//!   all-pairs routes, used for lines, rings, stars and any topology that
//!   has been edited (fault injection severs edges). A uniform topology
//!   silently materializes to dense on its first edge edit.

use demos_types::{Duration, MachineId};

/// Parameters of one bidirectional edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeParams {
    /// Fixed propagation + switching latency per frame.
    pub latency: Duration,
    /// Transmission cost per byte, in nanoseconds (1000 ns/B ≈ 1 MB/s).
    pub ns_per_byte: u64,
    /// Probability that a frame traversing this edge is lost.
    pub loss: f64,
}

impl Default for EdgeParams {
    fn default() -> Self {
        // Roughly a few-Mbit/s local network of early-80s vintage: 500 us
        // switching latency, ~2 MB/s, lossless unless configured otherwise.
        EdgeParams {
            latency: Duration::from_micros(500),
            ns_per_byte: 500,
            loss: 0.0,
        }
    }
}

impl EdgeParams {
    /// A fast, lossless LAN edge (useful in unit tests).
    pub fn fast() -> Self {
        EdgeParams {
            latency: Duration::from_micros(50),
            ns_per_byte: 50,
            loss: 0.0,
        }
    }

    /// Time for a frame of `bytes` to traverse this edge.
    pub fn transit(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_micros((self.ns_per_byte * bytes as u64) / 1000)
    }
}

/// A route between two machines, precomputed.
#[derive(Clone, Debug, Default)]
struct Route {
    /// Edges along the path, as `(from, to)` indices; empty for self-routes
    /// or unreachable pairs.
    edges: Vec<(usize, usize)>,
    /// Total fixed latency along the path.
    reachable: bool,
}

/// Storage behind [`Topology`]: uniform complete mesh or explicit matrix.
#[derive(Clone, Debug)]
enum Repr {
    /// Complete mesh, every edge identical. No per-pair storage at all.
    Uniform { params: EdgeParams },
    /// Adjacency matrix plus all-pairs routes, recomputed on change.
    Dense {
        edges: Vec<Option<EdgeParams>>,
        routes: Vec<Route>,
    },
}

/// The cluster graph with all-pairs shortest routes.
///
/// Machines are identified by dense [`MachineId`]s `0..n`.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    repr: Repr,
    /// Bumped on every mutation; lets callers cache derived structures
    /// (e.g. shard partition plans) and cheaply detect staleness.
    version: u64,
    /// Minimum latency over all installed edges (`None` when edgeless).
    min_latency: Option<Duration>,
    /// Maximum loss probability over all installed edges.
    max_loss: f64,
}

impl Topology {
    /// A topology of `n` machines with no edges.
    pub fn new(n: usize) -> Self {
        let mut t = Topology {
            n,
            repr: Repr::Dense {
                edges: vec![None; n * n],
                routes: vec![Route::default(); n * n],
            },
            version: 0,
            min_latency: None,
            max_loss: 0.0,
        };
        t.recompute();
        t
    }

    /// Fully connected mesh with identical edges — the common case, like
    /// the paper's single shared network. Stored uniformly: O(1) build
    /// and O(1) routing queries at any `n`, so clusters of thousands of
    /// machines cost nothing to wire up. Editing an edge afterwards
    /// (fault injection) materializes the explicit matrix.
    pub fn full_mesh(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology {
            n,
            repr: Repr::Uniform { params },
            version: 0,
            min_latency: None,
            max_loss: 0.0,
        };
        t.refresh_summary();
        t
    }

    /// A line `m0 - m1 - … - m(n-1)`: maximizes multi-hop routing, used by
    /// the communication-affinity experiments.
    pub fn line(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::new(n);
        for a in 0..n.saturating_sub(1) {
            t.set_edge_raw(MachineId(a as u16), MachineId((a + 1) as u16), params);
        }
        t.recompute();
        t
    }

    /// A ring: like [`Topology::line`] plus the closing edge, so every
    /// pair has two disjoint routes (shortest is taken; the other is the
    /// natural fail-over when an edge is cleared).
    pub fn ring(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::line(n, params);
        if n > 2 {
            t.set_edge(MachineId(0), MachineId((n - 1) as u16), params);
        }
        t
    }

    /// A star with `m0` as the hub: every inter-leaf message transits the
    /// hub (two hops), concentrating byte·hops the way a shared bus or
    /// central switch would.
    pub fn star(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::new(n);
        for a in 1..n {
            t.set_edge_raw(MachineId(0), MachineId(a as u16), params);
        }
        t.recompute();
        t
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology has no machines.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All machine ids.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.n as u16).map(MachineId)
    }

    /// Mutation counter: changes iff routing behavior may have changed.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Minimum fixed latency over all installed edges, `None` when the
    /// topology has no edges. The conservative parallel executor derives
    /// its lookahead from this.
    pub fn min_edge_latency(&self) -> Option<Duration> {
        self.min_latency
    }

    /// Maximum loss probability over all installed edges. Loss draws come
    /// from one global RNG whose draw order is execution-order dependent,
    /// so any lossy edge pins the cluster to the sequential path.
    pub fn max_edge_loss(&self) -> f64 {
        self.max_loss
    }

    /// The shared edge parameters when this topology is still a uniform
    /// complete mesh (never edited); `None` once materialized to dense.
    pub fn uniform(&self) -> Option<EdgeParams> {
        match &self.repr {
            Repr::Uniform { params } if self.n >= 2 => Some(*params),
            _ => None,
        }
    }

    fn idx(&self, a: MachineId, b: MachineId) -> usize {
        a.0 as usize * self.n + b.0 as usize
    }

    /// Convert a uniform mesh into the explicit matrix form so individual
    /// edges can be edited. O(n²) memory + O(n³) route recompute — only
    /// fault-injection paths (small clusters) take this.
    fn materialize(&mut self) {
        let Repr::Uniform { params } = self.repr else {
            return;
        };
        let n = self.n;
        let mut edges = vec![None; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges[a * n + b] = Some(params);
                }
            }
        }
        self.repr = Repr::Dense {
            edges,
            routes: vec![Route::default(); n * n],
        };
        self.recompute();
    }

    /// Install (or replace) the bidirectional edge `a — b` and recompute
    /// routes.
    pub fn set_edge(&mut self, a: MachineId, b: MachineId, params: EdgeParams) {
        self.materialize();
        self.set_edge_raw(a, b, params);
        self.recompute();
    }

    /// Install an edge without recomputing routes — bulk construction
    /// only; the caller must `recompute()` before routing.
    fn set_edge_raw(&mut self, a: MachineId, b: MachineId, params: EdgeParams) {
        assert!((a.0 as usize) < self.n && (b.0 as usize) < self.n && a != b);
        let (i, j) = (self.idx(a, b), self.idx(b, a));
        let Repr::Dense { edges, .. } = &mut self.repr else {
            // lint:allow(D004 host-side construction invariant, not a kernel handler: every caller materializes the dense repr first)
            unreachable!("set_edge_raw on uniform repr");
        };
        edges[i] = Some(params);
        edges[j] = Some(params);
    }

    /// Remove the edge `a — b` (network fault injection) and recompute.
    pub fn clear_edge(&mut self, a: MachineId, b: MachineId) {
        self.materialize();
        let (i, j) = (self.idx(a, b), self.idx(b, a));
        let Repr::Dense { edges, .. } = &mut self.repr else {
            // lint:allow(D004 host-side construction invariant, not a kernel handler: materialize() above just installed the dense repr)
            unreachable!("materialize left uniform repr");
        };
        edges[i] = None;
        edges[j] = None;
        self.recompute();
    }

    /// Direct edge parameters between `a` and `b`, if adjacent.
    pub fn edge(&self, a: MachineId, b: MachineId) -> Option<EdgeParams> {
        match &self.repr {
            Repr::Uniform { params } => (a != b).then_some(*params),
            Repr::Dense { edges, .. } => edges[self.idx(a, b)],
        }
    }

    /// Recompute routes (dense) and refresh the edge summary + version.
    fn recompute(&mut self) {
        if let Repr::Dense { edges, routes } = &mut self.repr {
            Self::recompute_dense(self.n, edges, routes);
        }
        self.refresh_summary();
    }

    fn refresh_summary(&mut self) {
        self.version += 1;
        match &self.repr {
            Repr::Uniform { params } => {
                self.min_latency = (self.n >= 2).then_some(params.latency);
                self.max_loss = if self.n >= 2 { params.loss } else { 0.0 };
            }
            Repr::Dense { edges, .. } => {
                let mut min = None;
                let mut loss = 0.0f64;
                for e in edges.iter().flatten() {
                    min = Some(match min {
                        None => e.latency,
                        Some(m) if e.latency < m => e.latency,
                        Some(m) => m,
                    });
                    if e.loss > loss {
                        loss = e.loss;
                    }
                }
                self.min_latency = min;
                self.max_loss = loss;
            }
        }
    }

    /// Floyd–Warshall over fixed latency; ties broken towards fewer hops
    /// then lower intermediate index, keeping routes deterministic.
    fn recompute_dense(n: usize, edges: &[Option<EdgeParams>], routes: &mut [Route]) {
        const INF: u64 = u64::MAX / 4;
        let mut dist = vec![INF; n * n];
        let mut next: Vec<Option<usize>> = vec![None; n * n];
        for a in 0..n {
            dist[a * n + a] = 0;
            for b in 0..n {
                if let Some(e) = edges[a * n + b] {
                    dist[a * n + b] = e.latency.as_micros();
                    next[a * n + b] = Some(b);
                }
            }
        }
        for k in 0..n {
            for a in 0..n {
                if dist[a * n + k] == INF {
                    continue;
                }
                for b in 0..n {
                    let through = dist[a * n + k].saturating_add(dist[k * n + b]);
                    if through < dist[a * n + b] {
                        dist[a * n + b] = through;
                        next[a * n + b] = next[a * n + k];
                    }
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                let mut route = Route {
                    edges: Vec::new(),
                    reachable: a == b,
                };
                if a != b && next[a * n + b].is_some() {
                    route.reachable = true;
                    let mut cur = a;
                    // Paths are at most n-1 edges; guard against cycles anyway.
                    for _ in 0..n {
                        if cur == b {
                            break;
                        }
                        let Some(step) = next[cur * n + b] else {
                            route.reachable = false;
                            break;
                        };
                        route.edges.push((cur, step));
                        cur = step;
                    }
                    if cur != b {
                        route.reachable = false;
                        route.edges.clear();
                    }
                }
                routes[a * n + b] = route;
            }
        }
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: MachineId, b: MachineId) -> bool {
        match &self.repr {
            Repr::Uniform { .. } => (a.0 as usize) < self.n && (b.0 as usize) < self.n,
            Repr::Dense { routes, .. } => routes[self.idx(a, b)].reachable,
        }
    }

    /// Number of edges on the route `a → b` (0 for `a == b`).
    pub fn hops(&self, a: MachineId, b: MachineId) -> usize {
        match &self.repr {
            Repr::Uniform { .. } => usize::from(a != b),
            Repr::Dense { routes, .. } => routes[self.idx(a, b)].edges.len(),
        }
    }

    /// Total transit time and combined loss probability for a frame of
    /// `bytes` on the route `a → b`, or `None` if unreachable.
    pub fn transit(&self, a: MachineId, b: MachineId, bytes: usize) -> Option<(Duration, f64)> {
        match &self.repr {
            Repr::Uniform { params } => {
                if (a.0 as usize) >= self.n || (b.0 as usize) >= self.n {
                    return None;
                }
                if a == b {
                    // Matches the dense self-route: empty edge list.
                    return Some((Duration::ZERO, 0.0));
                }
                Some((params.transit(bytes), params.loss))
            }
            Repr::Dense { edges, routes } => {
                let route = &routes[self.idx(a, b)];
                if !route.reachable {
                    return None;
                }
                let mut total = Duration::ZERO;
                let mut survive = 1.0f64;
                for &(x, y) in &route.edges {
                    // A route referencing a missing edge means the routing
                    // table is stale; report the pair unreachable instead of
                    // aborting.
                    let e = edges[x * self.n + y]?;
                    total += e.transit(bytes);
                    survive *= 1.0 - e.loss;
                }
                Some((total, 1.0 - survive))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    #[test]
    fn mesh_is_single_hop() {
        let t = Topology::full_mesh(4, EdgeParams::default());
        for a in 0..4u16 {
            for b in 0..4u16 {
                if a != b {
                    assert_eq!(t.hops(m(a), m(b)), 1);
                    assert!(t.reachable(m(a), m(b)));
                }
            }
        }
        assert_eq!(t.hops(m(2), m(2)), 0);
    }

    #[test]
    fn line_routes_multi_hop() {
        let t = Topology::line(5, EdgeParams::default());
        assert_eq!(t.hops(m(0), m(4)), 4);
        assert_eq!(t.hops(m(1), m(3)), 2);
        let (d1, _) = t.transit(m(0), m(1), 100).unwrap();
        let (d4, _) = t.transit(m(0), m(4), 100).unwrap();
        assert_eq!(d4.as_micros(), d1.as_micros() * 4);
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        // 0 -1ms- 1 -1ms- 2, plus a 10ms direct 0-2 edge: route must go via 1.
        let mut t = Topology::new(3);
        let fast = EdgeParams {
            latency: Duration::from_millis(1),
            ns_per_byte: 0,
            loss: 0.0,
        };
        let slow = EdgeParams {
            latency: Duration::from_millis(10),
            ns_per_byte: 0,
            loss: 0.0,
        };
        t.set_edge(m(0), m(1), fast);
        t.set_edge(m(1), m(2), fast);
        t.set_edge(m(0), m(2), slow);
        assert_eq!(t.hops(m(0), m(2)), 2);
        let (d, _) = t.transit(m(0), m(2), 0).unwrap();
        assert_eq!(d, Duration::from_millis(2));
    }

    #[test]
    fn ring_offers_alternate_route() {
        let mut t = Topology::ring(5, EdgeParams::default());
        assert_eq!(t.hops(m(0), m(4)), 1, "closing edge is the short way");
        t.clear_edge(m(0), m(4));
        assert_eq!(t.hops(m(0), m(4)), 4, "falls back around the ring");
        assert!(t.reachable(m(0), m(4)));
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::star(4, EdgeParams::default());
        assert_eq!(t.hops(m(1), m(3)), 2);
        assert_eq!(t.hops(m(0), m(3)), 1);
    }

    #[test]
    fn partition_is_unreachable() {
        let mut t = Topology::line(3, EdgeParams::default());
        t.clear_edge(m(1), m(2));
        assert!(!t.reachable(m(0), m(2)));
        assert!(t.transit(m(0), m(2), 10).is_none());
        assert!(t.reachable(m(0), m(1)));
    }

    #[test]
    fn transit_scales_with_bytes() {
        let t = Topology::full_mesh(
            2,
            EdgeParams {
                latency: Duration::ZERO,
                ns_per_byte: 1000,
                loss: 0.0,
            },
        );
        let (d, _) = t.transit(m(0), m(1), 1024).unwrap();
        assert_eq!(d, Duration::from_micros(1024));
    }

    #[test]
    fn loss_combines_across_hops() {
        let e = EdgeParams {
            latency: Duration::ZERO,
            ns_per_byte: 0,
            loss: 0.5,
        };
        let t = Topology::line(3, e);
        let (_, loss) = t.transit(m(0), m(2), 0).unwrap();
        assert!((loss - 0.75).abs() < 1e-9);
    }

    #[test]
    fn self_route() {
        let t = Topology::full_mesh(2, EdgeParams::default());
        assert!(t.reachable(m(0), m(0)));
        let (d, l) = t.transit(m(0), m(0), 100).unwrap();
        assert_eq!(d, Duration::ZERO);
        assert_eq!(l, 0.0);
    }

    /// The uniform representation must answer every routing query exactly
    /// like a dense mesh built edge-by-edge.
    #[test]
    fn uniform_matches_materialized_mesh() {
        let params = EdgeParams {
            latency: Duration::from_micros(120),
            ns_per_byte: 300,
            loss: 0.25,
        };
        let uni = Topology::full_mesh(6, params);
        assert!(uni.uniform().is_some());
        let mut dense = Topology::full_mesh(6, params);
        // Editing any edge (even rewriting it identically) materializes.
        dense.set_edge(m(0), m(1), params);
        assert!(dense.uniform().is_none());
        for a in 0..6u16 {
            for b in 0..6u16 {
                assert_eq!(uni.reachable(m(a), m(b)), dense.reachable(m(a), m(b)));
                assert_eq!(uni.hops(m(a), m(b)), dense.hops(m(a), m(b)));
                let (du, lu) = uni.transit(m(a), m(b), 64).unwrap();
                let (dd, ld) = dense.transit(m(a), m(b), 64).unwrap();
                assert_eq!(du, dd);
                assert!((lu - ld).abs() < 1e-12);
            }
        }
        assert_eq!(uni.min_edge_latency(), dense.min_edge_latency());
        assert!((uni.max_edge_loss() - dense.max_edge_loss()).abs() < 1e-12);
    }

    /// Clearing an edge on a uniform mesh materializes and reroutes.
    #[test]
    fn uniform_materializes_on_clear() {
        let mut t = Topology::full_mesh(4, EdgeParams::default());
        let v0 = t.version();
        t.clear_edge(m(0), m(1));
        assert!(t.version() > v0, "edits bump the version");
        assert!(t.uniform().is_none());
        assert_eq!(t.hops(m(0), m(1)), 2, "reroutes around the severed edge");
        assert!(t.reachable(m(0), m(1)));
    }

    /// Edge summaries track the extremes over installed edges.
    #[test]
    fn edge_summaries() {
        assert_eq!(Topology::new(3).min_edge_latency(), None);
        let mut t = Topology::line(3, EdgeParams::default());
        assert_eq!(t.min_edge_latency(), Some(Duration::from_micros(500)));
        assert_eq!(t.max_edge_loss(), 0.0);
        t.set_edge(
            m(0),
            m(2),
            EdgeParams {
                latency: Duration::from_micros(40),
                ns_per_byte: 0,
                loss: 0.125,
            },
        );
        assert_eq!(t.min_edge_latency(), Some(Duration::from_micros(40)));
        assert!((t.max_edge_loss() - 0.125).abs() < 1e-12);
        // A single-machine "mesh" has no edges at all.
        assert_eq!(
            Topology::full_mesh(1, EdgeParams::default()).min_edge_latency(),
            None
        );
    }
}
