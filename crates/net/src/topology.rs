//! Cluster topology and routing.
//!
//! Machines are vertices; bidirectional edges carry latency, a per-byte
//! transmission cost and an independent loss probability. Frames follow
//! precomputed shortest-latency paths, so a message "possibly travels
//! through intermediate processors" (§1) — which is exactly what makes
//! moving a process closer to a resource reduce system-wide traffic
//! (experiment E10).

use demos_types::{Duration, MachineId};

/// Parameters of one bidirectional edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeParams {
    /// Fixed propagation + switching latency per frame.
    pub latency: Duration,
    /// Transmission cost per byte, in nanoseconds (1000 ns/B ≈ 1 MB/s).
    pub ns_per_byte: u64,
    /// Probability that a frame traversing this edge is lost.
    pub loss: f64,
}

impl Default for EdgeParams {
    fn default() -> Self {
        // Roughly a few-Mbit/s local network of early-80s vintage: 500 us
        // switching latency, ~2 MB/s, lossless unless configured otherwise.
        EdgeParams {
            latency: Duration::from_micros(500),
            ns_per_byte: 500,
            loss: 0.0,
        }
    }
}

impl EdgeParams {
    /// A fast, lossless LAN edge (useful in unit tests).
    pub fn fast() -> Self {
        EdgeParams {
            latency: Duration::from_micros(50),
            ns_per_byte: 50,
            loss: 0.0,
        }
    }

    /// Time for a frame of `bytes` to traverse this edge.
    pub fn transit(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_micros((self.ns_per_byte * bytes as u64) / 1000)
    }
}

/// A route between two machines, precomputed.
#[derive(Clone, Debug, Default)]
struct Route {
    /// Edges along the path, as `(from, to)` indices; empty for self-routes
    /// or unreachable pairs.
    edges: Vec<(usize, usize)>,
    /// Total fixed latency along the path.
    reachable: bool,
}

/// The cluster graph with all-pairs shortest routes.
///
/// Machines are identified by dense [`MachineId`]s `0..n`.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    /// Adjacency matrix of edges (`None` = no direct edge). Symmetric.
    edges: Vec<Option<EdgeParams>>,
    /// All-pairs routes, recomputed on change.
    routes: Vec<Route>,
}

impl Topology {
    /// A topology of `n` machines with no edges.
    pub fn new(n: usize) -> Self {
        let mut t = Topology {
            n,
            edges: vec![None; n * n],
            routes: vec![Route::default(); n * n],
        };
        t.recompute();
        t
    }

    /// Fully connected mesh with identical edges — the common case, like
    /// the paper's single shared network. Edges are installed in bulk
    /// with a single route recomputation: recomputing per edge (O(n³)
    /// each) made building an n-machine mesh O(n⁵), which dominated every
    /// large-cluster benchmark's setup.
    pub fn full_mesh(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                t.set_edge_raw(MachineId(a as u16), MachineId(b as u16), params);
            }
        }
        t.recompute();
        t
    }

    /// A line `m0 - m1 - … - m(n-1)`: maximizes multi-hop routing, used by
    /// the communication-affinity experiments.
    pub fn line(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::new(n);
        for a in 0..n.saturating_sub(1) {
            t.set_edge_raw(MachineId(a as u16), MachineId((a + 1) as u16), params);
        }
        t.recompute();
        t
    }

    /// A ring: like [`Topology::line`] plus the closing edge, so every
    /// pair has two disjoint routes (shortest is taken; the other is the
    /// natural fail-over when an edge is cleared).
    pub fn ring(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::line(n, params);
        if n > 2 {
            t.set_edge(MachineId(0), MachineId((n - 1) as u16), params);
        }
        t
    }

    /// A star with `m0` as the hub: every inter-leaf message transits the
    /// hub (two hops), concentrating byte·hops the way a shared bus or
    /// central switch would.
    pub fn star(n: usize, params: EdgeParams) -> Self {
        let mut t = Topology::new(n);
        for a in 1..n {
            t.set_edge_raw(MachineId(0), MachineId(a as u16), params);
        }
        t.recompute();
        t
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology has no machines.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All machine ids.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.n as u16).map(MachineId)
    }

    fn idx(&self, a: MachineId, b: MachineId) -> usize {
        a.0 as usize * self.n + b.0 as usize
    }

    /// Install (or replace) the bidirectional edge `a — b` and recompute
    /// routes.
    pub fn set_edge(&mut self, a: MachineId, b: MachineId, params: EdgeParams) {
        self.set_edge_raw(a, b, params);
        self.recompute();
    }

    /// Install an edge without recomputing routes — bulk construction
    /// only; the caller must `recompute()` before routing.
    fn set_edge_raw(&mut self, a: MachineId, b: MachineId, params: EdgeParams) {
        assert!((a.0 as usize) < self.n && (b.0 as usize) < self.n && a != b);
        let (i, j) = (self.idx(a, b), self.idx(b, a));
        self.edges[i] = Some(params);
        self.edges[j] = Some(params);
    }

    /// Remove the edge `a — b` (network fault injection) and recompute.
    pub fn clear_edge(&mut self, a: MachineId, b: MachineId) {
        let (i, j) = (self.idx(a, b), self.idx(b, a));
        self.edges[i] = None;
        self.edges[j] = None;
        self.recompute();
    }

    /// Direct edge parameters between `a` and `b`, if adjacent.
    pub fn edge(&self, a: MachineId, b: MachineId) -> Option<EdgeParams> {
        self.edges[self.idx(a, b)]
    }

    /// Floyd–Warshall over fixed latency; ties broken towards fewer hops
    /// then lower intermediate index, keeping routes deterministic.
    fn recompute(&mut self) {
        let n = self.n;
        const INF: u64 = u64::MAX / 4;
        let mut dist = vec![INF; n * n];
        let mut next: Vec<Option<usize>> = vec![None; n * n];
        for a in 0..n {
            dist[a * n + a] = 0;
            for b in 0..n {
                if let Some(e) = self.edges[a * n + b] {
                    dist[a * n + b] = e.latency.as_micros();
                    next[a * n + b] = Some(b);
                }
            }
        }
        for k in 0..n {
            for a in 0..n {
                if dist[a * n + k] == INF {
                    continue;
                }
                for b in 0..n {
                    let through = dist[a * n + k].saturating_add(dist[k * n + b]);
                    if through < dist[a * n + b] {
                        dist[a * n + b] = through;
                        next[a * n + b] = next[a * n + k];
                    }
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                let mut route = Route {
                    edges: Vec::new(),
                    reachable: a == b,
                };
                if a != b && next[a * n + b].is_some() {
                    route.reachable = true;
                    let mut cur = a;
                    // Paths are at most n-1 edges; guard against cycles anyway.
                    for _ in 0..n {
                        if cur == b {
                            break;
                        }
                        let Some(step) = next[cur * n + b] else {
                            route.reachable = false;
                            break;
                        };
                        route.edges.push((cur, step));
                        cur = step;
                    }
                    if cur != b {
                        route.reachable = false;
                        route.edges.clear();
                    }
                }
                self.routes[a * n + b] = route;
            }
        }
    }

    /// Whether `b` is reachable from `a`.
    pub fn reachable(&self, a: MachineId, b: MachineId) -> bool {
        self.routes[self.idx(a, b)].reachable
    }

    /// Number of edges on the route `a → b` (0 for `a == b`).
    pub fn hops(&self, a: MachineId, b: MachineId) -> usize {
        self.routes[self.idx(a, b)].edges.len()
    }

    /// Total transit time and combined loss probability for a frame of
    /// `bytes` on the route `a → b`, or `None` if unreachable.
    pub fn transit(&self, a: MachineId, b: MachineId, bytes: usize) -> Option<(Duration, f64)> {
        let route = &self.routes[self.idx(a, b)];
        if !route.reachable {
            return None;
        }
        let mut total = Duration::ZERO;
        let mut survive = 1.0f64;
        for &(x, y) in &route.edges {
            // A route referencing a missing edge means the routing table is
            // stale; report the pair unreachable instead of aborting.
            let e = self.edges[x * self.n + y]?;
            total += e.transit(bytes);
            survive *= 1.0 - e.loss;
        }
        Some((total, 1.0 - survive))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    #[test]
    fn mesh_is_single_hop() {
        let t = Topology::full_mesh(4, EdgeParams::default());
        for a in 0..4u16 {
            for b in 0..4u16 {
                if a != b {
                    assert_eq!(t.hops(m(a), m(b)), 1);
                    assert!(t.reachable(m(a), m(b)));
                }
            }
        }
        assert_eq!(t.hops(m(2), m(2)), 0);
    }

    #[test]
    fn line_routes_multi_hop() {
        let t = Topology::line(5, EdgeParams::default());
        assert_eq!(t.hops(m(0), m(4)), 4);
        assert_eq!(t.hops(m(1), m(3)), 2);
        let (d1, _) = t.transit(m(0), m(1), 100).unwrap();
        let (d4, _) = t.transit(m(0), m(4), 100).unwrap();
        assert_eq!(d4.as_micros(), d1.as_micros() * 4);
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        // 0 -1ms- 1 -1ms- 2, plus a 10ms direct 0-2 edge: route must go via 1.
        let mut t = Topology::new(3);
        let fast = EdgeParams {
            latency: Duration::from_millis(1),
            ns_per_byte: 0,
            loss: 0.0,
        };
        let slow = EdgeParams {
            latency: Duration::from_millis(10),
            ns_per_byte: 0,
            loss: 0.0,
        };
        t.set_edge(m(0), m(1), fast);
        t.set_edge(m(1), m(2), fast);
        t.set_edge(m(0), m(2), slow);
        assert_eq!(t.hops(m(0), m(2)), 2);
        let (d, _) = t.transit(m(0), m(2), 0).unwrap();
        assert_eq!(d, Duration::from_millis(2));
    }

    #[test]
    fn ring_offers_alternate_route() {
        let mut t = Topology::ring(5, EdgeParams::default());
        assert_eq!(t.hops(m(0), m(4)), 1, "closing edge is the short way");
        t.clear_edge(m(0), m(4));
        assert_eq!(t.hops(m(0), m(4)), 4, "falls back around the ring");
        assert!(t.reachable(m(0), m(4)));
    }

    #[test]
    fn star_routes_through_hub() {
        let t = Topology::star(4, EdgeParams::default());
        assert_eq!(t.hops(m(1), m(3)), 2);
        assert_eq!(t.hops(m(0), m(3)), 1);
    }

    #[test]
    fn partition_is_unreachable() {
        let mut t = Topology::line(3, EdgeParams::default());
        t.clear_edge(m(1), m(2));
        assert!(!t.reachable(m(0), m(2)));
        assert!(t.transit(m(0), m(2), 10).is_none());
        assert!(t.reachable(m(0), m(1)));
    }

    #[test]
    fn transit_scales_with_bytes() {
        let t = Topology::full_mesh(
            2,
            EdgeParams {
                latency: Duration::ZERO,
                ns_per_byte: 1000,
                loss: 0.0,
            },
        );
        let (d, _) = t.transit(m(0), m(1), 1024).unwrap();
        assert_eq!(d, Duration::from_micros(1024));
    }

    #[test]
    fn loss_combines_across_hops() {
        let e = EdgeParams {
            latency: Duration::ZERO,
            ns_per_byte: 0,
            loss: 0.5,
        };
        let t = Topology::line(3, e);
        let (_, loss) = t.transit(m(0), m(2), 0).unwrap();
        assert!((loss - 0.75).abs() < 1e-9);
    }

    #[test]
    fn self_route() {
        let t = Topology::full_mesh(2, EdgeParams::default());
        assert!(t.reachable(m(0), m(0)));
        let (d, l) = t.transit(m(0), m(0), 100).unwrap();
        assert_eq!(d, Duration::ZERO);
        assert_eq!(l, 0.0);
    }
}
