//! Link-level frames.
//!
//! The reliable channel exchanges two kinds of frames: `Data` (a sequenced,
//! encoded [`demos_types::Message`]) and `Ack` (cumulative). Frame overhead
//! is part of the byte counts the network statistics report, so frames have
//! a byte-exact encoding like everything else.
//!
//! `Data` frames additionally carry [`FrameMeta`] — the correlation id of
//! the message inside and a retransmission marker — *alongside* the wire
//! image: the metadata is never encoded, never counted in [`Frame::wire_size`],
//! and never compared, so tracing cannot change any measured byte count.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{self, Wire, WireError};
use demos_types::CorrId;

/// Out-of-band per-frame metadata for the observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Correlation id of the encoded message ([`CorrId::NONE`] when the
    /// sender predates tracing, e.g. hand-built test frames).
    pub corr: CorrId,
    /// Whether this transmission is a retransmission of an earlier frame.
    pub retx: bool,
}

impl FrameMeta {
    /// Metadata for a first transmission of a message with id `corr`.
    pub fn new(corr: CorrId) -> FrameMeta {
        FrameMeta { corr, retx: false }
    }

    /// The same frame, marked as a retransmission.
    pub fn retransmission(self) -> FrameMeta {
        FrameMeta { retx: true, ..self }
    }
}

/// A link-level frame between two machines.
#[derive(Clone, Eq, Debug)]
pub enum Frame {
    /// Sequenced message bytes.
    Data {
        /// Channel sequence number (per source-destination pair).
        seq: u64,
        /// One encoded [`demos_types::Message`].
        payload: Bytes,
        /// Tracing metadata carried alongside the wire image (not
        /// encoded, not part of equality or [`Frame::wire_size`]).
        meta: FrameMeta,
    },
    /// Cumulative acknowledgement: every `Data` with `seq <= cum` has been
    /// received.
    Ack {
        /// Highest in-order sequence received.
        cum: u64,
    },
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Frame::Data {
                    seq: a, payload: p, ..
                },
                Frame::Data {
                    seq: b, payload: q, ..
                },
            ) => a == b && p == q,
            (Frame::Ack { cum: a }, Frame::Ack { cum: b }) => a == b,
            (Frame::Data { .. }, Frame::Ack { .. }) | (Frame::Ack { .. }, Frame::Data { .. }) => {
                false
            }
        }
    }
}

impl Frame {
    /// A data frame with default (untraced) metadata — test fixtures and
    /// callers that predate tracing.
    pub fn data(seq: u64, payload: Bytes) -> Frame {
        Frame::Data {
            seq,
            payload,
            meta: FrameMeta::default(),
        }
    }

    /// Size the physical network charges for this frame.
    pub fn wire_size(&self) -> usize {
        match self {
            Frame::Data { payload, .. } => 1 + 8 + 4 + payload.len(),
            Frame::Ack { .. } => 1 + 8,
        }
    }

    /// Whether this is an `Ack`.
    pub fn is_ack(&self) -> bool {
        matches!(self, Frame::Ack { .. })
    }

    /// This frame's tracing metadata (`None` for acks).
    pub fn meta(&self) -> Option<FrameMeta> {
        match self {
            Frame::Data { meta, .. } => Some(*meta),
            Frame::Ack { .. } => None,
        }
    }
}

impl Wire for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Data { seq, payload, .. } => {
                buf.put_u8(1);
                buf.put_u64(*seq);
                wire::put_bytes(buf, payload);
            }
            Frame::Ack { cum } => {
                buf.put_u8(2);
                buf.put_u64(*cum);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 9 {
            return Err(WireError::Truncated("Frame"));
        }
        let tag = buf.get_u8();
        match tag {
            1 => {
                let seq = buf.get_u64();
                let payload = wire::get_bytes(buf, "Frame.payload", 1 << 20)?;
                Ok(Frame::Data {
                    seq,
                    payload,
                    meta: FrameMeta::default(),
                })
            }
            2 => Ok(Frame::Ack { cum: buf.get_u64() }),
            _ => Err(WireError::BadTag {
                what: "Frame",
                tag: u16::from(tag),
            }),
        }
    }

    fn wire_len(&self) -> usize {
        self.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::wire::roundtrip;
    use demos_types::MachineId;

    #[test]
    fn data_roundtrip() {
        let f = Frame::data(42, Bytes::from_static(b"msg"));
        assert_eq!(roundtrip(&f).unwrap(), f);
        assert_eq!(f.wire_size(), f.to_bytes().len());
        assert!(!f.is_ack());
    }

    #[test]
    fn ack_roundtrip() {
        let f = Frame::Ack { cum: 7 };
        assert_eq!(roundtrip(&f).unwrap(), f);
        assert_eq!(f.wire_size(), 9);
        assert!(f.is_ack());
    }

    #[test]
    fn bad_tag() {
        let mut b = Bytes::from_static(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(Frame::decode(&mut b).is_err());
    }

    #[test]
    fn meta_rides_outside_the_wire_image() {
        let corr = CorrId::new(MachineId(2), 9);
        let tagged = Frame::Data {
            seq: 1,
            payload: Bytes::from_static(b"msg"),
            meta: FrameMeta::new(corr).retransmission(),
        };
        let plain = Frame::data(1, Bytes::from_static(b"msg"));
        // Same wire bytes, same size, equal — metadata is out of band.
        assert_eq!(tagged.to_bytes(), plain.to_bytes());
        assert_eq!(tagged.wire_size(), plain.wire_size());
        assert_eq!(tagged, plain);
        assert_eq!(tagged.meta(), Some(FrameMeta { corr, retx: true }));
        // Decoding yields default metadata: re-attachment is the
        // receiver's transport's job.
        assert_eq!(
            roundtrip(&tagged).unwrap().meta(),
            Some(FrameMeta::default())
        );
        assert_eq!(Frame::Ack { cum: 0 }.meta(), None);
    }
}
