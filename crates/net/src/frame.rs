//! Link-level frames.
//!
//! The reliable channel exchanges two kinds of frames: `Data` (a sequenced,
//! encoded [`demos_types::Message`]) and `Ack` (cumulative). Frame overhead
//! is part of the byte counts the network statistics report, so frames have
//! a byte-exact encoding like everything else.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{self, Wire, WireError};

/// A link-level frame between two machines.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Frame {
    /// Sequenced message bytes.
    Data {
        /// Channel sequence number (per source-destination pair).
        seq: u64,
        /// One encoded [`demos_types::Message`].
        payload: Bytes,
    },
    /// Cumulative acknowledgement: every `Data` with `seq <= cum` has been
    /// received.
    Ack {
        /// Highest in-order sequence received.
        cum: u64,
    },
}

impl Frame {
    /// Size the physical network charges for this frame.
    pub fn wire_size(&self) -> usize {
        match self {
            Frame::Data { payload, .. } => 1 + 8 + 4 + payload.len(),
            Frame::Ack { .. } => 1 + 8,
        }
    }

    /// Whether this is an `Ack`.
    pub fn is_ack(&self) -> bool {
        matches!(self, Frame::Ack { .. })
    }
}

impl Wire for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Data { seq, payload } => {
                buf.put_u8(1);
                buf.put_u64(*seq);
                wire::put_bytes(buf, payload);
            }
            Frame::Ack { cum } => {
                buf.put_u8(2);
                buf.put_u64(*cum);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 9 {
            return Err(WireError::Truncated("Frame"));
        }
        let tag = buf.get_u8();
        match tag {
            1 => {
                let seq = buf.get_u64();
                let payload = wire::get_bytes(buf, "Frame.payload", 1 << 20)?;
                Ok(Frame::Data { seq, payload })
            }
            2 => Ok(Frame::Ack { cum: buf.get_u64() }),
            _ => Err(WireError::BadTag { what: "Frame", tag: tag as u16 }),
        }
    }

    fn wire_len(&self) -> usize {
        self.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::wire::roundtrip;

    #[test]
    fn data_roundtrip() {
        let f = Frame::Data { seq: 42, payload: Bytes::from_static(b"msg") };
        assert_eq!(roundtrip(&f).unwrap(), f);
        assert_eq!(f.wire_size(), f.to_bytes().len());
        assert!(!f.is_ack());
    }

    #[test]
    fn ack_roundtrip() {
        let f = Frame::Ack { cum: 7 };
        assert_eq!(roundtrip(&f).unwrap(), f);
        assert_eq!(f.wire_size(), 9);
        assert!(f.is_ack());
    }

    #[test]
    fn bad_tag() {
        let mut b = Bytes::from_static(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(Frame::decode(&mut b).is_err());
    }
}
