//! Link-level frames.
//!
//! The reliable channel exchanges two kinds of frames: `Data` (a sequenced,
//! encoded [`demos_types::Message`]) and `Ack` (cumulative). Frame overhead
//! is part of the byte counts the network statistics report, so frames have
//! a byte-exact encoding like everything else.
//!
//! `Data` frames additionally carry [`FrameMeta`] — the correlation id of
//! the message inside and a retransmission marker — *alongside* the wire
//! image: the metadata is never encoded, never counted in [`Frame::wire_size`],
//! and never compared, so tracing cannot change any measured byte count.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use demos_types::wire::{self, Wire, WireError};
use demos_types::CorrId;

/// Out-of-band per-frame metadata for the observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrameMeta {
    /// Correlation id of the encoded message ([`CorrId::NONE`] when the
    /// sender predates tracing, e.g. hand-built test frames).
    pub corr: CorrId,
    /// Whether this transmission is a retransmission of an earlier frame.
    pub retx: bool,
}

impl FrameMeta {
    /// Metadata for a first transmission of a message with id `corr`.
    pub fn new(corr: CorrId) -> FrameMeta {
        FrameMeta { corr, retx: false }
    }

    /// The same frame, marked as a retransmission.
    pub fn retransmission(self) -> FrameMeta {
        FrameMeta { retx: true, ..self }
    }
}

/// A link-level frame between two machines.
#[derive(Clone, Eq, Debug)]
pub enum Frame {
    /// Sequenced message bytes.
    Data {
        /// Connection incarnation of the sender's channel to the
        /// destination. Bumped each time the channel is reset (peer
        /// reboot); a frame whose epoch differs from the receiver's is a
        /// straggler from a dead incarnation and must not enter the
        /// current sequence space.
        epoch: u32,
        /// Channel sequence number (per source-destination pair).
        seq: u64,
        /// One encoded [`demos_types::Message`].
        payload: Bytes,
        /// Tracing metadata carried alongside the wire image (not
        /// encoded, not part of equality or [`Frame::wire_size`]).
        meta: FrameMeta,
    },
    /// Cumulative acknowledgement: every `Data` with `seq <= cum` has been
    /// received.
    Ack {
        /// Connection incarnation this ack belongs to (see
        /// [`Frame::Data::epoch`]).
        epoch: u32,
        /// Highest in-order sequence received.
        cum: u64,
    },
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Frame::Data {
                    epoch: ea,
                    seq: a,
                    payload: p,
                    ..
                },
                Frame::Data {
                    epoch: eb,
                    seq: b,
                    payload: q,
                    ..
                },
            ) => ea == eb && a == b && p == q,
            (Frame::Ack { epoch: ea, cum: a }, Frame::Ack { epoch: eb, cum: b }) => {
                ea == eb && a == b
            }
            (Frame::Data { .. }, Frame::Ack { .. }) | (Frame::Ack { .. }, Frame::Data { .. }) => {
                false
            }
        }
    }
}

impl Frame {
    /// A data frame on the first connection incarnation with default
    /// (untraced) metadata — test fixtures and callers that predate
    /// tracing.
    pub fn data(seq: u64, payload: Bytes) -> Frame {
        Frame::Data {
            epoch: 0,
            seq,
            payload,
            meta: FrameMeta::default(),
        }
    }

    /// Size the physical network charges for this frame.
    pub fn wire_size(&self) -> usize {
        match self {
            Frame::Data { payload, .. } => 1 + 4 + 8 + 4 + payload.len(),
            Frame::Ack { .. } => 1 + 4 + 8,
        }
    }

    /// Whether this is an `Ack`.
    pub fn is_ack(&self) -> bool {
        matches!(self, Frame::Ack { .. })
    }

    /// The connection incarnation this frame was sent on.
    pub fn epoch(&self) -> u32 {
        match self {
            Frame::Data { epoch, .. } | Frame::Ack { epoch, .. } => *epoch,
        }
    }

    /// This frame's tracing metadata (`None` for acks).
    pub fn meta(&self) -> Option<FrameMeta> {
        match self {
            Frame::Data { meta, .. } => Some(*meta),
            Frame::Ack { .. } => None,
        }
    }
}

impl Wire for Frame {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Frame::Data {
                epoch,
                seq,
                payload,
                ..
            } => {
                buf.put_u8(1);
                buf.put_u32(*epoch);
                buf.put_u64(*seq);
                wire::put_bytes(buf, payload);
            }
            Frame::Ack { epoch, cum } => {
                buf.put_u8(2);
                buf.put_u32(*epoch);
                buf.put_u64(*cum);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < 13 {
            return Err(WireError::Truncated("Frame"));
        }
        let tag = buf.get_u8();
        match tag {
            1 => {
                let epoch = buf.get_u32();
                let seq = buf.get_u64();
                let payload = wire::get_bytes(buf, "Frame.payload", 1 << 20)?;
                Ok(Frame::Data {
                    epoch,
                    seq,
                    payload,
                    meta: FrameMeta::default(),
                })
            }
            2 => Ok(Frame::Ack {
                epoch: buf.get_u32(),
                cum: buf.get_u64(),
            }),
            _ => Err(WireError::BadTag {
                what: "Frame",
                tag: u16::from(tag),
            }),
        }
    }

    fn wire_len(&self) -> usize {
        self.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::wire::roundtrip;
    use demos_types::MachineId;

    #[test]
    fn data_roundtrip() {
        let f = Frame::data(42, Bytes::from_static(b"msg"));
        assert_eq!(roundtrip(&f).unwrap(), f);
        assert_eq!(f.wire_size(), f.to_bytes().len());
        assert!(!f.is_ack());
    }

    #[test]
    fn ack_roundtrip() {
        let f = Frame::Ack { epoch: 3, cum: 7 };
        assert_eq!(roundtrip(&f).unwrap(), f);
        assert_eq!(f.wire_size(), 13);
        assert!(f.is_ack());
    }

    #[test]
    fn bad_tag() {
        let mut b = Bytes::from_static(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(Frame::decode(&mut b).is_err());
    }

    #[test]
    fn epoch_is_part_of_the_wire_image() {
        let old = Frame::data(1, Bytes::from_static(b"msg"));
        let new = Frame::Data {
            epoch: 1,
            seq: 1,
            payload: Bytes::from_static(b"msg"),
            meta: FrameMeta::default(),
        };
        assert_ne!(old, new, "same seq on different incarnations differs");
        assert_ne!(old.to_bytes(), new.to_bytes());
        assert_eq!(roundtrip(&new).unwrap(), new);
    }

    #[test]
    fn meta_rides_outside_the_wire_image() {
        let corr = CorrId::new(MachineId(2), 9);
        let tagged = Frame::Data {
            epoch: 0,
            seq: 1,
            payload: Bytes::from_static(b"msg"),
            meta: FrameMeta::new(corr).retransmission(),
        };
        let plain = Frame::data(1, Bytes::from_static(b"msg"));
        // Same wire bytes, same size, equal — metadata is out of band.
        assert_eq!(tagged.to_bytes(), plain.to_bytes());
        assert_eq!(tagged.wire_size(), plain.wire_size());
        assert_eq!(tagged, plain);
        assert_eq!(tagged.meta(), Some(FrameMeta { corr, retx: true }));
        // Decoding yields default metadata: re-attachment is the
        // receiver's transport's job.
        assert_eq!(
            roundtrip(&tagged).unwrap().meta(),
            Some(FrameMeta::default())
        );
        assert_eq!(Frame::Ack { epoch: 0, cum: 0 }.meta(), None);
    }
}
