//! The simulated physical network.
//!
//! [`SimNetwork`] owns a deterministic arrival heap: every transmitted
//! frame is assigned an arrival time from the topology (fixed latency plus
//! per-byte cost along the route) and possibly dropped by a seeded coin
//! flip. The discrete-event loop in `demos-sim` interleaves these arrivals
//! with kernel-local events.
//!
//! The network also keeps the traffic accounting the paper's evaluation is
//! built on: frames, bytes, and byte·hops (bytes weighted by route length —
//! the "system-wide communication traffic" that moving a process closer to
//! its favourite resource is supposed to reduce, §1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use demos_types::{MachineId, Time};

use crate::frame::Frame;
use crate::topology::Topology;

/// Receiver-side transport events surfaced to the physical layer's
/// statistics via [`Phys::note`]. The network cannot observe these
/// itself — deduplication and ack bookkeeping happen inside
/// [`crate::channel::Endpoint`] after delivery — so the endpoint
/// reports them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetEvent {
    /// An ack arrived that acknowledged nothing new.
    DupAck,
    /// An already-delivered (or already-buffered) data frame was dropped
    /// by the dedup window.
    DedupDrop,
    /// A frame from a previous connection incarnation arrived after the
    /// channel was reset (its sender or receiver rebooted while it was in
    /// flight) and was discarded before it could pollute the fresh
    /// sequence space.
    StaleEpochDrop,
}

/// Where the transport hands frames to the physical layer.
pub trait Phys {
    /// Transmit `frame` from `src` towards `dst`, departing at `now`.
    fn transmit(&mut self, now: Time, src: MachineId, dst: MachineId, frame: Frame);

    /// Record a receiver-side transport event (statistics only; default
    /// is to ignore it, so test doubles need not care).
    fn note(&mut self, _ev: NetEvent) {}
}

/// Traffic statistics, cumulative since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the physical layer.
    pub frames_sent: u64,
    /// Frames lost (loss probability, crashed endpoint, or partition).
    pub frames_dropped: u64,
    /// Frames that reached their destination.
    pub frames_delivered: u64,
    /// Data frames sent.
    pub data_frames: u64,
    /// Ack frames sent.
    pub ack_frames: u64,
    /// Data frames that were retransmissions (marked via frame metadata
    /// by the sending endpoint).
    pub retransmit_frames: u64,
    /// Acks received that acknowledged nothing new ([`NetEvent::DupAck`]).
    pub dup_acks: u64,
    /// Data frames suppressed by receiver dedup ([`NetEvent::DedupDrop`]).
    pub dedup_drops: u64,
    /// Frames discarded as stragglers from a dead connection incarnation
    /// ([`NetEvent::StaleEpochDrop`]).
    pub stale_epoch_drops: u64,
    /// Total bytes handed to the physical layer.
    pub bytes_sent: u64,
    /// Bytes × route hops, summed over sent frames: total load placed on
    /// the network fabric.
    pub byte_hops: u64,
}

impl NetStats {
    /// Field-wise sum: folds one shard's traffic counters into the total.
    /// Every field is a cumulative count, so merging across disjoint
    /// shards never double-counts.
    pub fn merge(&mut self, o: &NetStats) {
        self.frames_sent += o.frames_sent;
        self.frames_dropped += o.frames_dropped;
        self.frames_delivered += o.frames_delivered;
        self.data_frames += o.data_frames;
        self.ack_frames += o.ack_frames;
        self.retransmit_frames += o.retransmit_frames;
        self.dup_acks += o.dup_acks;
        self.dedup_drops += o.dedup_drops;
        self.stale_epoch_drops += o.stale_epoch_drops;
        self.bytes_sent += o.bytes_sent;
        self.byte_hops += o.byte_hops;
    }
}

/// Total-order tie-break key for frames arriving at the same instant.
///
/// Sequentially executed clusters key every send `{era, 0, 0, 0, n}` with a
/// single global counter `n` — byte-identical to the original scalar
/// sequence number. The sharded executor cannot reproduce a global counter
/// without serializing, so inside a parallel run segment it keys sends
/// *canonically*: `{era, send-time, phase, sender, per-sender index}`,
/// which every shard can compute locally and which reproduces the
/// sequential transmission order (sends from distinct machines at the same
/// instant happen in ascending machine order within a scheduler phase).
/// The `era` field — bumped around every parallel segment — makes the two
/// key styles comparable: later eras sort later, matching real time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SendKey {
    /// Coarse epoch: bumped entering and leaving every parallel segment.
    pub era: u32,
    /// Send instant in microseconds (0 in sequential style).
    pub at_us: u64,
    /// Scheduler phase of the send: frame delivery < timers < cpu.
    pub phase: u8,
    /// Transmitting machine (0 in sequential style).
    pub sender: u16,
    /// Per-sender (canonical) or global (sequential) send index.
    pub idx: u64,
}

impl SendKey {
    /// Sequential-style key: ordered purely by the global counter `idx`.
    pub fn sequential(era: u32, idx: u64) -> Self {
        SendKey {
            era,
            at_us: 0,
            phase: 0,
            sender: 0,
            idx,
        }
    }

    /// Canonical shard-computable key.
    pub fn canonical(era: u32, at_us: u64, phase: u8, sender: u16, idx: u64) -> Self {
        SendKey {
            era,
            at_us,
            phase,
            sender,
            idx,
        }
    }
}

/// One scheduled frame arrival. Public so the sharded executor can drain
/// the in-flight set, partition it across shards, and restore leftovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight {
    /// Arrival instant.
    pub at: Time,
    /// Tie-break key among same-instant arrivals.
    pub key: SendKey,
    /// Transmitting machine.
    pub src: MachineId,
    /// Destination machine.
    pub dst: MachineId,
    /// The frame itself.
    pub frame: Frame,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic simulated network.
#[derive(Debug)]
pub struct SimNetwork {
    topo: Topology,
    rng: StdRng,
    heap: BinaryHeap<Reverse<InFlight>>,
    seq: u64,
    era: u32,
    stats: NetStats,
    down: Vec<bool>,
    /// Edges severed by [`SimNetwork::partition`], with the parameters to
    /// restore on heal. Keyed by the (low, high) machine pair.
    severed: std::collections::BTreeMap<(u16, u16), crate::topology::EdgeParams>,
}

impl SimNetwork {
    /// Build over `topo`, with all loss decisions drawn from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let n = topo.len();
        SimNetwork {
            topo,
            rng: StdRng::seed_from_u64(seed),
            heap: BinaryHeap::new(),
            seq: 0,
            era: 0,
            stats: NetStats::default(),
            down: vec![false; n],
            severed: std::collections::BTreeMap::new(),
        }
    }

    /// The topology (for hop counts etc.).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (fault injection); routes recompute on edit.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Mark a machine crashed: every frame to or from it is dropped.
    pub fn set_down(&mut self, m: MachineId, down: bool) {
        if let Some(slot) = self.down.get_mut(m.0 as usize) {
            *slot = down;
        }
    }

    /// Whether a machine is marked crashed.
    pub fn is_down(&self, m: MachineId) -> bool {
        self.down.get(m.0 as usize).copied().unwrap_or(true)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Earliest pending arrival, if any.
    pub fn next_arrival_at(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(a)| a.at)
    }

    /// Pop the earliest arrival if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, MachineId, MachineId, Frame)> {
        if self.heap.peek().is_some_and(|Reverse(a)| a.at <= now) {
            let Reverse(a) = self.heap.pop()?;
            // A machine that crashed after the frame departed still loses it.
            if self.is_down(a.dst) || self.is_down(a.src) {
                self.stats.frames_dropped += 1;
                return self.pop_due(now);
            }
            self.stats.frames_delivered += 1;
            Some((a.at, a.src, a.dst, a.frame))
        } else {
            None
        }
    }

    /// Number of frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    // ------------------------------------------------------------------
    // Sharded-executor hooks
    // ------------------------------------------------------------------

    /// Current send-key era.
    pub fn era(&self) -> u32 {
        self.era
    }

    /// Advance to a fresh era and return it. The sharded executor bumps
    /// the era entering *and* leaving every parallel segment so that
    /// sequential-style keys issued between segments order after the
    /// canonical keys issued inside them.
    pub fn bump_era(&mut self) -> u32 {
        self.era += 1;
        self.era
    }

    /// Remove and return every in-flight frame (used to hand the pending
    /// set to per-shard heaps). Order is unspecified; the `(at, key)`
    /// ordering is total, so re-heaping reproduces delivery order.
    pub fn drain_in_flight(&mut self) -> Vec<InFlight> {
        self.heap.drain().map(|Reverse(a)| a).collect()
    }

    /// Return frames (typically shard-segment leftovers) to the in-flight
    /// heap.
    pub fn restore_in_flight(&mut self, items: impl IntoIterator<Item = InFlight>) {
        for a in items {
            self.heap.push(Reverse(a));
        }
    }

    /// Fold per-shard traffic statistics into the cumulative totals.
    pub fn absorb_stats(&mut self, shard: NetStats) {
        self.stats.merge(&shard);
    }

    // ------------------------------------------------------------------
    // Partition injection
    // ------------------------------------------------------------------

    fn pair_key(a: MachineId, b: MachineId) -> (u16, u16) {
        (a.0.min(b.0), a.0.max(b.0))
    }

    /// Sever the direct edge `a — b`, remembering its parameters for
    /// [`SimNetwork::heal`]. Frames already in flight between machine
    /// pairs that the cut disconnects are lost (counted as drops) — a
    /// partition takes the wire with it, it does not hold packets in
    /// escrow. Returns `false` (and changes nothing) if the machines are
    /// not directly connected.
    pub fn partition(&mut self, a: MachineId, b: MachineId) -> bool {
        let Some(params) = self.topo.edge(a, b) else {
            return false;
        };
        self.severed.insert(Self::pair_key(a, b), params);
        self.topo.clear_edge(a, b);
        self.purge_unreachable();
        true
    }

    /// Restore an edge severed by [`SimNetwork::partition`] with its
    /// original parameters. Returns `false` if the pair was not severed.
    pub fn heal(&mut self, a: MachineId, b: MachineId) -> bool {
        let Some(params) = self.severed.remove(&Self::pair_key(a, b)) else {
            return false;
        };
        self.topo.set_edge(a, b, params);
        true
    }

    /// Restore every severed edge; returns how many were healed.
    pub fn heal_all(&mut self) -> usize {
        let severed: Vec<(u16, u16)> = self.severed.keys().copied().collect();
        for (a, b) in &severed {
            let Some(params) = self.severed.remove(&(*a, *b)) else {
                continue;
            };
            self.topo.set_edge(MachineId(*a), MachineId(*b), params);
        }
        severed.len()
    }

    /// Machine pairs currently partitioned via [`SimNetwork::partition`].
    pub fn partitions(&self) -> Vec<(MachineId, MachineId)> {
        self.severed
            .keys()
            .map(|&(a, b)| (MachineId(a), MachineId(b)))
            .collect()
    }

    /// Drop in-flight frames whose endpoints the topology can no longer
    /// connect (after a partition disconnected them mid-transit).
    fn purge_unreachable(&mut self) {
        let topo = &self.topo;
        let before = self.heap.len();
        let kept: Vec<Reverse<InFlight>> = self
            .heap
            .drain()
            .filter(|Reverse(a)| topo.reachable(a.src, a.dst))
            .collect();
        self.stats.frames_dropped += (before - kept.len()) as u64;
        self.heap = kept.into_iter().collect();
    }
}

impl Phys for SimNetwork {
    fn transmit(&mut self, now: Time, src: MachineId, dst: MachineId, frame: Frame) {
        let size = frame.wire_size();
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += size as u64;
        if frame.is_ack() {
            self.stats.ack_frames += 1;
        } else {
            self.stats.data_frames += 1;
            if frame.meta().is_some_and(|m| m.retx) {
                self.stats.retransmit_frames += 1;
            }
        }
        if self.is_down(src) || self.is_down(dst) {
            self.stats.frames_dropped += 1;
            return;
        }
        let Some((transit, loss)) = self.topo.transit(src, dst, size) else {
            self.stats.frames_dropped += 1;
            return;
        };
        self.stats.byte_hops += (size * self.topo.hops(src, dst)) as u64;
        if loss > 0.0 && self.rng.gen_bool(loss.min(1.0)) {
            self.stats.frames_dropped += 1;
            return;
        }
        self.seq += 1;
        self.heap.push(Reverse(InFlight {
            at: now + transit,
            key: SendKey::sequential(self.era, self.seq),
            src,
            dst,
            frame,
        }));
    }

    fn note(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::DupAck => self.stats.dup_acks += 1,
            NetEvent::DedupDrop => self.stats.dedup_drops += 1,
            NetEvent::StaleEpochDrop => self.stats.stale_epoch_drops += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::EdgeParams;
    use bytes::Bytes;
    use demos_types::Duration;

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    fn data(seq: u64) -> Frame {
        Frame::data(seq, Bytes::from_static(b"payload"))
    }

    #[test]
    fn frames_arrive_after_transit() {
        let topo = Topology::full_mesh(
            2,
            EdgeParams {
                latency: Duration::from_micros(100),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.next_arrival_at(), Some(Time(100)));
        assert!(net.pop_due(Time(50)).is_none());
        let (at, src, dst, f) = net.pop_due(Time(100)).unwrap();
        assert_eq!((at, src, dst), (Time(100), m(0), m(1)));
        assert_eq!(f, data(1));
        assert_eq!(net.stats().frames_delivered, 1);
    }

    #[test]
    fn deterministic_ordering_for_simultaneous_arrivals() {
        let topo = Topology::full_mesh(
            3,
            EdgeParams {
                latency: Duration::from_micros(10),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(1), m(0), data(7));
        net.transmit(Time(0), m(2), m(0), data(8));
        // Same arrival instant: transmission order breaks the tie.
        let (_, src1, _, _) = net.pop_due(Time(10)).unwrap();
        let (_, src2, _, _) = net.pop_due(Time(10)).unwrap();
        assert_eq!((src1, src2), (m(1), m(2)));
    }

    #[test]
    fn loss_is_seeded_and_counted() {
        let topo = Topology::full_mesh(
            2,
            EdgeParams {
                latency: Duration::ZERO,
                ns_per_byte: 0,
                loss: 0.5,
            },
        );
        let mut a = SimNetwork::new(topo.clone(), 42);
        let mut b = SimNetwork::new(topo, 42);
        for i in 0..100 {
            a.transmit(Time(i), m(0), m(1), data(i));
            b.transmit(Time(i), m(0), m(1), data(i));
        }
        assert_eq!(a.stats(), b.stats(), "same seed, same drops");
        assert!(a.stats().frames_dropped > 10 && a.stats().frames_dropped < 90);
        assert_eq!(a.stats().frames_sent, 100);
    }

    #[test]
    fn crashed_machine_blackholes() {
        let topo = Topology::full_mesh(2, EdgeParams::fast());
        let mut net = SimNetwork::new(topo, 1);
        net.set_down(m(1), true);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.stats().frames_dropped, 1);
        assert_eq!(net.in_flight(), 0);
        net.set_down(m(1), false);
        net.transmit(Time(0), m(0), m(1), data(2));
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn crash_after_departure_still_drops() {
        let topo = Topology::full_mesh(2, EdgeParams::fast());
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        net.set_down(m(1), true);
        assert!(net.pop_due(Time(1_000_000)).is_none());
        assert_eq!(net.stats().frames_dropped, 1);
    }

    #[test]
    fn byte_hops_accounts_route_length() {
        let topo = Topology::line(
            3,
            EdgeParams {
                latency: Duration::from_micros(1),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let mut net = SimNetwork::new(topo, 1);
        let f = data(1);
        let size = f.wire_size() as u64;
        net.transmit(Time(0), m(0), m(2), f);
        assert_eq!(net.stats().byte_hops, size * 2);
    }

    #[test]
    fn unreachable_is_dropped() {
        let topo = Topology::new(2); // no edges
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.stats().frames_dropped, 1);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let params = EdgeParams {
            latency: Duration::from_micros(100),
            ns_per_byte: 7,
            loss: 0.0,
        };
        let mut net = SimNetwork::new(Topology::full_mesh(2, params), 1);
        assert!(net.partition(m(0), m(1)));
        assert_eq!(net.partitions(), vec![(m(0), m(1))]);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.stats().frames_dropped, 1);

        assert!(net.heal(m(1), m(0)), "pair key is order-insensitive");
        assert!(net.partitions().is_empty());
        assert_eq!(net.topology().edge(m(0), m(1)), Some(params));
        net.transmit(Time(0), m(0), m(1), data(2));
        assert!(net.pop_due(Time(1_000_000)).is_some());
        // Double-heal and partitioning a missing edge are no-ops.
        assert!(!net.heal(m(0), m(1)));
        let mut empty = SimNetwork::new(Topology::new(2), 1);
        assert!(!empty.partition(m(0), m(1)));
    }

    #[test]
    fn partition_drops_in_flight_frames() {
        let mut net = SimNetwork::new(Topology::full_mesh(3, EdgeParams::fast()), 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        net.transmit(Time(0), m(1), m(2), data(2));
        assert_eq!(net.in_flight(), 2);
        // Cutting 0—1 leaves both pairs reachable via m2 in a mesh; the
        // in-flight frames survive.
        assert!(net.partition(m(0), m(1)));
        assert_eq!(net.in_flight(), 2);
        // Cutting 0—2 isolates m0 entirely: the 0→1 frame is lost.
        assert!(net.partition(m(0), m(2)));
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.stats().frames_dropped, 1);
        let sent = net.stats().frames_sent;
        let s = net.stats();
        assert_eq!(
            sent,
            s.frames_delivered + s.frames_dropped + net.in_flight() as u64,
            "frame conservation survives the purge"
        );
        assert_eq!(net.heal_all(), 2);
        net.transmit(Time(100), m(0), m(1), data(3));
        assert_eq!(net.in_flight(), 2);
    }
}
