//! The simulated physical network.
//!
//! [`SimNetwork`] owns a deterministic arrival heap: every transmitted
//! frame is assigned an arrival time from the topology (fixed latency plus
//! per-byte cost along the route) and possibly dropped by a seeded coin
//! flip. The discrete-event loop in `demos-sim` interleaves these arrivals
//! with kernel-local events.
//!
//! The network also keeps the traffic accounting the paper's evaluation is
//! built on: frames, bytes, and byte·hops (bytes weighted by route length —
//! the "system-wide communication traffic" that moving a process closer to
//! its favourite resource is supposed to reduce, §1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use demos_types::{MachineId, Time};

use crate::frame::Frame;
use crate::topology::Topology;

/// Receiver-side transport events surfaced to the physical layer's
/// statistics via [`Phys::note`]. The network cannot observe these
/// itself — deduplication and ack bookkeeping happen inside
/// [`crate::channel::Endpoint`] after delivery — so the endpoint
/// reports them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetEvent {
    /// An ack arrived that acknowledged nothing new.
    DupAck,
    /// An already-delivered (or already-buffered) data frame was dropped
    /// by the dedup window.
    DedupDrop,
}

/// Where the transport hands frames to the physical layer.
pub trait Phys {
    /// Transmit `frame` from `src` towards `dst`, departing at `now`.
    fn transmit(&mut self, now: Time, src: MachineId, dst: MachineId, frame: Frame);

    /// Record a receiver-side transport event (statistics only; default
    /// is to ignore it, so test doubles need not care).
    fn note(&mut self, _ev: NetEvent) {}
}

/// Traffic statistics, cumulative since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the physical layer.
    pub frames_sent: u64,
    /// Frames lost (loss probability, crashed endpoint, or partition).
    pub frames_dropped: u64,
    /// Frames that reached their destination.
    pub frames_delivered: u64,
    /// Data frames sent.
    pub data_frames: u64,
    /// Ack frames sent.
    pub ack_frames: u64,
    /// Data frames that were retransmissions (marked via frame metadata
    /// by the sending endpoint).
    pub retransmit_frames: u64,
    /// Acks received that acknowledged nothing new ([`NetEvent::DupAck`]).
    pub dup_acks: u64,
    /// Data frames suppressed by receiver dedup ([`NetEvent::DedupDrop`]).
    pub dedup_drops: u64,
    /// Total bytes handed to the physical layer.
    pub bytes_sent: u64,
    /// Bytes × route hops, summed over sent frames: total load placed on
    /// the network fabric.
    pub byte_hops: u64,
}

/// One scheduled frame arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Arrival {
    at: Time,
    seq: u64,
    src: MachineId,
    dst: MachineId,
    frame: Frame,
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic simulated network.
#[derive(Debug)]
pub struct SimNetwork {
    topo: Topology,
    rng: StdRng,
    heap: BinaryHeap<Reverse<Arrival>>,
    seq: u64,
    stats: NetStats,
    down: Vec<bool>,
}

impl SimNetwork {
    /// Build over `topo`, with all loss decisions drawn from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let n = topo.len();
        SimNetwork {
            topo,
            rng: StdRng::seed_from_u64(seed),
            heap: BinaryHeap::new(),
            seq: 0,
            stats: NetStats::default(),
            down: vec![false; n],
        }
    }

    /// The topology (for hop counts etc.).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (fault injection); routes recompute on edit.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Mark a machine crashed: every frame to or from it is dropped.
    pub fn set_down(&mut self, m: MachineId, down: bool) {
        if let Some(slot) = self.down.get_mut(m.0 as usize) {
            *slot = down;
        }
    }

    /// Whether a machine is marked crashed.
    pub fn is_down(&self, m: MachineId) -> bool {
        self.down.get(m.0 as usize).copied().unwrap_or(true)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Earliest pending arrival, if any.
    pub fn next_arrival_at(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(a)| a.at)
    }

    /// Pop the earliest arrival if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, MachineId, MachineId, Frame)> {
        if self.heap.peek().is_some_and(|Reverse(a)| a.at <= now) {
            let Reverse(a) = self.heap.pop().expect("peeked");
            // A machine that crashed after the frame departed still loses it.
            if self.is_down(a.dst) || self.is_down(a.src) {
                self.stats.frames_dropped += 1;
                return self.pop_due(now);
            }
            self.stats.frames_delivered += 1;
            Some((a.at, a.src, a.dst, a.frame))
        } else {
            None
        }
    }

    /// Number of frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }
}

impl Phys for SimNetwork {
    fn transmit(&mut self, now: Time, src: MachineId, dst: MachineId, frame: Frame) {
        let size = frame.wire_size();
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += size as u64;
        if frame.is_ack() {
            self.stats.ack_frames += 1;
        } else {
            self.stats.data_frames += 1;
            if frame.meta().is_some_and(|m| m.retx) {
                self.stats.retransmit_frames += 1;
            }
        }
        if self.is_down(src) || self.is_down(dst) {
            self.stats.frames_dropped += 1;
            return;
        }
        let Some((transit, loss)) = self.topo.transit(src, dst, size) else {
            self.stats.frames_dropped += 1;
            return;
        };
        self.stats.byte_hops += (size * self.topo.hops(src, dst)) as u64;
        if loss > 0.0 && self.rng.gen_bool(loss.min(1.0)) {
            self.stats.frames_dropped += 1;
            return;
        }
        self.seq += 1;
        self.heap.push(Reverse(Arrival {
            at: now + transit,
            seq: self.seq,
            src,
            dst,
            frame,
        }));
    }

    fn note(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::DupAck => self.stats.dup_acks += 1,
            NetEvent::DedupDrop => self.stats.dedup_drops += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::EdgeParams;
    use bytes::Bytes;
    use demos_types::Duration;

    fn m(i: u16) -> MachineId {
        MachineId(i)
    }

    fn data(seq: u64) -> Frame {
        Frame::data(seq, Bytes::from_static(b"payload"))
    }

    #[test]
    fn frames_arrive_after_transit() {
        let topo = Topology::full_mesh(
            2,
            EdgeParams {
                latency: Duration::from_micros(100),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.next_arrival_at(), Some(Time(100)));
        assert!(net.pop_due(Time(50)).is_none());
        let (at, src, dst, f) = net.pop_due(Time(100)).unwrap();
        assert_eq!((at, src, dst), (Time(100), m(0), m(1)));
        assert_eq!(f, data(1));
        assert_eq!(net.stats().frames_delivered, 1);
    }

    #[test]
    fn deterministic_ordering_for_simultaneous_arrivals() {
        let topo = Topology::full_mesh(
            3,
            EdgeParams {
                latency: Duration::from_micros(10),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(1), m(0), data(7));
        net.transmit(Time(0), m(2), m(0), data(8));
        // Same arrival instant: transmission order breaks the tie.
        let (_, src1, _, _) = net.pop_due(Time(10)).unwrap();
        let (_, src2, _, _) = net.pop_due(Time(10)).unwrap();
        assert_eq!((src1, src2), (m(1), m(2)));
    }

    #[test]
    fn loss_is_seeded_and_counted() {
        let topo = Topology::full_mesh(
            2,
            EdgeParams {
                latency: Duration::ZERO,
                ns_per_byte: 0,
                loss: 0.5,
            },
        );
        let mut a = SimNetwork::new(topo.clone(), 42);
        let mut b = SimNetwork::new(topo, 42);
        for i in 0..100 {
            a.transmit(Time(i), m(0), m(1), data(i));
            b.transmit(Time(i), m(0), m(1), data(i));
        }
        assert_eq!(a.stats(), b.stats(), "same seed, same drops");
        assert!(a.stats().frames_dropped > 10 && a.stats().frames_dropped < 90);
        assert_eq!(a.stats().frames_sent, 100);
    }

    #[test]
    fn crashed_machine_blackholes() {
        let topo = Topology::full_mesh(2, EdgeParams::fast());
        let mut net = SimNetwork::new(topo, 1);
        net.set_down(m(1), true);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.stats().frames_dropped, 1);
        assert_eq!(net.in_flight(), 0);
        net.set_down(m(1), false);
        net.transmit(Time(0), m(0), m(1), data(2));
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn crash_after_departure_still_drops() {
        let topo = Topology::full_mesh(2, EdgeParams::fast());
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        net.set_down(m(1), true);
        assert!(net.pop_due(Time(1_000_000)).is_none());
        assert_eq!(net.stats().frames_dropped, 1);
    }

    #[test]
    fn byte_hops_accounts_route_length() {
        let topo = Topology::line(
            3,
            EdgeParams {
                latency: Duration::from_micros(1),
                ns_per_byte: 0,
                loss: 0.0,
            },
        );
        let mut net = SimNetwork::new(topo, 1);
        let f = data(1);
        let size = f.wire_size() as u64;
        net.transmit(Time(0), m(0), m(2), f);
        assert_eq!(net.stats().byte_hops, size * 2);
    }

    #[test]
    fn unreachable_is_dropped() {
        let topo = Topology::new(2); // no edges
        let mut net = SimNetwork::new(topo, 1);
        net.transmit(Time(0), m(0), m(1), data(1));
        assert_eq!(net.stats().frames_dropped, 1);
    }
}
