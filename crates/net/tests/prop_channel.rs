//! Property tests of the reliable channel: exactly-once, in-order
//! delivery under arbitrary loss, duplication and reordering injected at
//! the physical layer — the §2.1 guarantee ("any message sent will
//! eventually be delivered") must hold whenever the network is fair.

use bytes::Bytes;
use demos_net::{ChannelConfig, Endpoint, Frame, Phys};
use demos_types::{CorrId, Duration, MachineId, Time};
use proptest::prelude::*;

/// An adversarial physical layer: drops, duplicates and reorders frames
/// according to a script, but is fair (a frame offered repeatedly gets
/// through eventually because the script is finite).
struct Adversary {
    /// Pending frames per destination.
    queues: [Vec<(MachineId, Frame)>; 2],
    /// Script of (drop?, duplicate?) decisions, consumed round-robin.
    script: Vec<(bool, bool)>,
    cursor: usize,
}

impl Adversary {
    fn decision(&mut self) -> (bool, bool) {
        if self.script.is_empty() {
            return (false, false);
        }
        let d = self.script[self.cursor % self.script.len()];
        self.cursor += 1;
        // After one full pass the adversary plays fair so runs terminate.
        if self.cursor >= self.script.len() * 2 {
            return (false, false);
        }
        d
    }
}

impl Phys for Adversary {
    fn transmit(&mut self, _now: Time, src: MachineId, dst: MachineId, frame: Frame) {
        let (drop, dup) = self.decision();
        if drop {
            return;
        }
        self.queues[dst.0 as usize].push((src, frame.clone()));
        if dup {
            self.queues[dst.0 as usize].push((src, frame));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exactly_once_in_order_under_adversary(
        msgs in 1usize..40,
        script in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..64),
        reorder in any::<bool>(),
    ) {
        let cfg = ChannelConfig { rto: Duration::from_millis(5), window: 8, ..Default::default() };
        let mut a = Endpoint::new(MachineId(0), cfg);
        let mut b = Endpoint::new(MachineId(1), cfg);
        let mut phys = Adversary { queues: [Vec::new(), Vec::new()], script, cursor: 0 };

        for i in 0..msgs {
            let corr = CorrId::new(MachineId(0), i as u64 + 1);
            a.send(Time(0), MachineId(1), Bytes::from(vec![i as u8]), corr, &mut phys);
        }

        let mut delivered: Vec<u8> = Vec::new();
        let mut corrs: Vec<CorrId> = Vec::new();
        let mut now = Time(0);
        // Pump until quiescent; time advances so retransmissions fire.
        for _round in 0..10_000 {
            let empty = phys.queues[0].is_empty() && phys.queues[1].is_empty();
            if empty && a.quiescent() && delivered.len() == msgs {
                break;
            }
            // Deliver queued frames (optionally in reverse = reordering).
            let mut q1 = std::mem::take(&mut phys.queues[1]);
            if reorder {
                q1.reverse();
            }
            for (src, f) in q1 {
                for (corr, p) in b.on_frame(now, src, f, &mut phys) {
                    delivered.push(p[0]);
                    corrs.push(corr);
                }
            }
            let q0 = std::mem::take(&mut phys.queues[0]);
            for (src, f) in q0 {
                a.on_frame(now, src, f, &mut phys);
            }
            now += Duration::from_millis(1);
            a.on_timeout(now, &mut phys);
        }
        prop_assert_eq!(delivered.len(), msgs, "all messages delivered");
        let expect: Vec<u8> = (0..msgs as u8).collect();
        prop_assert_eq!(delivered, expect, "in order, exactly once");
        prop_assert!(a.quiescent());
        // Correlation ids survive loss, duplication, reordering and
        // retransmission, and arrive exactly once, in order.
        let expect_corrs: Vec<CorrId> =
            (0..msgs).map(|i| CorrId::new(MachineId(0), i as u64 + 1)).collect();
        prop_assert_eq!(corrs, expect_corrs, "corr ids delivered with their messages");
        // Transport health counters are consistent: dedup drops at the
        // receiver can only happen when frames were duplicated by the
        // adversary or retransmitted by the sender.
        let a_stats = a.channel_stats();
        let b_stats = b.channel_stats();
        prop_assert_eq!(a_stats.retransmits, a.retransmits());
        let dup_capable = phys.script.iter().any(|&(d, dup)| d || dup);
        if !dup_capable {
            prop_assert_eq!(a_stats.retransmits, 0, "clean network needs no retransmits");
            prop_assert_eq!(b_stats.dedup_drops, 0, "clean network has no duplicates");
        }
    }

    /// Sequence windows never confuse two independent peers.
    #[test]
    fn independent_peers_do_not_interfere(
        to_b in 1usize..20,
        to_c in 1usize..20,
    ) {
        struct Collect(Vec<(MachineId, MachineId, Frame)>);
        impl Phys for Collect {
            fn transmit(&mut self, _now: Time, src: MachineId, dst: MachineId, frame: Frame) {
                self.0.push((src, dst, frame));
            }
        }
        let cfg = ChannelConfig::default();
        let mut a = Endpoint::new(MachineId(0), cfg);
        let mut b = Endpoint::new(MachineId(1), cfg);
        let mut c = Endpoint::new(MachineId(2), cfg);
        let mut phys = Collect(Vec::new());
        for i in 0..to_b {
            a.send(Time(0), MachineId(1), Bytes::from(vec![1, i as u8]), CorrId::NONE, &mut phys);
        }
        for i in 0..to_c {
            a.send(Time(0), MachineId(2), Bytes::from(vec![2, i as u8]), CorrId::NONE, &mut phys);
        }
        let mut got_b = 0;
        let mut got_c = 0;
        for _ in 0..6 {
            for (src, dst, f) in std::mem::take(&mut phys.0) {
                match dst.0 {
                    1 => got_b += b.on_frame(Time(1), src, f, &mut phys).len(),
                    2 => got_c += c.on_frame(Time(1), src, f, &mut phys).len(),
                    _ => { a.on_frame(Time(1), src, f, &mut phys); }
                }
            }
        }
        prop_assert_eq!(got_b, to_b);
        prop_assert_eq!(got_c, to_c);
        prop_assert!(a.quiescent());
    }
}
