//! Fixture: D004 negative — graceful degradation in handler code;
//! unwraps confined to `#[cfg(test)]`.

pub fn deliver(queue: &mut Vec<u8>) -> Option<u8> {
    let Some(byte) = queue.pop() else {
        return None;
    };
    Some(byte)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = Some(3).unwrap();
        assert_eq!(v, 3);
    }
}
