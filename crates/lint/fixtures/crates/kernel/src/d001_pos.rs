//! Fixture: D001 positive — a hash-randomized map in a sim-visible crate.
//! Iteration order depends on the process-random hasher seed, so any state
//! derived from it diverges between identical-seed runs.

pub struct ForwardTable {
    entries: std::collections::HashMap<u32, u16>,
}
