//! D006 negative: the handler uses the graceful helper; no panic is
//! reachable.

pub struct Gate {
    pub seen: u64,
}

impl Gate {
    pub fn on_update(&mut self, raw: &[u8]) {
        let v = helper::decode_lenient(raw);
        self.seen = self.seen.wrapping_add(u64::from(v));
    }
}
