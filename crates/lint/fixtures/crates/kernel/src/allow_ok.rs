//! Fixture: a justified `lint:allow` suppresses the finding on the next
//! line and is counted, not reported.

pub fn epoch() -> std::time::Instant {
    // lint:allow(D002 fixture: this is the one sanctioned wall-clock read)
    std::time::Instant::now()
}
