//! Fixture: D003 positive — catch-all over a protocol enum swallows any
//! variant added later.

pub fn classify(m: &MigrateMsg) -> u8 {
    match m {
        MigrateMsg::Offer { .. } => 1,
        _ => 0,
    }
}
