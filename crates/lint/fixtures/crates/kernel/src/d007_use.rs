//! D007 consumer: wires `AreaSel::Resident` end to end (constructed and
//! matched outside the codec); never touches `Orphan`.

pub fn default_sel() -> AreaSel {
    AreaSel::Resident
}

pub fn cost(s: AreaSel) -> u32 {
    if let AreaSel::Resident = s {
        1
    } else {
        4
    }
}
