//! A `lint:allow` whose finding no longer exists: the engine must report
//! it as stale instead of silently keeping the suppression alive.

pub fn stamp(now: u64) -> u64 {
    // lint:allow(D002 fixture: stale — the wall-clock read was removed)
    now.wrapping_mul(2)
}
