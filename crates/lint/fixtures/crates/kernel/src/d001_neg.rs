//! Fixture: D001 negative — ordered map, deterministic iteration.

pub struct ForwardTable {
    entries: std::collections::BTreeMap<u32, u16>,
}
