//! Fixture: D003 negative — every variant is named; a new one is a
//! compile error at this match.

pub fn classify(m: &MigrateMsg) -> u8 {
    match m {
        MigrateMsg::Offer { .. } => 1,
        MigrateMsg::Accept { .. } => 2,
        MigrateMsg::Abort { .. } | MigrateMsg::Reject { .. } => 3,
    }
}

pub fn other_enums_may_use_wildcards(c: char) -> bool {
    match c {
        'a'..='z' => true,
        _ => false,
    }
}
