//! D006 positive: the handler itself is clean lexically (D004 sees
//! nothing here), but it calls across the crate boundary into a helper
//! that unwraps — the panic is reachable from the handler.

pub struct Router {
    pub seen: u64,
}

impl Router {
    pub fn on_control(&mut self, raw: &[u8]) {
        let v = helper::decode_strict(raw);
        self.seen = self.seen.wrapping_add(u64::from(v));
    }
}
