//! Fixture: D004 positive — a panicking unwrap in a message-handling path
//! turns one malformed packet into a dead kernel.

pub fn deliver(queue: &mut Vec<u8>) -> u8 {
    queue.pop().expect("queue is never empty")
}
