//! Fixture: D002 negative — virtual time only; entropy sources appear in
//! comments (SystemTime, thread_rng) but never as code.

pub fn stamp(now: demos_types::Time) -> u64 {
    now.as_micros()
}
