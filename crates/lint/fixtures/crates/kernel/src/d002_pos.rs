//! Fixture: D002 positive — wall-clock read inside simulation code.

pub fn stamp() -> std::time::Duration {
    let t = std::time::Instant::now();
    t.elapsed()
}
