//! D008 negative: the same cross-crate shape, but the callee is
//! deterministic.

pub struct Scheduler;

impl Scheduler {
    pub fn tick(&mut self, keys: &[u32]) -> u32 {
        tainted::ordered_sum(keys)
    }
}
