//! D008 positive: sim-visible code (crates/sim) calls into a
//! non-sim-visible crate whose function is iteration-order
//! nondeterministic. No lexical rule fires anywhere — only the
//! taint-propagation rule can see it.

pub struct Balancer;

impl Balancer {
    pub fn tick(&mut self, keys: &[u32]) -> u32 {
        tainted::order_sensitive_sum(keys)
    }
}
