//! A non-sim-visible crate: D001/D002 do not apply here lexically, so
//! these functions are invisible to the per-file rules — D008 must track
//! the taint through the call graph instead.

use std::collections::BTreeMap;
use std::collections::HashMap;

/// D008 positive taint source: hasher-ordered iteration.
pub fn order_sensitive_sum(keys: &[u32]) -> u32 {
    let mut m = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        m.insert(*k, i);
    }
    let mut total = 0u32;
    for v in m.values() {
        total = total.wrapping_add(*v as u32);
    }
    total
}

/// D008 negative: ordered iteration, no taint.
pub fn ordered_sum(keys: &[u32]) -> u32 {
    let mut m = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        m.insert(*k, i);
    }
    let mut total = 0u32;
    for v in m.values() {
        total = total.wrapping_add(*v as u32);
    }
    total
}
