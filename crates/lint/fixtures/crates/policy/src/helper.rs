//! Helpers outside the D004 crates: the lexical rule cannot see them,
//! the reachability rule (D006) must.

/// D006 positive target: panics on short input, and `Router::on_control`
/// (crates/kernel) reaches it.
pub fn decode_strict(raw: &[u8]) -> u32 {
    u32::from_le_bytes(raw[..4].try_into().unwrap())
}

/// D006 negative: same shape, degrades gracefully. No finding here.
pub fn decode_lenient(raw: &[u8]) -> u32 {
    match raw.get(..4).and_then(|b| b.try_into().ok()) {
        Some(b) => u32::from_le_bytes(b),
        None => 0,
    }
}
