//! A justified `lint:allow` on a semantic rule: the D009 finding below
//! is suppressed (and the allow is counted as used, not stale).

pub struct Tap {
    pub frames: u64,
}

impl Tap {
    pub fn count(&mut self, f: &Frame) {
        // lint:allow(D009 fixture: counting taps never touches the payload)
        if let Frame::Data { .. } = f {
            self.frames += 1;
        }
    }
}
