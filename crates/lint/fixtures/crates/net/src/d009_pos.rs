//! D009 positive: destructures a payload-bearing frame without ever
//! consulting the connection epoch — a straggler from a dead incarnation
//! would land in the live sequence space.

pub struct Sink {
    pub last_seq: u64,
}

impl Sink {
    pub fn absorb(&mut self, f: &Frame) {
        if let Frame::Data { seq } = f {
            self.last_seq = *seq;
        }
    }
}
