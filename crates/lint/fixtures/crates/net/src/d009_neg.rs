//! D009 negative: the same destructuring, but gated on the connection
//! epoch — stale incarnations are filtered before the payload is used.

pub struct Gate {
    pub epoch: u16,
    pub last_seq: u64,
}

impl Gate {
    pub fn absorb(&mut self, f: &Frame, frame_epoch: u16) {
        if let Frame::Data { seq } = f {
            if frame_epoch == self.epoch {
                self.last_seq = *seq;
            }
        }
    }
}
