//! Fixture: D005 positive — a truncating cast in codec code silently
//! wraps values above u16::MAX.

pub fn tag_of(v: u32) -> u16 {
    v as u16
}
