//! D007 fixture: a wire enum whose codec (this file) covers every
//! variant — which must NOT count as wiring. `Resident` is constructed
//! and matched by the kernel consumer; `Orphan` is neither.

pub enum AreaSel {
    Resident,
    Orphan,
}

impl AreaSel {
    pub fn to_u8(&self) -> u8 {
        match *self {
            AreaSel::Resident => 0,
            AreaSel::Orphan => 1,
        }
    }

    pub fn from_u8(v: u8) -> AreaSel {
        if v == 1 {
            AreaSel::Orphan
        } else {
            AreaSel::Resident
        }
    }
}
