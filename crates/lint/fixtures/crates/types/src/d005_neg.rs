//! Fixture: D005 negative — widening is infallible via `From`; narrowing
//! must go through `try_from` and surface the failure.

pub fn tag_of(v: u8) -> u16 {
    u16::from(v)
}

pub fn narrow(v: u32) -> Result<u16, core::num::TryFromIntError> {
    u16::try_from(v)
}
