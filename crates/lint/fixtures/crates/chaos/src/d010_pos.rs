//! D010 positives: a lock-order inversion between `forward` and
//! `backward`, a blocking channel send under a held guard, and a nested
//! re-acquisition of the same mutex.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Driver {
    pub slots: Mutex<Vec<u32>>,
    pub log: Mutex<Vec<u32>>,
}

impl Driver {
    pub fn forward(&self, v: u32) {
        let mut s = self.slots.lock().unwrap();
        let mut l = self.log.lock().unwrap();
        s.push(v);
        l.push(v);
    }

    pub fn backward(&self, v: u32) {
        let mut l = self.log.lock().unwrap();
        let mut s = self.slots.lock().unwrap();
        l.push(v);
        s.push(v);
    }

    pub fn publish(&self, tx: &Sender<u32>) {
        let _guard = self.slots.lock().unwrap();
        tx.send(1).ok();
    }

    pub fn double_count(&self) -> usize {
        let a = self.slots.lock().unwrap();
        let b = self.slots.lock().unwrap();
        a.len() + b.len()
    }
}
