//! D010 negatives: a consistent lock order across functions, a channel
//! send only after the guard's scope closes, and `try_send` (non-blocking)
//! under a guard.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Pool {
    pub queue: Mutex<Vec<u32>>,
    pub trace: Mutex<Vec<u32>>,
}

impl Pool {
    pub fn enqueue(&self, v: u32) {
        let mut q = self.queue.lock().unwrap();
        let mut t = self.trace.lock().unwrap();
        q.push(v);
        t.push(v);
    }

    pub fn audit(&self) -> usize {
        let q = self.queue.lock().unwrap();
        let t = self.trace.lock().unwrap();
        q.len() + t.len()
    }

    pub fn offer(&self, tx: &Sender<u32>) {
        let depth = {
            let q = self.queue.lock().unwrap();
            q.len()
        };
        if depth > 0 {
            tx.send(1).ok();
        }
    }

    pub fn nudge(&self, tx: &Sender<u32>) {
        let _guard = self.queue.lock().unwrap();
        tx.try_send(1).ok();
    }
}
