//! Fixture-driven tests: one positive and one negative input per rule,
//! laid out as a miniature workspace under `fixtures/` so the path-based
//! scoping of [`demos_lint::scope_for`] is exercised exactly as in a real
//! run. The CLI test drives the compiled `demos-lint` binary end to end.

use std::path::{Path, PathBuf};

use demos_lint::{analyze_source, check_workspace, scope_for, Code, Diagnostic};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Analyze one fixture with the scope its path would get in a real
/// workspace walk.
fn run_fixture(rel: &str) -> (Vec<Diagnostic>, usize) {
    let src = std::fs::read_to_string(fixtures_root().join(rel)).expect("fixture exists");
    analyze_source(rel, &src, scope_for(rel))
}

fn sole_code(rel: &str) -> Diagnostic {
    let (diags, _) = run_fixture(rel);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one finding in {rel}: {diags:?}"
    );
    diags.into_iter().next().expect("checked len")
}

fn assert_clean(rel: &str) {
    let (diags, _) = run_fixture(rel);
    assert!(diags.is_empty(), "expected no findings in {rel}: {diags:?}");
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_flags_hash_collections_in_sim_visible_code() {
    let d = sole_code("crates/kernel/src/d001_pos.rs");
    assert_eq!(d.code, Code::D001);
    assert_eq!(d.line, 6, "span should point at the HashMap field: {d:?}");
}

#[test]
fn d001_accepts_ordered_collections() {
    assert_clean("crates/kernel/src/d001_neg.rs");
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_flags_wall_clock_reads() {
    let d = sole_code("crates/kernel/src/d002_pos.rs");
    assert_eq!(d.code, Code::D002);
    assert_eq!(d.line, 4, "span should point at Instant::now(): {d:?}");
}

#[test]
fn d002_accepts_virtual_time_and_entropy_in_comments() {
    assert_clean("crates/kernel/src/d002_neg.rs");
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_flags_catch_all_over_protocol_enum() {
    let d = sole_code("crates/kernel/src/d003_pos.rs");
    assert_eq!(d.code, Code::D003);
    assert_eq!(d.line, 7, "span should point at the `_ =>` arm: {d:?}");
}

#[test]
fn d003_accepts_exhaustive_matches_and_unwatched_enums() {
    assert_clean("crates/kernel/src/d003_neg.rs");
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_flags_panicking_paths_in_handlers() {
    let d = sole_code("crates/kernel/src/d004_pos.rs");
    assert_eq!(d.code, Code::D004);
    assert_eq!(d.line, 5, "span should point at .expect(): {d:?}");
}

#[test]
fn d004_accepts_graceful_degradation_and_test_only_unwraps() {
    assert_clean("crates/kernel/src/d004_neg.rs");
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_flags_truncating_casts_in_codecs() {
    let d = sole_code("crates/types/src/d005_pos.rs");
    assert_eq!(d.code, Code::D005);
    assert_eq!(d.line, 5, "span should point at `as u16`: {d:?}");
}

#[test]
fn d005_accepts_checked_conversions() {
    assert_clean("crates/types/src/d005_neg.rs");
}

// ---------------------------------------------------- lint:allow escape

#[test]
fn allow_directive_suppresses_and_is_counted() {
    let (diags, suppressed) = run_fixture("crates/kernel/src/allow_ok.rs");
    assert!(
        diags.is_empty(),
        "allow should suppress the finding: {diags:?}"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn allow_without_reason_is_rejected_as_d000() {
    let src = "// lint:allow(D002)\nfn f() {}\n";
    let (diags, suppressed) = analyze_source(
        "crates/kernel/src/x.rs",
        src,
        scope_for("crates/kernel/src/x.rs"),
    );
    assert_eq!(suppressed, 0);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::D000);
}

#[test]
fn allow_with_unknown_code_is_rejected_as_d000() {
    let src = "// lint:allow(D099 because)\nfn f() {}\n";
    let (diags, _) = analyze_source(
        "crates/kernel/src/x.rs",
        src,
        scope_for("crates/kernel/src/x.rs"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::D000);
}

// ----------------------------------------------------------- end to end

/// The real workspace must be lint-clean: this is the same check CI runs.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace is readable");
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report.render()
    );
    assert!(report.checked_files > 50, "walk found the workspace");
}

/// Driving the binary over the fixture tree: nonzero exit, and every
/// positive fixture is reported with its rule code and file:line span.
#[test]
fn cli_reports_each_positive_fixture_with_code_and_span() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_demos-lint"))
        .args(["check", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "fixture tree must fail the lint: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for (code, span) in [
        ("D001", "crates/kernel/src/d001_pos.rs:6"),
        ("D002", "crates/kernel/src/d002_pos.rs:4"),
        ("D003", "crates/kernel/src/d003_pos.rs:7"),
        ("D004", "crates/kernel/src/d004_pos.rs:5"),
        ("D005", "crates/types/src/d005_pos.rs:5"),
    ] {
        assert!(
            text.contains(&format!("error[{code}]")),
            "missing {code} in CLI output:\n{text}"
        );
        assert!(
            text.contains(span),
            "missing span {span} in CLI output:\n{text}"
        );
    }
    // Negative fixtures must not be reported.
    assert!(
        !text.contains("_neg.rs"),
        "negative fixture flagged:\n{text}"
    );
    // The justified allow in allow_ok.rs is counted as suppressed.
    assert!(
        text.contains("1 suppressed"),
        "missing suppression count:\n{text}"
    );
}

/// JSON mode emits one machine-readable object per finding.
#[test]
fn cli_json_mode_is_parseable_shape() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_demos-lint"))
        .args(["check", "--json", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"code\":\"D001\""), "JSON output:\n{text}");
    assert!(
        text.contains("\"file\":\"crates/types/src/d005_pos.rs\""),
        "JSON output:\n{text}"
    );
    assert!(text.contains("\"line\":5"), "JSON output:\n{text}");
}
