//! Fixture-driven tests: one positive and one negative input per rule,
//! laid out as a miniature workspace under `fixtures/` so the path-based
//! scoping of [`demos_lint::scope_for`] is exercised exactly as in a real
//! run. The CLI test drives the compiled `demos-lint` binary end to end.

use std::path::{Path, PathBuf};

use demos_lint::{analyze_source, check_workspace, fix_workspace, scope_for, Code, Diagnostic};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// Analyze one fixture with the scope its path would get in a real
/// workspace walk.
fn run_fixture(rel: &str) -> (Vec<Diagnostic>, usize) {
    let src = std::fs::read_to_string(fixtures_root().join(rel)).expect("fixture exists");
    analyze_source(rel, &src, scope_for(rel))
}

fn sole_code(rel: &str) -> Diagnostic {
    let (diags, _) = run_fixture(rel);
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one finding in {rel}: {diags:?}"
    );
    diags.into_iter().next().expect("checked len")
}

fn assert_clean(rel: &str) {
    let (diags, _) = run_fixture(rel);
    assert!(diags.is_empty(), "expected no findings in {rel}: {diags:?}");
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_flags_hash_collections_in_sim_visible_code() {
    let d = sole_code("crates/kernel/src/d001_pos.rs");
    assert_eq!(d.code, Code::D001);
    assert_eq!(d.line, 6, "span should point at the HashMap field: {d:?}");
}

#[test]
fn d001_accepts_ordered_collections() {
    assert_clean("crates/kernel/src/d001_neg.rs");
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_flags_wall_clock_reads() {
    let d = sole_code("crates/kernel/src/d002_pos.rs");
    assert_eq!(d.code, Code::D002);
    assert_eq!(d.line, 4, "span should point at Instant::now(): {d:?}");
}

#[test]
fn d002_accepts_virtual_time_and_entropy_in_comments() {
    assert_clean("crates/kernel/src/d002_neg.rs");
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_flags_catch_all_over_protocol_enum() {
    let d = sole_code("crates/kernel/src/d003_pos.rs");
    assert_eq!(d.code, Code::D003);
    assert_eq!(d.line, 7, "span should point at the `_ =>` arm: {d:?}");
}

#[test]
fn d003_accepts_exhaustive_matches_and_unwatched_enums() {
    assert_clean("crates/kernel/src/d003_neg.rs");
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_flags_panicking_paths_in_handlers() {
    let d = sole_code("crates/kernel/src/d004_pos.rs");
    assert_eq!(d.code, Code::D004);
    assert_eq!(d.line, 5, "span should point at .expect(): {d:?}");
}

#[test]
fn d004_accepts_graceful_degradation_and_test_only_unwraps() {
    assert_clean("crates/kernel/src/d004_neg.rs");
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_flags_truncating_casts_in_codecs() {
    let d = sole_code("crates/types/src/d005_pos.rs");
    assert_eq!(d.code, Code::D005);
    assert_eq!(d.line, 5, "span should point at `as u16`: {d:?}");
}

#[test]
fn d005_accepts_checked_conversions() {
    assert_clean("crates/types/src/d005_neg.rs");
}

// ---------------------------------------------------- lint:allow escape

#[test]
fn allow_directive_suppresses_and_is_counted() {
    let (diags, suppressed) = run_fixture("crates/kernel/src/allow_ok.rs");
    assert!(
        diags.is_empty(),
        "allow should suppress the finding: {diags:?}"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn allow_without_reason_is_rejected_as_d000() {
    let src = "// lint:allow(D002)\nfn f() {}\n";
    let (diags, suppressed) = analyze_source(
        "crates/kernel/src/x.rs",
        src,
        scope_for("crates/kernel/src/x.rs"),
    );
    assert_eq!(suppressed, 0);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::D000);
}

#[test]
fn allow_with_unknown_code_is_rejected_as_d000() {
    let src = "// lint:allow(D099 because)\nfn f() {}\n";
    let (diags, _) = analyze_source(
        "crates/kernel/src/x.rs",
        src,
        scope_for("crates/kernel/src/x.rs"),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::D000);
}

// ----------------------------------------------------------- end to end

/// The real workspace must be lint-clean: this is the same check CI runs.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace is readable");
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report.render()
    );
    assert!(report.checked_files > 50, "walk found the workspace");
}

/// Driving the binary over the fixture tree: nonzero exit, and every
/// positive fixture is reported with its rule code and file:line span.
#[test]
fn cli_reports_each_positive_fixture_with_code_and_span() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_demos-lint"))
        .args(["check", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "fixture tree must fail the lint: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for (code, span) in [
        ("D001", "crates/kernel/src/d001_pos.rs:6"),
        ("D002", "crates/kernel/src/d002_pos.rs:4"),
        ("D003", "crates/kernel/src/d003_pos.rs:7"),
        ("D004", "crates/kernel/src/d004_pos.rs:5"),
        ("D005", "crates/types/src/d005_pos.rs:5"),
    ] {
        assert!(
            text.contains(&format!("error[{code}]")),
            "missing {code} in CLI output:\n{text}"
        );
        assert!(
            text.contains(span),
            "missing span {span} in CLI output:\n{text}"
        );
    }
    // Negative fixtures must not be reported.
    assert!(
        !text.contains("_neg.rs"),
        "negative fixture flagged:\n{text}"
    );
    // The justified allows (allow_ok.rs D002, d009_allowed.rs D009) are
    // counted as suppressed, and the stale one is called out.
    assert!(
        text.contains("2 suppressed"),
        "missing suppression count:\n{text}"
    );
    assert!(
        text.contains("crates/kernel/src/allow_stale.rs:5"),
        "missing stale-allow warning:\n{text}"
    );
}

// ------------------------------------------- semantic rules (D006–D010)

/// The golden snapshot: the two-phase analyzer over the whole fixture
/// workspace must produce exactly this finding set — every positive
/// fixture once (with its code and line), no negative fixture, the two
/// justified allows suppressed, and the stale allow called out.
#[test]
fn fixture_workspace_golden_findings() {
    let report = check_workspace(&fixtures_root()).expect("fixture tree is readable");
    let got: Vec<(String, String, u32)> = report
        .diagnostics
        .iter()
        .map(|d| (format!("{:?}", d.code), d.file.clone(), d.line))
        .collect();
    let want: Vec<(String, String, u32)> = [
        ("D010", "crates/chaos/src/d010_pos.rs", 23), // lock-order inversion vs :16
        ("D010", "crates/chaos/src/d010_pos.rs", 30), // send while holding `slots`
        ("D010", "crates/chaos/src/d010_pos.rs", 35), // re-lock of `slots`
        ("D001", "crates/kernel/src/d001_pos.rs", 6),
        ("D002", "crates/kernel/src/d002_pos.rs", 4),
        ("D003", "crates/kernel/src/d003_pos.rs", 7),
        ("D004", "crates/kernel/src/d004_pos.rs", 5),
        ("D009", "crates/net/src/d009_pos.rs", 11), // Frame::Data without epoch
        ("D006", "crates/policy/src/helper.rs", 7), // unwrap reachable from on_control
        ("D008", "crates/sim/src/d008_pos.rs", 10), // taint via tainted::order_sensitive_sum
        ("D005", "crates/types/src/d005_pos.rs", 5),
        ("D007", "crates/types/src/d007_wire.rs", 7), // Orphan never constructed
        ("D007", "crates/types/src/d007_wire.rs", 7), // Orphan never matched
    ]
    .into_iter()
    .map(|(c, f, l)| (c.to_string(), f.to_string(), l))
    .collect();
    assert_eq!(got, want, "full report:\n{}", report.render());
    assert_eq!(report.suppressed, 2, "allow_ok D002 + d009_allowed D009");
    let stale: Vec<(String, u32)> = report
        .stale_allows
        .iter()
        .map(|s| (s.file.clone(), s.line))
        .collect();
    assert_eq!(stale, [("crates/kernel/src/allow_stale.rs".to_string(), 5)]);
}

/// D006's message carries the cross-crate evidence: the handler root and
/// the call path that reaches the panic site.
#[test]
fn d006_message_names_the_handler_and_call_path() {
    let report = check_workspace(&fixtures_root()).expect("fixture tree is readable");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::D006)
        .expect("D006 present");
    assert!(d.message.contains("Router::on_control"), "{}", d.message);
    assert!(d.message.contains("decode_strict"), "{}", d.message);
}

/// D007 judges each variant separately: the wired variant (`Resident`,
/// constructed in `default_sel` and matched in `cost`) is never reported.
#[test]
fn d007_wired_variant_is_not_reported() {
    let report = check_workspace(&fixtures_root()).expect("fixture tree is readable");
    assert!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::D007)
            .all(|d| d.message.contains("Orphan")),
        "only the unwired variant may be reported:\n{}",
        report.render()
    );
}

// ------------------------------------------------ lint:allow v2 scoping

/// An allow on the line that opens a block covers the whole block.
#[test]
fn allow_extends_over_the_block_it_opens() {
    let src = "pub fn stage() {\n\
               \x20   // lint:allow(D001 the staging map is drained in sorted order)\n\
               \x20   {\n\
               \x20       let mut m = std::collections::HashMap::new();\n\
               \x20       m.insert(1u32, 2u32);\n\
               \x20   }\n\
               }\n";
    let (diags, suppressed) = analyze_source(
        "crates/kernel/src/x.rs",
        src,
        scope_for("crates/kernel/src/x.rs"),
    );
    assert!(diags.is_empty(), "block-scoped allow must cover: {diags:?}");
    assert_eq!(suppressed, 1);
}

/// Without a block, coverage stops after the next line: a finding two
/// lines down is NOT suppressed.
#[test]
fn allow_does_not_leak_past_its_line_pair() {
    let src = "// lint:allow(D001 covers only the next line)\n\
               pub fn a() {}\n\
               pub fn b(m: std::collections::HashMap<u32, u32>) -> usize { m.len() }\n";
    let (diags, suppressed) = analyze_source(
        "crates/kernel/src/x.rs",
        src,
        scope_for("crates/kernel/src/x.rs"),
    );
    assert_eq!(suppressed, 0);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::D001);
    assert_eq!(diags[0].line, 3);
}

/// Semantic codes take allows too, but a bare one is still malformed.
#[test]
fn allow_on_semantic_code_still_requires_justification() {
    let src = "// lint:allow(D009)\nfn f() {}\n";
    let (diags, _) = analyze_source("crates/net/src/x.rs", src, scope_for("crates/net/src/x.rs"));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::D000);
}

// ------------------------------------------------------------- --fix

/// `fix_workspace` removes stale allows and rewrites flagged hash
/// collections to their ordered counterparts, leaving the tree clean.
#[test]
fn fix_workspace_applies_mechanical_edits() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("fixws");
    let src_dir = root.join("crates/kernel/src");
    std::fs::create_dir_all(&src_dir).expect("tmp tree");
    std::fs::write(
        src_dir.join("table.rs"),
        "pub struct T {\n    pub map: std::collections::HashMap<u32, u32>,\n}\n",
    )
    .expect("write");
    std::fs::write(
        src_dir.join("stale.rs"),
        "pub fn f(x: u64) -> u64 {\n    // lint:allow(D002 stale: wall-clock read removed)\n    x + 1\n}\n",
    )
    .expect("write");
    let (report, applied) = fix_workspace(&root).expect("fix runs");
    assert_eq!(applied, 2, "one HashMap rewrite + one stale-allow removal");
    assert!(report.clean(), "post-fix report:\n{}", report.render());
    let table = std::fs::read_to_string(src_dir.join("table.rs")).expect("read back");
    assert!(
        table.contains("BTreeMap") && !table.contains("HashMap"),
        "{table}"
    );
    let stale = std::fs::read_to_string(src_dir.join("stale.rs")).expect("read back");
    assert!(!stale.contains("lint:allow"), "{stale}");
}

// --------------------------------------------------------------- SARIF

/// SARIF mode emits a 2.1.0 log with rule metadata and one result per
/// finding, consumable by code-scanning uploads.
#[test]
fn cli_sarif_mode_has_rules_and_results() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_demos-lint"))
        .args(["check", "--format", "sarif", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"version\":\"2.1.0\""), "{text}");
    assert!(text.contains("\"name\":\"demos-lint\""), "{text}");
    for code in ["D001", "D005", "D006", "D007", "D008", "D009", "D010"] {
        assert!(
            text.contains(&format!("\"ruleId\":\"{code}\"")),
            "missing {code} result in SARIF:\n{text}"
        );
    }
    assert!(
        text.contains("crates/net/src/d009_pos.rs"),
        "SARIF result must carry the file URI:\n{text}"
    );
}

/// JSON mode emits one machine-readable object per finding.
#[test]
fn cli_json_mode_is_parseable_shape() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_demos-lint"))
        .args(["check", "--json", "--root"])
        .arg(fixtures_root())
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"code\":\"D001\""), "JSON output:\n{text}");
    assert!(
        text.contains("\"file\":\"crates/types/src/d005_pos.rs\""),
        "JSON output:\n{text}"
    );
    assert!(text.contains("\"line\":5"), "JSON output:\n{text}");
}
