//! demos-lint — workspace-wide determinism & protocol static analysis.
//!
//! Everything the DEMOS/MP reproduction measures (message counts, byte
//! counts, forwarding hops, chaos seeds, recovery timelines) rests on two
//! properties nothing in the type system enforces:
//!
//! 1. **bit-for-bit determinism** — the same seed must replay the same
//!    schedule forever (corpus files, shrunk repros, CI smoke seeds);
//! 2. **byte-exact wire encoding** — §2.1/Fig 2-1 message layouts are
//!    pinned by tests, but a lossy cast or hasher-ordered iteration can
//!    corrupt them silently.
//!
//! This crate enforces both mechanically. Five rules with stable codes:
//!
//! | code | rule |
//! |------|------|
//! | D001 | no `HashMap`/`HashSet` (hasher-ordered iteration) in sim-visible crates |
//! | D002 | no `SystemTime`/`Instant::now`/`thread_rng` outside `crates/bench` |
//! | D003 | no catch-all `_ =>` in matches over protocol/engine enums |
//! | D004 | no `unwrap`/`expect`/`panic!` in kernel/net/core handler paths |
//! | D005 | no `as` integer casts in the `types` codecs (checked conversions only) |
//!
//! Suppress a finding with an inline escape hatch that *requires a
//! reason*: `// lint:allow(D002 native runtime: wall clock IS the time
//! source)`. The directive covers its own line and the next.
//!
//! Run as `cargo run -p demos-lint -- check` (human output) or
//! `-- check --json` (machine output). Exit code 0 = clean, 1 = findings,
//! 2 = usage/IO error.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{Code, Diagnostic, Report};
pub use engine::{analyze_source, check_workspace, scope_for};
pub use rules::Scope;
