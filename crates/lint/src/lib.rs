//! demos-lint — workspace-wide determinism & protocol static analysis.
//!
//! Everything the DEMOS/MP reproduction measures (message counts, byte
//! counts, forwarding hops, chaos seeds, recovery timelines) rests on two
//! properties nothing in the type system enforces:
//!
//! 1. **bit-for-bit determinism** — the same seed must replay the same
//!    schedule forever (corpus files, shrunk repros, CI smoke seeds);
//! 2. **byte-exact wire encoding** — §2.1/Fig 2-1 message layouts are
//!    pinned by tests, but a lossy cast or hasher-ordered iteration can
//!    corrupt them silently.
//!
//! This crate enforces both mechanically, in two phases. Phase 1 runs the
//! **lexical** rules over each file's token stream; phase 2 parses every
//! file into a small AST, resolves a workspace-wide call graph and runs
//! the **semantic** rules over flows no single file can show.
//!
//! | code | phase | rule |
//! |------|-------|------|
//! | D001 | lexical  | no `HashMap`/`HashSet` (hasher-ordered iteration) in sim-visible crates |
//! | D002 | lexical  | no `SystemTime`/`Instant::now`/`thread_rng` outside `crates/bench` |
//! | D003 | lexical  | no catch-all `_ =>` in matches over protocol/engine enums |
//! | D004 | lexical  | no `unwrap`/`expect`/`panic!` in kernel/net/core handler paths |
//! | D005 | lexical  | no `as` integer casts in the `types` codecs (checked conversions only) |
//! | D006 | semantic | no panic reachable *transitively* from a protocol handler |
//! | D007 | semantic | every wire-enum variant constructed and consumed outside its codec |
//! | D008 | semantic | no determinism taint flowing into sim-visible code through calls |
//! | D009 | semantic | frame payload handling must consult the connection epoch |
//! | D010 | semantic | stable lock order; never block on a channel under a mutex |
//!
//! Suppress a finding with an inline escape hatch that *requires a
//! justification*: `// lint:allow(D002 native runtime: wall clock IS the
//! time source)`. The directive covers its own line and the next; if a
//! block opens on a covered line, it covers through the matching `}`. A
//! directive that suppresses nothing is reported as a stale-allow
//! warning (and `--fix` removes it) — allows must not outlive the code
//! they excuse.
//!
//! Run as `cargo run -p demos-lint -- check` (human output),
//! `-- check --format json|sarif` (machine output, `--output PATH` to
//! write a file), or `-- check --fix` to apply the mechanical fixes.
//! Exit code 0 = clean (zero findings *and* zero stale allows),
//! 1 = findings, 2 = usage/IO error.

pub mod ast;
pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod rules_sem;
pub mod symbols;

pub use diag::{Code, Diagnostic, Report, StaleAllow};
pub use engine::{analyze_source, check_workspace, fix_workspace, scope_for};
pub use rules::Scope;
