//! CLI: `demos-lint check [--json] [--root PATH]`.

use std::path::PathBuf;
use std::process::ExitCode;

use demos_lint::{check_workspace, Code};

fn usage() -> ExitCode {
    eprintln!(
        "usage: demos-lint check [--json] [--root PATH]\n\
         \n\
         Statically enforces the determinism & protocol rules (D001-D005)\n\
         across the workspace. See DESIGN.md §8 for the rule table.\n\
         \n\
         subcommands:\n\
         \x20 check      analyze every .rs file under the workspace root\n\
         \x20 rules      print the rule table\n\
         options:\n\
         \x20 --json     machine-readable report on stdout\n\
         \x20 --root P   workspace root (default: inferred from the manifest)"
    );
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p demos-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up. Fall back to the
    // current directory for a standalone binary.
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json = false;
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(a.clone()),
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match cmd.as_deref() {
        Some("rules") => {
            for c in Code::RULES {
                println!("{c}  {}", c.synopsis());
            }
            ExitCode::SUCCESS
        }
        Some("check") => match check_workspace(&root) {
            Ok(report) => {
                if json {
                    println!("{}", report.to_json());
                } else {
                    print!("{}", report.render());
                }
                if report.clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("demos-lint: io error under {}: {e}", root.display());
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
