//! CLI: `demos-lint check [--format human|json|sarif] [--output PATH]
//! [--fix] [--root PATH]`.

use std::path::PathBuf;
use std::process::ExitCode;

use demos_lint::{check_workspace, fix_workspace, Code, Report};

fn usage() -> ExitCode {
    eprintln!(
        "usage: demos-lint check [--format F] [--output PATH] [--fix] [--root PATH]\n\
         \n\
         Statically enforces the determinism & protocol rules: lexical\n\
         (D001-D005, per token stream) and semantic (D006-D010, over the\n\
         workspace call graph). See DESIGN.md §8 and §12.\n\
         \n\
         subcommands:\n\
         \x20 check        analyze every .rs file under the workspace root\n\
         \x20 rules        print the rule table\n\
         options:\n\
         \x20 --format F   human (default), json, or sarif (for code scanning)\n\
         \x20 --output P   write the report to P instead of stdout\n\
         \x20 --json       shorthand for --format json\n\
         \x20 --fix        apply mechanical fixes (stale allows, D001 renames)\n\
         \x20 --root P     workspace root (default: inferred from the manifest)\n\
         \n\
         exit codes: 0 clean (no findings, no stale allows), 1 findings,\n\
         2 usage/io error"
    );
    ExitCode::from(2)
}

fn default_root() -> PathBuf {
    // When run via `cargo run -p demos-lint`, the manifest dir is
    // crates/lint; the workspace root is two levels up. Fall back to the
    // current directory for a standalone binary.
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn emit(report: &Report, format: &str, output: Option<&PathBuf>) -> std::io::Result<()> {
    let text = match format {
        "json" => format!("{}\n", report.to_json()),
        "sarif" => format!("{}\n", report.to_sarif()),
        _ => report.render(),
    };
    match output {
        Some(path) => std::fs::write(path, text),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut format = "human".to_string();
    let mut output: Option<PathBuf> = None;
    let mut fix = false;
    let mut root = default_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(a.clone()),
            "--json" => format = "json".to_string(),
            "--fix" => fix = true,
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("human" | "json" | "sarif")) => format = f.to_string(),
                _ => return usage(),
            },
            "--output" => match it.next() {
                Some(p) => output = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match cmd.as_deref() {
        Some("rules") => {
            for c in Code::RULES {
                println!("{c}  {}", c.synopsis());
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let result = if fix {
                fix_workspace(&root).map(|(report, applied)| {
                    if applied > 0 {
                        eprintln!("demos-lint: applied {applied} mechanical fix(es)");
                    }
                    report
                })
            } else {
                check_workspace(&root)
            };
            match result {
                Ok(report) => {
                    if let Err(e) = emit(&report, &format, output.as_ref()) {
                        eprintln!("demos-lint: cannot write report: {e}");
                        return ExitCode::from(2);
                    }
                    if report.clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("demos-lint: io error under {}: {e}", root.display());
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
