//! The semantic D-rules (D006–D010), run over the whole workspace after
//! every file is parsed and the call graph is resolved.
//!
//! Where the lexical rules (D001–D005) see one token stream at a time,
//! these see *flows*: panic reachability across crates (D006), protocol
//! variants wired end to end (D007), nondeterminism taint propagating
//! through calls (D008), frame handling that bypasses the connection
//! epoch (D009), and lock ordering in the multithreaded campaign driver
//! (D010). The seven recovery-path bugs PR 7's fuzzer found one
//! interleaving at a time are exactly this class — a static pass catches
//! them before a single execution.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Event, FileAst};
use crate::callgraph::CallGraph;
use crate::diag::{Code, Diagnostic};
use crate::symbols::Symbols;

/// Crates whose handler entry points root the D006 reachability scan.
const HANDLER_CRATES: [&str; 4] = [
    "crates/kernel",
    "crates/net",
    "crates/core",
    "crates/sysproc",
];

/// Crates D004 already covers lexically: panic *sites* there are not
/// re-reported by D006 (the reachability rule adds the cross-crate view,
/// not a duplicate of the lexical one).
const D004_CRATES: [&str; 3] = ["crates/kernel", "crates/net", "crates/core"];

/// Handler-shaped function names: message/timer/fault entry points.
const ROOT_PREFIXES: [&str; 2] = ["on_", "handle"];
const ROOT_EXACT: [&str; 6] = ["submit", "run_next", "drain", "kill", "deliver", "poll"];

/// Sim-visible crates (D008's protected scope — mirrors the engine's
/// D001 scope).
const SIM_VISIBLE: [&str; 8] = [
    "crates/types",
    "crates/net",
    "crates/kernel",
    "crates/core",
    "crates/sim",
    "crates/chaos",
    "crates/rt",
    "crates/policy",
];

/// The wire-protocol enums defined in `crates/types` whose variants must
/// be fully wired (D007).
const WIRE_ENUMS: [&str; 6] = [
    "KernelOp",
    "MigrateMsg",
    "MoveDataMsg",
    "LinkMaintMsg",
    "RejectReason",
    "AreaSel",
];

/// Panic-inducing macros (shared with the lexical D004).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Ambient-entropy identifiers (shared with the lexical D002).
const ENTROPY_IDENTS: [&str; 4] = ["SystemTime", "thread_rng", "OsRng", "from_entropy"];

/// Context handed to the semantic pass by the engine.
pub struct SemCtx<'a> {
    /// Every parsed file, index-aligned with the symbol table.
    pub files: &'a [FileAst],
    /// Symbols over `files`.
    pub sym: &'a Symbols,
    /// Resolved call graph over `files`.
    pub graph: &'a CallGraph,
    /// Is the site (file index, code, line) suppressed by a
    /// `lint:allow`? Used to keep *sanctioned* sources (the allowed
    /// wall-clock reads) from seeding the D008 taint.
    pub is_allowed: &'a dyn Fn(usize, Code, u32) -> bool,
}

/// Run all five semantic rules; diagnostics come back unsorted (the
/// engine merges and orders them per file).
pub fn run(ctx: &SemCtx) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    d006_panic_reachability(ctx, &mut diags);
    d007_protocol_flow(ctx, &mut diags);
    d008_determinism_taint(ctx, &mut diags);
    d009_epoch_discipline(ctx, &mut diags);
    d010_lock_discipline(ctx, &mut diags);
    diags
}

fn push(
    diags: &mut Vec<Diagnostic>,
    code: Code,
    file: &str,
    span: crate::ast::Span,
    message: String,
) {
    diags.push(Diagnostic {
        code,
        file: file.to_string(),
        line: span.line,
        col: span.col,
        message,
    });
}

/// Is this function a handler root for D006?
fn is_root(f: &crate::ast::FnDef, krate: &str) -> bool {
    if f.is_test || !HANDLER_CRATES.contains(&krate) {
        return false;
    }
    ROOT_PREFIXES.iter().any(|p| f.name.starts_with(p)) || ROOT_EXACT.contains(&f.name.as_str())
}

/// D006 — panic reachability: no path from a handler entry point may
/// reach `unwrap`/`expect`/`panic!` — transitively, across crates, not
/// just lexically (which is all D004 can see).
fn d006_panic_reachability(ctx: &SemCtx, diags: &mut Vec<Diagnostic>) {
    let mut roots: Vec<usize> = Vec::new();
    for (id, &(fi, gi)) in ctx.sym.fns.iter().enumerate() {
        let file = &ctx.files[fi];
        if is_root(&file.fns[gi], &file.krate) {
            roots.push(id);
        }
    }
    if roots.is_empty() {
        return;
    }
    let reach = ctx.graph.reach_from(&roots);
    for &id in reach.keys() {
        let (fi, gi) = ctx.sym.fns[id];
        let file = &ctx.files[fi];
        let f = &file.fns[gi];
        if f.is_test || D004_CRATES.contains(&file.krate.as_str()) {
            // Lexical D004 owns panic sites inside the handler crates
            // themselves; D006 adds the cross-crate view.
            continue;
        }
        for ev in &f.body {
            let (what, span) = match ev {
                Event::Method { name, span, .. } if name == "unwrap" || name == "expect" => {
                    (format!(".{name}()"), *span)
                }
                Event::Macro { name, span } if PANIC_MACROS.contains(&name.as_str()) => {
                    (format!("{name}!"), *span)
                }
                _ => continue,
            };
            let path = ctx.graph.path_to(&reach, id, ctx.files, ctx.sym);
            push(
                diags,
                Code::D006,
                &file.rel,
                span,
                format!(
                    "`{what}` in `{}` can abort a kernel mid-protocol: it is reachable from \
                     handler `{}` (call path {}); degrade gracefully (drop/trace/count) or \
                     propagate a `DemosError` instead",
                    f.qual(),
                    path.first().cloned().unwrap_or_default(),
                    path.join(" -> ")
                ),
            );
        }
    }
}

/// D007 — protocol-flow completeness: every variant of the wire enums in
/// `crates/types` must be constructed somewhere AND matched by some
/// consumer *outside* the defining codec crate. A variant only its own
/// encode/decode tables know about is dead protocol surface.
fn d007_protocol_flow(ctx: &SemCtx, diags: &mut Vec<Diagnostic>) {
    // Usage census outside crates/types, non-test fns only.
    let mut constructed: BTreeSet<(String, String)> = BTreeSet::new();
    let mut matched: BTreeSet<(String, String)> = BTreeSet::new();
    for file in ctx.files {
        if file.krate == "crates/types" {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            for ev in &f.body {
                let (path, in_pattern) = match ev {
                    Event::PathRef {
                        path, in_pattern, ..
                    } => (path, *in_pattern),
                    Event::Call { path, .. } => (path, false),
                    _ => continue,
                };
                if path.len() < 2 {
                    continue;
                }
                let e = &path[path.len() - 2];
                let v = &path[path.len() - 1];
                if WIRE_ENUMS.contains(&e.as_str()) {
                    if in_pattern {
                        matched.insert((e.clone(), v.clone()));
                    } else {
                        constructed.insert((e.clone(), v.clone()));
                    }
                }
            }
        }
    }
    // Check the definitions.
    for name in WIRE_ENUMS {
        let Some(&(fi, ei)) = ctx.sym.enums.get(name) else {
            continue;
        };
        let file = &ctx.files[fi];
        if file.krate != "crates/types" {
            continue; // a fixture shadowing a real name; judge it there
        }
        let def = &file.enums[ei];
        for (variant, span) in &def.variants {
            let key = (name.to_string(), variant.clone());
            if !constructed.contains(&key) {
                push(
                    diags,
                    Code::D007,
                    &file.rel,
                    *span,
                    format!(
                        "wire variant `{name}::{variant}` is never constructed outside its \
                         codec: dead protocol surface — wire a producer for it or retire the \
                         variant (a tag no sender emits hides protocol drift)"
                    ),
                );
            }
            if !matched.contains(&key) {
                push(
                    diags,
                    Code::D007,
                    &file.rel,
                    *span,
                    format!(
                        "wire variant `{name}::{variant}` is never matched by any consumer \
                         outside its codec: messages carrying it decode and then fall through \
                         unhandled — handle it everywhere the enum is consumed"
                    ),
                );
            }
        }
    }
}

/// D008 — determinism taint: a sim-visible function calling (directly)
/// into a non-sim-visible function that transitively reads the wall
/// clock, ambient entropy, or iterates a hash collection. Direct reads
/// inside sim-visible crates are D001/D002's job; this rule closes the
/// call-graph hole.
fn d008_determinism_taint(ctx: &SemCtx, diags: &mut Vec<Diagnostic>) {
    // 1. Directly-tainted functions (allow-suppressed sites are
    //    sanctioned and do not seed taint).
    let n = ctx.sym.fns.len();
    let mut tainted = vec![false; n];
    let mut taint_why: Vec<String> = vec![String::new(); n];
    for (id, &(fi, gi)) in ctx.sym.fns.iter().enumerate() {
        let file = &ctx.files[fi];
        let f = &file.fns[gi];
        if f.is_test {
            continue;
        }
        for ev in &f.body {
            let (why, code, line) = match ev {
                Event::Ident { name, span } | Event::Field { name, span }
                    if ENTROPY_IDENTS.contains(&name.as_str()) =>
                {
                    (format!("reads `{name}`"), Code::D002, span.line)
                }
                Event::Call { path, span }
                    if path.iter().any(|s| ENTROPY_IDENTS.contains(&s.as_str())) =>
                {
                    (
                        format!("calls `{}`", path.join("::")),
                        Code::D002,
                        span.line,
                    )
                }
                Event::Method { name, span, .. } if name == "from_entropy" => {
                    ("seeds from entropy".to_string(), Code::D002, span.line)
                }
                Event::Call { path, span }
                    if path.len() >= 2
                        && path[path.len() - 2] == "Instant"
                        && path[path.len() - 1] == "now" =>
                {
                    ("reads `Instant::now()`".to_string(), Code::D002, span.line)
                }
                Event::PathRef { path, span, .. }
                    if path.first().is_some_and(|s| s == "Instant")
                        && path.last().is_some_and(|s| s == "now") =>
                {
                    ("reads `Instant::now`".to_string(), Code::D002, span.line)
                }
                Event::Ident { name, span }
                    if (name == "HashMap" || name == "HashSet")
                        && !SIM_VISIBLE.contains(&file.krate.as_str()) =>
                {
                    // Inside sim-visible crates D001 flags the use itself.
                    (
                        format!("iterates a `{name}` (hasher-dependent order)"),
                        Code::D001,
                        span.line,
                    )
                }
                Event::Call { path, span }
                    if path.iter().any(|s| s == "HashMap" || s == "HashSet")
                        && !SIM_VISIBLE.contains(&file.krate.as_str()) =>
                {
                    (
                        "builds a hash collection (hasher-dependent order)".to_string(),
                        Code::D001,
                        span.line,
                    )
                }
                _ => continue,
            };
            if (ctx.is_allowed)(fi, code, line) {
                continue;
            }
            tainted[id] = true;
            taint_why[id] = why;
            break;
        }
    }
    // 2. Propagate backwards: caller of a tainted fn is tainted.
    loop {
        let mut changed = false;
        for id in 0..n {
            if tainted[id] {
                continue;
            }
            for &(callee, _) in &ctx.graph.edges[id] {
                if tainted[callee] {
                    tainted[id] = true;
                    let (cfi, cgi) = ctx.sym.fns[callee];
                    taint_why[id] = format!(
                        "calls `{}` which {}",
                        ctx.files[cfi].fns[cgi].qual(),
                        short_why(&taint_why[callee])
                    );
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // 3. Report the frontier: sim-visible caller → tainted callee in a
    //    non-sim-visible crate.
    for (id, &(fi, gi)) in ctx.sym.fns.iter().enumerate() {
        let file = &ctx.files[fi];
        let f = &file.fns[gi];
        if f.is_test || !SIM_VISIBLE.contains(&file.krate.as_str()) {
            continue;
        }
        for &(callee, span) in &ctx.graph.edges[id] {
            let (cfi, cgi) = ctx.sym.fns[callee];
            let callee_file = &ctx.files[cfi];
            if !tainted[callee] || SIM_VISIBLE.contains(&callee_file.krate.as_str()) {
                continue;
            }
            let cq = callee_file.fns[cgi].qual();
            push(
                diags,
                Code::D008,
                &file.rel,
                span,
                format!(
                    "determinism taint: `{}` calls `{cq}`, which {} — sim-visible code must \
                     take time from the simulation clock, randomness from the seeded RNG and \
                     iteration order from ordered collections",
                    f.qual(),
                    short_why(&taint_why[callee])
                ),
            );
        }
    }
}

/// Trim a nested taint chain explanation to one hop for readability.
fn short_why(why: &str) -> &str {
    match why.find(" which ") {
        Some(i) => &why[..i],
        None => why,
    }
}

/// D009 — epoch discipline: any function destructuring `Frame::Data` /
/// `Frame::Ack` (the payload-bearing frames) must consult the connection
/// epoch, so stale-incarnation frames can never enter the sequence
/// space. The defining codec (`crates/net/src/frame.rs`) is exempt: its
/// accessors *are* the abstraction.
fn d009_epoch_discipline(ctx: &SemCtx, diags: &mut Vec<Diagnostic>) {
    for file in ctx.files {
        if file.rel == "crates/net/src/frame.rs" {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let mut frame_pat: Option<crate::ast::Span> = None;
            let mut mentions_epoch = false;
            for ev in &f.body {
                match ev {
                    Event::PathRef {
                        path,
                        in_pattern: true,
                        span,
                    } if path.len() >= 2
                        && path[path.len() - 2] == "Frame"
                        && (path[path.len() - 1] == "Data" || path[path.len() - 1] == "Ack") =>
                    {
                        frame_pat.get_or_insert(*span);
                    }
                    Event::Ident { name, .. } | Event::Field { name, .. } if name == "epoch" => {
                        mentions_epoch = true;
                    }
                    Event::Method { name, .. } if name == "epoch" || name == "reset_peer" => {
                        mentions_epoch = true;
                    }
                    _ => {}
                }
            }
            if let Some(span) = frame_pat {
                if !mentions_epoch {
                    push(
                        diags,
                        Code::D009,
                        &file.rel,
                        span,
                        format!(
                            "`{}` destructures `Frame::Data`/`Frame::Ack` without consulting \
                             the connection epoch: a straggler frame from a dead incarnation \
                             would enter the current sequence space — compare `Frame::epoch()` \
                             against the channel's epoch (as `Endpoint::on_frame` does) before \
                             touching the payload",
                            f.qual()
                        ),
                    );
                }
            }
        }
    }
}

/// D010 — lock discipline for the multithreaded drivers: a stable total
/// order on mutex acquisition (per crate, keyed by receiver name), no
/// nested acquisition of the same receiver, and no blocking channel op
/// while any guard is held.
fn d010_lock_discipline(ctx: &SemCtx, diags: &mut Vec<Diagnostic>) {
    // (crate, first, second) → earliest occurrence site.
    let mut pairs: BTreeMap<(String, String, String), (String, crate::ast::Span, String)> =
        BTreeMap::new();
    for file in ctx.files {
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            // Held guards: (receiver, depth, held_for_block).
            let mut held: Vec<(String, u32, bool)> = Vec::new();
            for ev in &f.body {
                match ev {
                    Event::Lock {
                        recv,
                        depth,
                        held_for_block,
                        span,
                    } => {
                        for (h, _, _) in &held {
                            if h == recv {
                                push(
                                    diags,
                                    Code::D010,
                                    &file.rel,
                                    *span,
                                    format!(
                                        "`{}` re-acquires mutex `{recv}` while already \
                                         holding it: instant self-deadlock on \
                                         `std::sync::Mutex`",
                                        f.qual()
                                    ),
                                );
                            } else {
                                pairs
                                    .entry((file.krate.clone(), h.clone(), recv.clone()))
                                    .or_insert((file.rel.clone(), *span, f.qual()));
                            }
                        }
                        held.push((recv.clone(), *depth, *held_for_block));
                    }
                    Event::ChannelOp { name, span, .. } if name != "try_send" => {
                        if let Some((h, _, _)) = held.first() {
                            push(
                                diags,
                                Code::D010,
                                &file.rel,
                                *span,
                                format!(
                                    "`{}` performs a blocking channel `{name}` while holding \
                                     mutex `{h}`: if the peer needs that lock to make \
                                     progress the campaign driver deadlocks — drop the guard \
                                     before touching the channel",
                                    f.qual()
                                ),
                            );
                        }
                    }
                    Event::StmtEnd { depth } => {
                        held.retain(|(_, d, for_block)| *for_block || d < depth);
                    }
                    Event::BlockClose { depth } => {
                        held.retain(|(_, d, _)| d <= depth);
                    }
                    _ => {}
                }
            }
        }
    }
    // Lock-order inversions: (A, B) and (B, A) both present in one crate.
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for ((krate, a, b), (file, span, fq)) in &pairs {
        if a >= b {
            continue;
        }
        let Some((ofile, ospan, ofq)) = pairs.get(&(krate.clone(), b.clone(), a.clone())) else {
            continue;
        };
        if !reported.insert((krate.clone(), a.clone(), b.clone())) {
            continue;
        }
        // Report at the lexically later of the two sites (deterministic).
        let (rfile, rspan, rfq, other_file, other_span, first, second) =
            if (file, span.line, span.col) > (ofile, ospan.line, ospan.col) {
                (file, *span, fq, ofile, *ospan, a, b)
            } else {
                (ofile, *ospan, ofq, file, *span, b, a)
            };
        push(
            diags,
            Code::D010,
            rfile,
            rspan,
            format!(
                "lock-order inversion in `{rfq}`: mutex `{second}` is acquired while \
                 `{first}` is held here, but `{other_file}:{} acquires them in the opposite \
                 order — pick one total order and keep it",
                other_span.line
            ),
        );
    }
}
