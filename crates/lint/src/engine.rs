//! The analysis driver: walks the workspace, decides which rules apply to
//! each file, masks test-only regions, applies `lint:allow` suppressions
//! and aggregates a [`Report`].

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::diag::{Code, Diagnostic, Report};
use crate::lexer::{self, Tok, TokKind};
use crate::rules::{self, Scope};

/// Directory names never descended into. `shims/` holds stand-ins for
/// external crates (criterion's timer is *supposed* to read the wall
/// clock); `fixtures/` holds this linter's own deliberately-violating
/// test inputs.
const SKIP_DIRS: [&str; 7] = [
    "target",
    ".git",
    "shims",
    "fixtures",
    "corpus",
    "node_modules",
    ".claude",
];

/// Path prefixes (workspace-relative, `/`-separated) that are test or
/// example code: no rules apply there.
const TEST_TREES: [&str; 3] = ["tests/", "examples/", "benches/"];

/// Crates whose state is visible to the simulation — D001's scope.
const SIM_VISIBLE: [&str; 8] = [
    "crates/types/",
    "crates/net/",
    "crates/kernel/",
    "crates/core/",
    "crates/sim/",
    "crates/chaos/",
    "crates/rt/",
    "crates/policy/",
];

/// Crates whose message-handling paths must not abort — D004's scope.
const NO_PANIC: [&str; 3] = ["crates/kernel/", "crates/net/", "crates/core/"];

/// Decide the rule scope for one workspace-relative path.
pub fn scope_for(rel: &str) -> Scope {
    // Integration tests, examples and benches: out of scope entirely.
    if TEST_TREES.iter().any(|t| rel.starts_with(t))
        || rel.contains("/tests/")
        || rel.contains("/examples/")
        || rel.contains("/benches/")
    {
        return Scope::none();
    }
    let mut s = Scope {
        d001: SIM_VISIBLE.iter().any(|c| rel.starts_with(c)),
        // The wall clock is the *measurand* in bench; everywhere else it
        // is nondeterminism. Bench is also exempt from D003: it *queries*
        // traces (filter-for-one-event matches), it does not handle
        // protocol, so catch-alls there are idiomatic.
        d002: !rel.starts_with("crates/bench/"),
        d003: !rel.starts_with("crates/bench/"),
        d004: NO_PANIC.iter().any(|c| rel.starts_with(c)),
        d005: rel.starts_with("crates/types/"),
    };
    // The linter does not lint itself for D003 (its rule tables quote the
    // watched enum names as plain identifiers in const arrays, and its own
    // match statements are over lexer tokens, not protocol state).
    if rel.starts_with("crates/lint/") {
        s = Scope {
            d001: false,
            d003: false,
            d004: false,
            d005: false,
            ..s
        };
    }
    s
}

/// A parsed `lint:allow(Dxxx reason…)` directive.
struct Allow {
    code: Code,
    line: u32,
}

/// Analyze one file's source text under `scope`, reporting as `rel`.
/// This is the unit the fixture tests drive directly.
pub fn analyze_source(rel: &str, src: &str, scope: Scope) -> (Vec<Diagnostic>, usize) {
    let lexed = lexer::lex(src);
    let mask = test_mask(&lexed.toks);

    // Collect allow directives (and report malformed ones as D000).
    let mut allows: Vec<Allow> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for c in &lexed.comments {
        // A directive is a whole-comment marker: the comment must *start*
        // with `lint:allow` (prose that merely mentions the syntax — docs,
        // this very file — is ignored).
        let text = c.text.trim_start();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            diags.push(malformed(rel, c.line, "missing `(Dxxx reason)`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(malformed(rel, c.line, "unclosed `(`"));
            continue;
        };
        let body = &rest[..close];
        let mut words = body.splitn(2, char::is_whitespace);
        let code = words.next().unwrap_or("");
        let reason = words.next().unwrap_or("").trim();
        match Code::parse(code) {
            Some(code) if !reason.is_empty() => allows.push(Allow { code, line: c.line }),
            Some(_) => diags.push(malformed(
                rel,
                c.line,
                "a reason is required: `lint:allow(Dxxx why this is sound)`",
            )),
            None => diags.push(malformed(
                rel,
                c.line,
                "unknown rule code (expected D001-D005)",
            )),
        }
    }

    // Run the rules, then apply suppressions. An allow on line N covers
    // findings on line N (trailing comment) and line N+1 (comment on its
    // own line above the code).
    let mut suppressed = 0usize;
    for d in rules::run(&lexed.toks, &mask, scope, rel) {
        let hit = allows
            .iter()
            .any(|a| a.code == d.code && (a.line == d.line || a.line + 1 == d.line));
        if hit {
            suppressed += 1;
        } else {
            diags.push(d);
        }
    }
    diags.sort_by_key(|d| (d.line, d.col, d.code));
    (diags, suppressed)
}

fn malformed(rel: &str, line: u32, why: &str) -> Diagnostic {
    Diagnostic {
        code: Code::D000,
        file: rel.to_string(),
        line,
        col: 1,
        message: format!("malformed lint:allow directive: {why}"),
    }
}

/// Mark tokens inside `#[cfg(test)]`-gated items and `#[test]` functions.
///
/// Heuristic but robust for this codebase's idioms: after an attribute
/// whose bracket group mentions `test`, the next brace-balanced block
/// (with no intervening `;`, which would indicate a braceless item) is
/// masked.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            // Scan the attribute group for the ident `test`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" if toks[j].kind == TokKind::Ident => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test {
                // Find the opening `{` of the annotated item, giving up at
                // a `;` (attribute on a braceless item like `use`).
                let mut k = j;
                let mut pdepth = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => pdepth += 1,
                        ")" | "]" => pdepth -= 1,
                        ";" if pdepth == 0 => break,
                        "{" if pdepth == 0 => {
                            // Mask from the attribute through the matched
                            // closing brace.
                            let mut depth = 0i32;
                            let mut m = k;
                            while m < toks.len() {
                                match toks[m].text.as_str() {
                                    "{" => depth += 1,
                                    "}" => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            for slot in mask.iter_mut().take(m.min(toks.len() - 1) + 1).skip(i) {
                                *slot = true;
                            }
                            i = m;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Recursively collect `.rs` files under `dir`, skipping [`SKIP_DIRS`].
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Check the whole tree rooted at `root` (the workspace directory).
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    let mut report = Report::default();
    // Group diagnostics per file, files in sorted order.
    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let scope = scope_for(&rel);
        let src = std::fs::read_to_string(path)?;
        let (diags, suppressed) = analyze_source(&rel, &src, scope);
        report.checked_files += 1;
        report.suppressed += suppressed;
        if !diags.is_empty() {
            by_file.entry(rel).or_default().extend(diags);
        }
    }
    for (_, diags) in by_file {
        report.diagnostics.extend(diags);
    }
    Ok(report)
}
