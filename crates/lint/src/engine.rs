//! The analysis driver. Two phases:
//!
//! 1. **per-file** — lex, mask test regions, parse `lint:allow`
//!    directives, run the lexical rules (D001–D005) and build the file's
//!    AST;
//! 2. **workspace** — resolve symbols + call graph across every file and
//!    run the semantic rules (D006–D010).
//!
//! Suppression happens once, at the end, over the merged finding set, so
//! one `lint:allow` grammar covers both phases — and any directive that
//! suppressed nothing is itself reported as a stale-allow warning.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::ast::FileAst;
use crate::callgraph::CallGraph;
use crate::diag::{Code, Diagnostic, Report, StaleAllow};
use crate::lexer::{self, Comment, Tok, TokKind};
use crate::parser;
use crate::rules::{self, Scope};
use crate::rules_sem::{self, SemCtx};
use crate::symbols::{self, Symbols};

/// Directory names never descended into. `shims/` holds stand-ins for
/// external crates (criterion's timer is *supposed* to read the wall
/// clock); `fixtures/` holds this linter's own deliberately-violating
/// test inputs.
const SKIP_DIRS: [&str; 7] = [
    "target",
    ".git",
    "shims",
    "fixtures",
    "corpus",
    "node_modules",
    ".claude",
];

/// Path prefixes (workspace-relative, `/`-separated) that are test or
/// example code: no rules apply there.
const TEST_TREES: [&str; 3] = ["tests/", "examples/", "benches/"];

/// Crates whose state is visible to the simulation — D001's scope.
const SIM_VISIBLE: [&str; 8] = [
    "crates/types/",
    "crates/net/",
    "crates/kernel/",
    "crates/core/",
    "crates/sim/",
    "crates/chaos/",
    "crates/rt/",
    "crates/policy/",
];

/// Crates whose message-handling paths must not abort — D004's scope.
const NO_PANIC: [&str; 3] = ["crates/kernel/", "crates/net/", "crates/core/"];

/// Decide the lexical rule scope for one workspace-relative path.
pub fn scope_for(rel: &str) -> Scope {
    // Integration tests, examples and benches: out of scope entirely.
    if TEST_TREES.iter().any(|t| rel.starts_with(t))
        || rel.contains("/tests/")
        || rel.contains("/examples/")
        || rel.contains("/benches/")
    {
        return Scope::none();
    }
    let mut s = Scope {
        d001: SIM_VISIBLE.iter().any(|c| rel.starts_with(c)),
        // The wall clock is the *measurand* in bench; everywhere else it
        // is nondeterminism. Bench is also exempt from D003: it *queries*
        // traces (filter-for-one-event matches), it does not handle
        // protocol, so catch-alls there are idiomatic.
        d002: !rel.starts_with("crates/bench/"),
        d003: !rel.starts_with("crates/bench/"),
        d004: NO_PANIC.iter().any(|c| rel.starts_with(c)),
        d005: rel.starts_with("crates/types/"),
    };
    // The linter does not lint itself for D003 (its rule tables quote the
    // watched enum names as plain identifiers in const arrays, and its own
    // match statements are over lexer tokens, not protocol state).
    if rel.starts_with("crates/lint/") {
        s = Scope {
            d001: false,
            d003: false,
            d004: false,
            d005: false,
            ..s
        };
    }
    s
}

/// A parsed `lint:allow(Dxxx reason…)` directive with its coverage
/// interval and a usage count (zero at the end = stale).
pub struct Allow {
    /// The code this directive suppresses.
    pub code: Code,
    /// Line of the directive comment (start of coverage).
    pub line: u32,
    /// Last covered line: `line + 1`, extended through the matching `}`
    /// when a block opens on a covered line (block-scoped allows).
    pub end: u32,
    /// How many findings this directive suppressed.
    pub used: usize,
}

impl Allow {
    fn covers(&self, line: u32) -> bool {
        line >= self.line && line <= self.end
    }
}

/// Everything phase 1 learns about one file.
pub struct Unit {
    /// Workspace-relative path.
    pub rel: String,
    /// Lexical findings (D000–D005), pre-suppression.
    pub diags: Vec<Diagnostic>,
    /// Parsed allow directives with usage counts.
    pub allows: Vec<Allow>,
    /// The file's AST (empty fns/enums for out-of-scope trees).
    pub ast: FileAst,
    /// Whether this file participates in stale-allow reporting (test
    /// trees do not: nothing can fire there, so every allow is vacuous).
    pub track_stale: bool,
}

/// Phase 1 for one file.
pub fn analyze_file(rel: &str, src: &str, scope: Scope) -> Unit {
    let lexed = lexer::lex(src);
    let mask = test_mask(&lexed.toks);
    let (allows, mut diags) = parse_allows(rel, &lexed.comments, &lexed.toks);
    diags.extend(rules::run(&lexed.toks, &mask, scope, rel));
    let mut ast = parser::parse(rel, &lexed.toks, &mask);
    let out_of_scope = scope == Scope::none();
    if out_of_scope {
        // Test/example trees carry no semantic obligations either.
        ast.fns.clear();
        ast.enums.clear();
    }
    Unit {
        rel: rel.to_string(),
        diags,
        allows,
        ast,
        track_stale: !out_of_scope,
    }
}

/// Analyze one file's source text under `scope`, reporting as `rel`:
/// lexical rules only, suppressions applied. This is the unit the
/// fixture tests drive directly.
pub fn analyze_source(rel: &str, src: &str, scope: Scope) -> (Vec<Diagnostic>, usize) {
    let mut unit = analyze_file(rel, src, scope);
    let mut diags = Vec::new();
    let mut suppressed = 0usize;
    for d in std::mem::take(&mut unit.diags) {
        if suppress(&mut unit.allows, &d) {
            suppressed += 1;
        } else {
            diags.push(d);
        }
    }
    diags.sort_by_key(|d| (d.line, d.col, d.code));
    (diags, suppressed)
}

/// Try to suppress `d` against `allows`; returns true (and bumps the
/// directive's usage count) on a match. D000 is never suppressible: a
/// malformed directive must be fixed, not allowed.
fn suppress(allows: &mut [Allow], d: &Diagnostic) -> bool {
    if d.code == Code::D000 {
        return false;
    }
    for a in allows.iter_mut() {
        if a.code == d.code && a.covers(d.line) {
            a.used += 1;
            return true;
        }
    }
    false
}

/// Parse the `lint:allow` directives out of the comment side-channel.
/// Malformed directives come back as D000 diagnostics. Every directive
/// requires a justification. Coverage is the directive's own line and the
/// next; if a `{` opens on a covered line, coverage extends through the
/// matching `}` (so one justified allow can cover a whole match or fn
/// body without repetition).
fn parse_allows(rel: &str, comments: &[Comment], toks: &[Tok]) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        // A directive is a whole-comment marker: the comment must *start*
        // with `lint:allow` (prose that merely mentions the syntax — docs,
        // this very file — is ignored).
        let text = c.text.trim_start();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            diags.push(malformed(rel, c.line, "missing `(Dxxx reason)`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            diags.push(malformed(rel, c.line, "unclosed `(`"));
            continue;
        };
        let body = &rest[..close];
        let mut words = body.splitn(2, char::is_whitespace);
        let code = words.next().unwrap_or("");
        let reason = words.next().unwrap_or("").trim();
        match Code::parse(code) {
            Some(Code::D000) | None => diags.push(malformed(
                rel,
                c.line,
                "unknown rule code (expected D001-D010)",
            )),
            Some(code) if !reason.is_empty() => allows.push(Allow {
                code,
                line: c.line,
                end: block_end(toks, c.line).max(c.line + 1),
                used: 0,
            }),
            Some(_) => diags.push(malformed(
                rel,
                c.line,
                "a reason is required: `lint:allow(Dxxx why this is sound)`",
            )),
        }
    }
    (allows, diags)
}

/// If a `{` opens on `line` or `line + 1`, return the line of its
/// matching `}`; otherwise 0. Gives allow directives block scope.
fn block_end(toks: &[Tok], line: u32) -> u32 {
    let open = toks
        .iter()
        .position(|t| t.text == "{" && (t.line == line || t.line == line + 1));
    let Some(open) = open else {
        return 0;
    };
    let mut depth = 0i32;
    for t in &toks[open..] {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return t.line;
                }
            }
            _ => {}
        }
    }
    toks.last().map(|t| t.line).unwrap_or(line)
}

fn malformed(rel: &str, line: u32, why: &str) -> Diagnostic {
    Diagnostic {
        code: Code::D000,
        file: rel.to_string(),
        line,
        col: 1,
        message: format!("malformed lint:allow directive: {why}"),
    }
}

/// Mark tokens inside `#[cfg(test)]`-gated items and `#[test]` functions.
///
/// Heuristic but robust for this codebase's idioms: after an attribute
/// whose bracket group mentions `test`, the next brace-balanced block
/// (with no intervening `;`, which would indicate a braceless item) is
/// masked.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            // Scan the attribute group for the ident `test`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" if toks[j].kind == TokKind::Ident => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test {
                // Find the opening `{` of the annotated item, giving up at
                // a `;` (attribute on a braceless item like `use`).
                let mut k = j;
                let mut pdepth = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "[" => pdepth += 1,
                        ")" | "]" => pdepth -= 1,
                        ";" if pdepth == 0 => break,
                        "{" if pdepth == 0 => {
                            // Mask from the attribute through the matched
                            // closing brace.
                            let mut depth = 0i32;
                            let mut m = k;
                            while m < toks.len() {
                                match toks[m].text.as_str() {
                                    "{" => depth += 1,
                                    "}" => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            for slot in mask.iter_mut().take(m.min(toks.len() - 1) + 1).skip(i) {
                                *slot = true;
                            }
                            i = m;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Recursively collect `.rs` files under `dir`, skipping [`SKIP_DIRS`].
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Check the whole tree rooted at `root` (the workspace directory):
/// both phases, suppression, stale-allow detection.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let (mut units, deps) = load_units(root)?;
    Ok(finish(&mut units, deps))
}

/// `check` with `--fix`: apply the mechanical fixes (remove stale
/// `lint:allow` directives; swap flagged `HashMap`/`HashSet` idents for
/// their ordered B-tree counterparts), then re-analyze. Returns the
/// post-fix report and the number of edits applied.
pub fn fix_workspace(root: &Path) -> std::io::Result<(Report, usize)> {
    let (mut units, deps) = load_units(root)?;
    let report = finish(&mut units, deps);
    let mut edits: BTreeMap<String, Vec<FixEdit>> = BTreeMap::new();
    for s in &report.stale_allows {
        edits
            .entry(s.file.clone())
            .or_default()
            .push(FixEdit::RemoveAllow { line: s.line });
    }
    for d in &report.diagnostics {
        if d.code == Code::D001 {
            edits
                .entry(d.file.clone())
                .or_default()
                .push(FixEdit::HashToBTree { line: d.line });
        }
    }
    let mut applied = 0usize;
    for (rel, file_edits) in &edits {
        applied += apply_fixes(&root.join(rel), file_edits)?;
    }
    let (mut units, deps) = load_units(root)?;
    Ok((finish(&mut units, deps), applied))
}

enum FixEdit {
    /// Strip a stale `lint:allow` comment from this line (drop the whole
    /// line if nothing but the comment is on it).
    RemoveAllow { line: u32 },
    /// Replace `HashMap`/`HashSet` with `BTreeMap`/`BTreeSet` on this
    /// line (the D001 mechanical fix — same std module, ordered).
    HashToBTree { line: u32 },
}

fn apply_fixes(path: &Path, edits: &[FixEdit]) -> std::io::Result<usize> {
    let src = std::fs::read_to_string(path)?;
    let mut lines: Vec<Option<String>> = src.lines().map(|l| Some(l.to_string())).collect();
    let mut applied = 0usize;
    for e in edits {
        match *e {
            FixEdit::RemoveAllow { line } => {
                let Some(slot) = lines.get_mut(line as usize - 1) else {
                    continue;
                };
                let Some(text) = slot.as_ref() else { continue };
                if let Some(i) = text.find("// lint:allow") {
                    let kept = text[..i].trim_end();
                    *slot = if kept.is_empty() {
                        None
                    } else {
                        Some(kept.to_string())
                    };
                    applied += 1;
                }
            }
            FixEdit::HashToBTree { line } => {
                let Some(slot) = lines.get_mut(line as usize - 1) else {
                    continue;
                };
                let Some(text) = slot.as_ref() else { continue };
                let fixed = text
                    .replace("HashMap", "BTreeMap")
                    .replace("HashSet", "BTreeSet");
                if fixed != *text {
                    *slot = Some(fixed);
                    applied += 1;
                }
            }
        }
    }
    let mut out: String = lines.into_iter().flatten().collect::<Vec<_>>().join("\n");
    if src.ends_with('\n') {
        out.push('\n');
    }
    std::fs::write(path, out)?;
    Ok(applied)
}

/// Crate dependency closure: crate dir → everything it may call into.
type DepClosure = BTreeMap<String, std::collections::BTreeSet<String>>;

/// Phase 1 over the whole tree, plus the dependency closure the call
/// graph needs. An empty closure (no manifests under root, e.g. a
/// fixture tree) makes the resolver permissive.
fn load_units(root: &Path) -> std::io::Result<(Vec<Unit>, DepClosure)> {
    let mut paths = Vec::new();
    collect_rs(root, &mut paths)?;
    let mut units = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let scope = scope_for(&rel);
        let src = std::fs::read_to_string(path)?;
        units.push(analyze_file(&rel, &src, scope));
    }
    Ok((units, symbols::load_dep_closure(root)))
}

/// Phase 2 + suppression + stale detection over phase-1 units.
fn finish(units: &mut [Unit], deps: DepClosure) -> Report {
    let asts: Vec<FileAst> = units.iter().map(|u| u.ast.clone()).collect();
    let sym = Symbols::build(&asts, deps);
    let graph = CallGraph::build(&asts, &sym);
    let allows_ro: Vec<Vec<(Code, u32, u32)>> = units
        .iter()
        .map(|u| u.allows.iter().map(|a| (a.code, a.line, a.end)).collect())
        .collect();
    let is_allowed = |fi: usize, code: Code, line: u32| -> bool {
        allows_ro[fi]
            .iter()
            .any(|&(c, start, end)| c == code && line >= start && line <= end)
    };
    let sem = rules_sem::run(&SemCtx {
        files: &asts,
        sym: &sym,
        graph: &graph,
        is_allowed: &is_allowed,
    });

    let mut report = Report {
        checked_files: units.len(),
        ..Report::default()
    };
    let idx: BTreeMap<String, usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.rel.clone(), i))
        .collect();
    // Merge: per-file lexical diags plus this file's slice of the
    // semantic findings, suppressed against the file's allows.
    let mut by_file: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    let mut all: Vec<(usize, Diagnostic)> = Vec::new();
    for (i, u) in units.iter_mut().enumerate() {
        for d in std::mem::take(&mut u.diags) {
            all.push((i, d));
        }
    }
    for d in sem {
        if let Some(&i) = idx.get(d.file.as_str()) {
            all.push((i, d));
        }
    }
    for (i, d) in all {
        if suppress(&mut units[i].allows, &d) {
            report.suppressed += 1;
        } else {
            by_file.entry(d.file.clone()).or_default().push(d);
        }
    }
    for (_, mut diags) in by_file {
        diags.sort_by_key(|d| (d.line, d.col, d.code));
        report.diagnostics.extend(diags);
    }
    for u in units.iter() {
        if !u.track_stale {
            continue;
        }
        for a in &u.allows {
            if a.used == 0 {
                report.stale_allows.push(StaleAllow {
                    file: u.rel.clone(),
                    line: a.line,
                    code: a.code,
                });
            }
        }
    }
    report
        .stale_allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}
