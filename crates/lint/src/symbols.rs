//! Workspace symbol table: every function and enum across all parsed
//! files, indexed for the call-graph resolver, plus the crate dependency
//! closure used to reject impossible cross-crate edges.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::ast::FileAst;

/// Index of one function: (file index, fn index within the file).
pub type FnId = usize;

/// A resolved view over every parsed file.
pub struct Symbols {
    /// Flat list: `fns[id] = (file_idx, fn_idx)`.
    pub fns: Vec<(usize, usize)>,
    /// Function name → candidate ids.
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// Enum name → (file_idx, enum_idx). First definition wins (enum
    /// names the rules watch are unique across the workspace).
    pub enums: BTreeMap<String, (usize, usize)>,
    /// Crate dir (`crates/kernel`) → transitive dependency closure
    /// (including itself). Empty map = permissive (fixture mode).
    pub deps: BTreeMap<String, BTreeSet<String>>,
}

impl Symbols {
    /// Build the table over `files`. `deps` comes from
    /// [`load_dep_closure`]; pass an empty map to allow every edge.
    pub fn build(files: &[FileAst], deps: BTreeMap<String, BTreeSet<String>>) -> Symbols {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut enums = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let id = fns.len();
                fns.push((fi, gi));
                by_name.entry(f.name.clone()).or_default().push(id);
            }
            for (ei, e) in file.enums.iter().enumerate() {
                enums.entry(e.name.clone()).or_insert((fi, ei));
            }
        }
        Symbols {
            fns,
            by_name,
            enums,
            deps,
        }
    }

    /// May code in `from` (a crate dir) call code in `to`? True when the
    /// dependency map is empty (fixtures), when either crate is unknown
    /// (files outside `crates/`), or when `to` is in `from`'s closure.
    pub fn can_depend(&self, from: &str, to: &str) -> bool {
        if from == to || self.deps.is_empty() || from.is_empty() || to.is_empty() {
            return true;
        }
        match self.deps.get(from) {
            Some(closure) => closure.contains(to),
            None => true,
        }
    }
}

/// Parse `crates/*/Cargo.toml` under `root` for `demos-*` path
/// dependencies and compute each crate's transitive closure. The manifest
/// grammar needed here is one line per dependency mentioning the crate
/// name — exactly how this workspace's manifests are written.
pub fn load_dep_closure(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates_dir) else {
        return BTreeMap::new();
    };
    let mut dirs: Vec<_> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let key = format!("crates/{name}");
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let mut deps = BTreeSet::new();
        for line in text.lines() {
            let line = line.trim();
            // `demos-types.workspace = true` / `demos-types = { path … }`
            if let Some(dep) = line.strip_prefix("demos-") {
                let dep_name: String = dep
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                let dep_key = format!("crates/{dep_name}");
                if dep_key != key && !dep_name.is_empty() {
                    deps.insert(dep_key);
                }
            }
        }
        direct.insert(key, deps);
    }
    // Transitive closure (the graph is tiny; iterate to fixpoint).
    let mut closure = direct.clone();
    loop {
        let mut changed = false;
        let keys: Vec<String> = closure.keys().cloned().collect();
        for k in &keys {
            let reach: Vec<String> = closure[k].iter().cloned().collect();
            for r in reach {
                let extra: Vec<String> = closure
                    .get(&r)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                let set = closure.get_mut(k).expect("key exists");
                for e in extra {
                    if e != *k && set.insert(e) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    #[test]
    fn indexes_fns_and_enums() {
        let lexed = lexer::lex("enum E { A } impl K { fn f(&self) {} } fn f() {}");
        let mask = vec![false; lexed.toks.len()];
        let ast = parser::parse("crates/kernel/src/a.rs", &lexed.toks, &mask);
        let sym = Symbols::build(std::slice::from_ref(&ast), BTreeMap::new());
        assert_eq!(sym.by_name["f"].len(), 2);
        assert!(sym.enums.contains_key("E"));
        assert!(sym.can_depend("crates/kernel", "crates/types"));
    }

    #[test]
    fn dep_closure_is_transitive_on_real_manifests() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let closure = load_dep_closure(&root);
        if closure.is_empty() {
            return; // standalone checkout without the workspace
        }
        let core = &closure["crates/core"];
        assert!(core.contains("crates/kernel"));
        assert!(core.contains("crates/types"), "transitive via kernel/net");
        assert!(!closure["crates/types"].contains("crates/kernel"));
    }
}
