//! A minimal Rust tokenizer — just enough structure for the D-rules.
//!
//! The build environment is offline, so `syn` is unavailable; the rules in
//! [`crate::rules`] only need identifiers, punctuation, literal boundaries
//! and comment text with accurate line/column spans, all of which a
//! hand-rolled scanner provides. String/char/raw-string literals and
//! (nested) comments are consumed as single units so their *contents* can
//! never produce false positives (`"HashMap"` in a doc string is not a
//! `HashMap` use).

/// What kind of lexeme a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`match`, `HashMap`, `as`, …).
    Ident,
    /// Punctuation. Multi-character operators the rules care about
    /// (`=>`, `::`, `->`, `..=`, `..`) are fused into one token.
    Punct,
    /// String or byte-string literal (including raw forms), one token.
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Exact source text (for `Str`/`Char` the delimiters are included).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

/// A comment, kept separately from the token stream (the rules scan these
/// for `lint:allow` directives).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Text without the `//` / `/*` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Tokenizer output: code tokens plus the comment side-channel.
#[derive(Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Unterminated literals/comments are tolerated (the rest
/// of the file is consumed as that literal) — the lexer must never panic
/// on weird input since it runs over fixture files too.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advance over one char, maintaining line/col.
    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = b[i];
        let (tl, tc) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            while i < n && b[i] != '\n' {
                bump!();
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: tl,
            });
            continue;
        }

        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i + 2;
            bump!();
            bump!();
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            let end = if i >= 2 { i - 2 } else { i };
            out.comments.push(Comment {
                text: b[start..end.max(start)].iter().collect(),
                line: tl,
            });
            continue;
        }

        // Raw strings / raw byte strings / byte strings / raw identifiers.
        if c == 'r' || c == 'b' {
            // r"..."  r#"..."#  br"..."  b"..."  r#ident
            let mut j = i;
            let mut prefix = String::new();
            while j < n && (b[j] == 'r' || b[j] == 'b') && prefix.len() < 2 {
                prefix.push(b[j]);
                j += 1;
            }
            let is_raw = prefix.contains('r');
            if j < n && (b[j] == '"' || (is_raw && b[j] == '#')) {
                // Count hashes for raw strings.
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Consume through the matching close quote.
                    let start = i;
                    while i < j {
                        bump!();
                    }
                    bump!(); // opening quote
                    loop {
                        if i >= n {
                            break;
                        }
                        if !is_raw && b[i] == '\\' && i + 1 < n {
                            bump!();
                            bump!();
                            continue;
                        }
                        if b[i] == '"' {
                            // Check for the right number of closing hashes.
                            let mut k = i + 1;
                            let mut h = 0usize;
                            while k < n && b[k] == '#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                bump!();
                                for _ in 0..hashes {
                                    bump!();
                                }
                                break;
                            }
                        }
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[start..i].iter().collect(),
                        line: tl,
                        col: tc,
                    });
                    continue;
                } else if is_raw && hashes > 0 && j < n && is_ident_start(b[j]) {
                    // Raw identifier r#match.
                    while i < j {
                        bump!();
                    }
                    let start = i;
                    while i < n && is_ident_continue(b[i]) {
                        bump!();
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: b[start..i].iter().collect(),
                        line: tl,
                        col: tc,
                    });
                    continue;
                }
                // `r #` that wasn't a raw string/ident: fall through, lex
                // `r` as an identifier below.
            }
        }

        // Plain string literal.
        if c == '"' {
            let start = i;
            bump!();
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                    continue;
                }
                if b[i] == '"' {
                    bump!();
                    break;
                }
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i].iter().collect(),
                line: tl,
                col: tc,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // 'x' or '\n' → char; 'ident (no closing quote) → lifetime.
            let is_char = (i + 1 < n && b[i + 1] == '\\') || (i + 2 < n && b[i + 2] == '\'');
            if is_char {
                let start = i;
                bump!(); // '
                if i < n && b[i] == '\\' {
                    bump!();
                }
                if i < n {
                    bump!();
                }
                if i < n && b[i] == '\'' {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line: tl,
                    col: tc,
                });
            } else {
                let start = i;
                bump!();
                while i < n && is_ident_continue(b[i]) {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line: tl,
                    col: tc,
                });
            }
            continue;
        }

        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < n {
                let d = b[i];
                // `0..5` must not swallow the range dots: a `.` only
                // belongs to the number when a digit follows.
                let frac_dot = d == '.' && i + 1 < n && b[i + 1].is_ascii_digit();
                if d.is_ascii_alphanumeric() || d == '_' || frac_dot {
                    bump!();
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line: tl,
                col: tc,
            });
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line: tl,
                col: tc,
            });
            continue;
        }

        // Punctuation, fusing the operators the rules inspect.
        let two: String = b[i..n.min(i + 2)].iter().collect();
        let three: String = b[i..n.min(i + 3)].iter().collect();
        let fused: &str = if three == "..=" {
            "..="
        } else if two == "=>" || two == "::" || two == ".." || two == "->" {
            match two.as_str() {
                "=>" => "=>",
                "::" => "::",
                ".." => "..",
                _ => "->",
            }
        } else {
            ""
        };
        if !fused.is_empty() {
            for _ in 0..fused.len() {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: fused.to_string(),
                line: tl,
                col: tc,
            });
        } else {
            bump!();
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line: tl,
                col: tc,
            });
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn fuses_operators() {
        assert_eq!(
            texts("a => b :: c .. d ..= e -> f"),
            ["a", "=>", "b", "::", "c", "..", "d", "..=", "e", "->", "f"]
        );
    }

    #[test]
    fn literals_are_opaque() {
        let l = lex(r#"let s = "HashMap => Instant::now"; // HashMap"#);
        assert!(l.toks.iter().all(|t| t.text != "HashMap"));
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].text.trim(), "HashMap");
    }

    #[test]
    fn raw_strings_and_chars() {
        let l = lex(r##"let x = r#"a "quoted" _ =>"#; let c = '\n'; let lt: &'static str = "";"##);
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(!l.toks.iter().any(|t| t.text == "quoted"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(l.toks[0].text, "fn");
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }

    #[test]
    fn range_after_number() {
        assert_eq!(texts("0..5"), ["0", "..", "5"]);
        assert_eq!(texts("1.5 + 2"), ["1.5", "+", "2"]);
    }
}
