//! The abstract syntax the workspace pass operates on.
//!
//! This is not a full Rust AST: the recursive-descent parser in
//! [`crate::parser`] recovers exactly the structure the semantic rules
//! need — the item tree (functions, impl blocks, enums, modules), and
//! inside every function body a flattened stream of *events* (calls,
//! method calls, macro invocations, path references with
//! pattern/expression position, field accesses, lock acquisitions,
//! channel sends) annotated with enough block structure to reason about
//! guard lifetimes. Everything else (types, generics, expressions that
//! none of the rules inspect) is deliberately skipped over.

/// A source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One parsed `.rs` file.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Crate directory the file belongs to (`crates/kernel`), empty for
    /// files outside `crates/`.
    pub krate: String,
    /// Every function in the file, including methods (flattened out of
    /// their impl blocks; [`FnDef::self_ty`] remembers the impl type).
    pub fns: Vec<FnDef>,
    /// Every enum definition in the file.
    pub enums: Vec<EnumDef>,
}

/// An `enum` item.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names with their definition sites.
    pub variants: Vec<(String, Span)>,
    /// Definition site of the enum itself.
    pub span: Span,
}

/// A `fn` item (free function or method).
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing impl type (`Kernel` for `impl Kernel { fn f… }`), or the
    /// trait-impl target (`Frame` for `impl Wire for Frame`). Empty for
    /// free functions.
    pub self_ty: String,
    /// Trait being implemented, if the enclosing impl is a trait impl
    /// (`Wire` for `impl Wire for Frame`).
    pub trait_name: String,
    /// Whether the first parameter is a form of `self`.
    pub is_method: bool,
    /// Definition site (the `fn` keyword).
    pub span: Span,
    /// Last line of the body (for block-range queries).
    pub end_line: u32,
    /// True when the function sits inside a `#[cfg(test)]` module or is
    /// itself `#[test]`-annotated: excluded from every semantic rule.
    pub is_test: bool,
    /// Body events in source order.
    pub body: Vec<Event>,
}

impl FnDef {
    /// `Type::name` for methods, plain `name` for free functions.
    pub fn qual(&self) -> String {
        if self.self_ty.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.self_ty, self.name)
        }
    }
}

/// One interesting thing that happens inside a function body.
#[derive(Clone, Debug)]
pub enum Event {
    /// A call through a path: `foo(…)`, `Type::foo(…)`, `a::b::foo(…)`.
    /// `path` holds the `::`-separated segments.
    Call { path: Vec<String>, span: Span },
    /// A method call `.name(…)`. `recv` is the last identifier of the
    /// receiver expression (`self` for `self.x().name()` chains where the
    /// chain starts at `self`; the nearest ident otherwise), best-effort.
    Method {
        name: String,
        recv: String,
        span: Span,
    },
    /// A macro invocation `name!(…)`.
    Macro { name: String, span: Span },
    /// A `Path::Segment` reference that is *not* a call (no trailing
    /// parens at the path head): enum-variant constructions
    /// (struct-literal or unit form) and pattern references.
    /// `in_pattern` is true inside `match` arm patterns and
    /// `if let`/`while let`/`let … else` patterns.
    PathRef {
        path: Vec<String>,
        in_pattern: bool,
        span: Span,
    },
    /// A field access `.name` (no call parens).
    Field { name: String, span: Span },
    /// A bare identifier mention (used by taint/epoch rules to see
    /// locals like `epoch` and type names like `HashMap` in bodies).
    Ident { name: String, span: Span },
    /// `recv.lock()` — a mutex acquisition. `held_for_block` is true when
    /// the guard is bound by a surrounding `let`/`if let` (held to the end
    /// of the enclosing block), false for a temporary (held to the end of
    /// the statement). `depth` is the brace depth at the acquisition.
    Lock {
        recv: String,
        depth: u32,
        held_for_block: bool,
        span: Span,
    },
    /// `recv.send(…)` / `recv.recv()` — a channel endpoint operation.
    ChannelOp {
        name: String,
        recv: String,
        depth: u32,
        span: Span,
    },
    /// A block opened (brace depth after opening).
    BlockOpen { depth: u32 },
    /// A block closed (brace depth after closing).
    BlockClose { depth: u32 },
    /// End of a statement (`;` at statement level).
    StmtEnd { depth: u32 },
}

impl Event {
    /// The span of the event, when it has one.
    pub fn span(&self) -> Option<Span> {
        match self {
            Event::Call { span, .. }
            | Event::Method { span, .. }
            | Event::Macro { span, .. }
            | Event::PathRef { span, .. }
            | Event::Field { span, .. }
            | Event::Ident { span, .. }
            | Event::Lock { span, .. }
            | Event::ChannelOp { span, .. } => Some(*span),
            Event::BlockOpen { .. } | Event::BlockClose { .. } | Event::StmtEnd { .. } => None,
        }
    }
}
