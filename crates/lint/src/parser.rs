//! Recursive-descent parser: token stream → [`crate::ast`].
//!
//! Parses the item structure (modules, impl blocks, functions, enums)
//! precisely, and recovers from each function body the event stream the
//! semantic rules need. It is *not* a general Rust parser: constructs
//! none of the rules inspect (types, generics, trait bounds, closures'
//! parameter lists) are skipped over by balanced-delimiter scanning, and
//! the parser must never panic on arbitrary input — it runs over fixture
//! files and half-written code.
//!
//! Position discipline: patterns and expressions are distinguished
//! because D007 needs "constructed" (expression position) vs "matched"
//! (pattern position) for enum variants. Pattern contexts are `match`
//! arms up to their `=>` (minus `if` guards), and `let` / `if let` /
//! `while let` bindings up to their `=`.

use crate::ast::{EnumDef, Event, FileAst, FnDef, Span};
use crate::lexer::{Tok, TokKind};

/// Method names that acquire a mutex.
const LOCK_METHODS: [&str; 1] = ["lock"];

/// Method names that are channel endpoint operations (blocking or
/// capacity-bounded: the D010 "no lock held across a send" rule).
const CHANNEL_METHODS: [&str; 4] = ["send", "recv", "recv_timeout", "try_send"];

/// Parse one file. `rel` is the workspace-relative path; `test_mask`
/// marks tokens inside `#[cfg(test)]` regions (computed by the engine).
pub fn parse(rel: &str, toks: &[Tok], test_mask: &[bool]) -> FileAst {
    let krate = crate_of(rel);
    let mut p = Parser {
        toks,
        test_mask,
        out: FileAst {
            rel: rel.to_string(),
            krate,
            fns: Vec::new(),
            enums: Vec::new(),
        },
    };
    p.items(0, toks.len(), &Ctx::default());
    p.out
}

/// `crates/kernel/src/kernel.rs` → `crates/kernel`; anything not under
/// `crates/` gets the empty crate (treated permissively by the graph).
pub fn crate_of(rel: &str) -> String {
    let mut segs = rel.split('/');
    if segs.next() == Some("crates") {
        if let Some(name) = segs.next() {
            return format!("crates/{name}");
        }
    }
    String::new()
}

/// Inherited item context.
#[derive(Clone, Default)]
struct Ctx {
    /// Enclosing impl type (`Kernel`), if any.
    self_ty: String,
    /// Enclosing trait for trait impls (`Wire` in `impl Wire for Frame`).
    trait_name: String,
    /// Inside a `#[cfg(test)]` module.
    in_test: bool,
}

struct Parser<'a> {
    toks: &'a [Tok],
    test_mask: &'a [bool],
    out: FileAst,
}

impl<'a> Parser<'a> {
    fn t(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn is(&self, i: usize, text: &str) -> bool {
        self.t(i).is_some_and(|t| t.text == text)
    }

    fn span(&self, i: usize) -> Span {
        let t = &self.toks[i.min(self.toks.len().saturating_sub(1))];
        Span {
            line: t.line,
            col: t.col,
        }
    }

    /// Skip a balanced `(..)`, `[..]` or `{..}` group whose opener is at
    /// `i`; returns the index just past the closer.
    fn skip_group(&self, i: usize, end: usize) -> usize {
        let (open, close) = match self.toks[i].text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return i + 1,
        };
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            let t = &self.toks[j].text;
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skip a balanced generic argument list `<..>` starting at `i`
    /// (which must be `<`). Best-effort: `->`/`=>` are fused by the
    /// lexer, so stray `>`s from arrows cannot appear; shifts (`>>`) are
    /// two tokens and close two levels, which is exactly right.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match self.toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                "(" | "[" | "{" => {
                    j = self.skip_group(j, end);
                    continue;
                }
                ";" => return j, // malformed; bail without consuming
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Parse items in `toks[i..end]` (a module body or the file).
    fn items(&mut self, mut i: usize, end: usize, ctx: &Ctx) {
        // `#[test]` / `#[cfg(test)]` attribute seen immediately before the
        // upcoming item.
        let mut pending_test = false;
        while i < end {
            let text = self.toks[i].text.clone();
            match text.as_str() {
                "#" => {
                    // Attribute: `#[..]` or `#![..]`; scan for the ident
                    // `test` inside the bracket group.
                    let mut j = i + 1;
                    if self.is(j, "!") {
                        j += 1;
                    }
                    if self.is(j, "[") {
                        let past = self.skip_group(j, end);
                        if self.toks[j..past]
                            .iter()
                            .any(|t| t.kind == TokKind::Ident && t.text == "test")
                        {
                            pending_test = true;
                        }
                        i = past;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                "mod" => {
                    // `mod name { … }` or `mod name;`
                    let mut j = i + 1;
                    while j < end && !self.is(j, "{") && !self.is(j, ";") {
                        j += 1;
                    }
                    if self.is(j, "{") {
                        let past = self.skip_group(j, end);
                        let sub = Ctx {
                            in_test: ctx.in_test || pending_test,
                            ..Ctx::default()
                        };
                        self.items(j + 1, past.saturating_sub(1), &sub);
                        i = past;
                    } else {
                        i = j + 1;
                    }
                    pending_test = false;
                    continue;
                }
                "impl" => {
                    i = self.impl_block(i, end, ctx.in_test || pending_test);
                    pending_test = false;
                    continue;
                }
                "trait" => {
                    // `trait Name { … }` — default method bodies are real
                    // code; parse them with self_ty = trait name.
                    let name = self
                        .t(i + 1)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    let mut j = i + 1;
                    while j < end && !self.is(j, "{") && !self.is(j, ";") {
                        if self.is(j, "<") {
                            j = self.skip_angles(j, end);
                            continue;
                        }
                        j += 1;
                    }
                    if self.is(j, "{") {
                        let past = self.skip_group(j, end);
                        let sub = Ctx {
                            self_ty: name,
                            trait_name: String::new(),
                            in_test: ctx.in_test || pending_test,
                        };
                        self.items(j + 1, past.saturating_sub(1), &sub);
                        i = past;
                    } else {
                        i = j + 1;
                    }
                    pending_test = false;
                    continue;
                }
                "enum" => {
                    i = self.enum_item(i, end);
                    pending_test = false;
                    continue;
                }
                "fn" => {
                    i = self.fn_item(i, end, ctx, ctx.in_test || pending_test);
                    pending_test = false;
                    continue;
                }
                "struct" | "union" => {
                    // Skip to `;` (tuple/unit struct) or past the brace
                    // body, whichever comes first.
                    let mut j = i + 1;
                    while j < end && !self.is(j, "{") && !self.is(j, ";") {
                        if self.is(j, "<") {
                            j = self.skip_angles(j, end);
                            continue;
                        }
                        if self.is(j, "(") {
                            j = self.skip_group(j, end);
                            continue;
                        }
                        j += 1;
                    }
                    i = if self.is(j, "{") {
                        self.skip_group(j, end)
                    } else {
                        j + 1
                    };
                    pending_test = false;
                    continue;
                }
                "macro_rules" => {
                    // `macro_rules! name { … }`
                    let mut j = i + 1;
                    while j < end && !self.is(j, "{") {
                        j += 1;
                    }
                    i = self.skip_group(j.min(end.saturating_sub(1)).max(i + 1), end);
                    pending_test = false;
                    continue;
                }
                "use" | "extern" => {
                    while i < end && !self.is(i, ";") {
                        if self.is(i, "{") {
                            i = self.skip_group(i, end);
                            continue;
                        }
                        i += 1;
                    }
                    i += 1;
                    pending_test = false;
                    continue;
                }
                "const" | "static" | "type" => {
                    // `const fn` / `const NAME: T = …;` — only skip when
                    // this is not a qualifier on `fn`.
                    if self.is(i + 1, "fn") {
                        i += 1; // let the `fn` arm handle it
                        continue;
                    }
                    while i < end && !self.is(i, ";") {
                        if self.is(i, "{") || self.is(i, "(") || self.is(i, "[") {
                            i = self.skip_group(i, end);
                            continue;
                        }
                        i += 1;
                    }
                    i += 1;
                    pending_test = false;
                    continue;
                }
                _ => {
                    // Qualifiers (`pub`, `unsafe`, `async`, crate paths in
                    // `pub(crate)`) and anything unrecognized: advance.
                    if text == "(" || text == "[" || text == "{" {
                        i = self.skip_group(i, end);
                    } else {
                        i += 1;
                    }
                    continue;
                }
            }
        }
    }

    /// Parse an `impl` block header and its items.
    fn impl_block(&mut self, i: usize, end: usize, in_test: bool) -> usize {
        let mut j = i + 1;
        if self.is(j, "<") {
            j = self.skip_angles(j, end);
        }
        // Collect the first type path (trait or self type), then check
        // for `for`.
        let first = self.type_head(&mut j, end);
        let mut trait_name = String::new();
        let mut self_ty = first;
        if self.is(j, "for") {
            j += 1;
            trait_name = self_ty;
            self_ty = self.type_head(&mut j, end);
        }
        // Skip where-clauses etc. to the body.
        while j < end && !self.is(j, "{") && !self.is(j, ";") {
            if self.is(j, "<") {
                j = self.skip_angles(j, end);
                continue;
            }
            j += 1;
        }
        if !self.is(j, "{") {
            return j + 1;
        }
        let past = self.skip_group(j, end);
        let ctx = Ctx {
            self_ty,
            trait_name,
            in_test,
        };
        self.items(j + 1, past.saturating_sub(1), &ctx);
        past
    }

    /// Read the head identifier of a type path at `*j`, advancing past
    /// the whole path (incl. generics): `demos_types::proto::KernelOp<T>`
    /// → `KernelOp`. Leading `&`/`mut`/lifetimes are skipped.
    fn type_head(&self, j: &mut usize, end: usize) -> String {
        while *j < end
            && (self.is(*j, "&")
                || self.is(*j, "mut")
                || self.is(*j, "dyn")
                || self.toks[*j].kind == TokKind::Lifetime)
        {
            *j += 1;
        }
        let mut name = String::new();
        while *j < end {
            if self.toks[*j].kind == TokKind::Ident {
                name = self.toks[*j].text.clone();
                *j += 1;
                if self.is(*j, "::") {
                    *j += 1;
                    continue;
                }
                if self.is(*j, "<") {
                    *j = self.skip_angles(*j, end);
                }
                break;
            }
            break;
        }
        name
    }

    /// Parse `fn name…(params) -> T { body }` starting at the `fn`
    /// keyword; returns the index past the body.
    fn fn_item(&mut self, i: usize, end: usize, ctx: &Ctx, is_test_attr: bool) -> usize {
        let Some(name_tok) = self.t(i + 1) else {
            return i + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return i + 1;
        }
        let name = name_tok.text.clone();
        let span = self.span(i);
        let mut j = i + 2;
        if self.is(j, "<") {
            j = self.skip_angles(j, end);
        }
        // Parameters.
        let mut is_method = false;
        if self.is(j, "(") {
            let past = self.skip_group(j, end);
            is_method = self.toks[j..past]
                .iter()
                .take(6)
                .any(|t| t.kind == TokKind::Ident && t.text == "self");
            j = past;
        }
        // Return type / where clause up to the body or `;` (trait method
        // signatures without bodies).
        while j < end && !self.is(j, "{") && !self.is(j, ";") {
            if self.is(j, "<") {
                j = self.skip_angles(j, end);
                continue;
            }
            if self.is(j, "(") || self.is(j, "[") {
                j = self.skip_group(j, end);
                continue;
            }
            j += 1;
        }
        if !self.is(j, "{") {
            return j + 1; // bodyless signature
        }
        let past = self.skip_group(j, end);
        let body_end = past.saturating_sub(1);
        let is_test =
            ctx.in_test || is_test_attr || self.test_mask.get(i).copied().unwrap_or(false);
        let body = self.body(j + 1, body_end);
        let end_line = self.t(body_end).map(|t| t.line).unwrap_or(span.line);
        self.out.fns.push(FnDef {
            name,
            self_ty: ctx.self_ty.clone(),
            trait_name: ctx.trait_name.clone(),
            is_method,
            span,
            end_line,
            is_test,
            body,
        });
        past
    }

    /// Parse `enum Name { … }`.
    fn enum_item(&mut self, i: usize, end: usize) -> usize {
        let Some(name_tok) = self.t(i + 1) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let span = self.span(i);
        let mut j = i + 2;
        while j < end && !self.is(j, "{") && !self.is(j, ";") {
            if self.is(j, "<") {
                j = self.skip_angles(j, end);
                continue;
            }
            j += 1;
        }
        if !self.is(j, "{") {
            return j + 1;
        }
        let past = self.skip_group(j, end);
        let mut variants = Vec::new();
        let mut k = j + 1;
        let body_end = past.saturating_sub(1);
        // At variant level: `Name`, `Name(…)`, `Name { … }`, each
        // separated by `,`; attributes/doc comments may precede.
        let mut at_variant_start = true;
        while k < body_end {
            let t = &self.toks[k];
            match t.text.as_str() {
                "#" => {
                    let mut a = k + 1;
                    if self.is(a, "[") {
                        a = self.skip_group(a, body_end);
                    }
                    k = a;
                }
                "," => {
                    at_variant_start = true;
                    k += 1;
                }
                "(" | "{" | "[" => {
                    k = self.skip_group(k, body_end);
                    at_variant_start = false;
                }
                "=" => {
                    // Discriminant `Name = 3`.
                    k += 1;
                    at_variant_start = false;
                }
                _ => {
                    if at_variant_start && t.kind == TokKind::Ident {
                        variants.push((t.text.clone(), self.span(k)));
                        at_variant_start = false;
                    }
                    k += 1;
                }
            }
        }
        self.out.enums.push(EnumDef {
            name,
            variants,
            span,
        });
        past
    }

    /// Parse a function body `toks[i..end]` into the event stream.
    fn body(&mut self, start: usize, end: usize) -> Vec<Event> {
        let mut ev: Vec<Event> = Vec::new();
        // Brace depth relative to the body (0 = statement level).
        let mut depth: u32 = 0;
        // Stack of `match` bodies: (body_depth, in_pattern, in_guard,
        // opened). `opened` flips when the body's `{` is reached, so
        // parens inside the scrutinee cannot activate pattern mode.
        let mut matches: Vec<(u32, bool, bool, bool)> = Vec::new();
        // `let` pattern region active (ends at `=`, `else`, or `;`).
        let mut let_pat = false;
        // Current statement began with `let` (guard-binding heuristic).
        let mut stmt_has_let = false;
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            let in_pattern = {
                let arm_pat = matches
                    .last()
                    .is_some_and(|&(d, in_pat, in_guard, opened)| {
                        opened && depth == d && in_pat && !in_guard
                    });
                arm_pat || let_pat
            };
            match t.text.as_str() {
                "{" | "(" | "[" => {
                    depth += 1;
                    if t.text == "{" {
                        ev.push(Event::BlockOpen { depth });
                        if let Some(m) = matches.last_mut() {
                            if !m.3 && depth == m.0 {
                                m.3 = true;
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                "}" | ")" | "]" => {
                    if t.text == "}" {
                        ev.push(Event::BlockClose {
                            depth: depth.saturating_sub(1),
                        });
                    }
                    depth = depth.saturating_sub(1);
                    while matches.last().is_some_and(|&(d, ..)| depth < d) {
                        matches.pop();
                    }
                    // A `}` closing back to the match-body depth ends a
                    // block-bodied arm (whose trailing `,` is optional):
                    // the next token starts a new pattern.
                    if t.text == "}" {
                        if let Some(m) = matches.last_mut() {
                            if m.3 && depth == m.0 {
                                m.1 = true;
                                m.2 = false;
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                ";" => {
                    ev.push(Event::StmtEnd { depth });
                    stmt_has_let = false;
                    let_pat = false;
                    i += 1;
                    continue;
                }
                "match" if t.kind == TokKind::Ident => {
                    // Scan the scrutinee (expression events fall out of the
                    // normal loop) and note where the body opens: the next
                    // `{` at this depth.
                    let mut j = i + 1;
                    let mut d = 0i32;
                    while j < end {
                        match self.toks[j].text.as_str() {
                            "(" | "[" => d += 1,
                            ")" | "]" => d -= 1,
                            "{" if d == 0 => break,
                            "{" => d += 1,
                            "}" => d -= 1,
                            ";" if d == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if self.is(j, "{") {
                        // The match body will sit at depth+1 once the loop
                        // processes that `{`; register it now.
                        matches.push((depth + 1, true, false, false));
                    }
                    i += 1;
                    continue;
                }
                "let" if t.kind == TokKind::Ident => {
                    let_pat = true;
                    stmt_has_let = true;
                    i += 1;
                    continue;
                }
                "=" => {
                    // Terminates a `let` pattern (plain `=`; `==`/`=>` are
                    // either fused or doubled and only occur in
                    // expressions).
                    let_pat = false;
                    i += 1;
                    continue;
                }
                "else" => {
                    // `let … else { }` — the pattern ended.
                    let_pat = false;
                    i += 1;
                    continue;
                }
                "=>" => {
                    if let Some(m) = matches.last_mut() {
                        if depth == m.0 {
                            m.1 = false;
                            m.2 = false;
                        }
                    }
                    i += 1;
                    continue;
                }
                "," => {
                    if let Some(m) = matches.last_mut() {
                        if depth == m.0 {
                            m.1 = true;
                            m.2 = false;
                        }
                    }
                    i += 1;
                    continue;
                }
                "if" if t.kind == TokKind::Ident => {
                    // Either an arm guard (pattern → expression until `=>`)
                    // or the start of `if let`.
                    if in_pattern && !let_pat {
                        if let Some(m) = matches.last_mut() {
                            if depth == m.0 && m.1 {
                                m.2 = true;
                            }
                        }
                    }
                    i += 1;
                    continue;
                }
                _ => {}
            }

            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }

            // Method call or field access: ident preceded by `.`.
            if i > start && self.is(i.wrapping_sub(1), ".") {
                let name = t.text.clone();
                let span = self.span(i);
                if self.is(i + 1, "(") {
                    let recv = self.receiver_of(i.wrapping_sub(1), start);
                    if LOCK_METHODS.contains(&name.as_str()) {
                        ev.push(Event::Lock {
                            recv: recv.clone(),
                            depth,
                            held_for_block: stmt_has_let,
                            span,
                        });
                    }
                    if CHANNEL_METHODS.contains(&name.as_str()) {
                        ev.push(Event::ChannelOp {
                            name: name.clone(),
                            recv: recv.clone(),
                            depth,
                            span,
                        });
                    }
                    ev.push(Event::Method { name, recv, span });
                } else {
                    ev.push(Event::Field { name, span });
                }
                i += 1;
                continue;
            }

            // Macro invocation.
            if self.is(i + 1, "!") && !self.is(i + 2, "=") {
                ev.push(Event::Macro {
                    name: t.text.clone(),
                    span: self.span(i),
                });
                i += 2;
                continue;
            }

            // Path: collect `a::b::c`.
            let span = self.span(i);
            let mut path = vec![t.text.clone()];
            let mut j = i + 1;
            while self.is(j, "::") && self.t(j + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                path.push(self.toks[j + 1].text.clone());
                j += 2;
            }
            // Turbofish `::<…>` after the path.
            if self.is(j, "::") && self.is(j + 1, "<") {
                j = self.skip_angles(j + 1, end);
            }
            if path.len() == 1 {
                if self.is(j, "(") && !in_pattern {
                    ev.push(Event::Call { path, span });
                } else {
                    ev.push(Event::Ident {
                        name: path.pop().unwrap_or_default(),
                        span,
                    });
                }
            } else if self.is(j, "(") && !in_pattern {
                ev.push(Event::Call { path, span });
            } else {
                ev.push(Event::PathRef {
                    path,
                    in_pattern,
                    span,
                });
            }
            i = j;
        }
        ev
    }

    /// Best-effort receiver of a method call: the nearest identifier
    /// scanning back from the `.` at `dot`, skipping one balanced
    /// index/call group (`slots[i].lock()` → `slots`,
    /// `self.pool.lock()` → `pool`).
    fn receiver_of(&self, dot: usize, floor: usize) -> String {
        let mut k = dot;
        while k > floor {
            k -= 1;
            match self.toks[k].text.as_str() {
                ")" | "]" => {
                    // Scan back over the balanced group.
                    let close = self.toks[k].text.clone();
                    let open = if close == ")" { "(" } else { "[" };
                    let mut d = 0i32;
                    while k > floor {
                        if self.toks[k].text == close {
                            d += 1;
                        } else if self.toks[k].text == open {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k -= 1;
                    }
                }
                "." => {}
                _ => {
                    if self.toks[k].kind == TokKind::Ident {
                        return self.toks[k].text.clone();
                    }
                    return String::new();
                }
            }
        }
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse_src(src: &str) -> FileAst {
        let lexed = lexer::lex(src);
        let mask = vec![false; lexed.toks.len()];
        parse("crates/kernel/src/x.rs", &lexed.toks, &mask)
    }

    #[test]
    fn finds_fns_methods_and_enums() {
        let ast = parse_src(
            "pub enum E { A, B(u8), C { x: u8 } }\n\
             impl K { pub fn on_frame(&mut self, f: u8) { self.helper(f); } fn helper(&self, f: u8) {} }\n\
             fn free() {}",
        );
        assert_eq!(ast.enums.len(), 1);
        assert_eq!(
            ast.enums[0]
                .variants
                .iter()
                .map(|v| v.0.as_str())
                .collect::<Vec<_>>(),
            ["A", "B", "C"]
        );
        let names: Vec<String> = ast.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(names, ["K::on_frame", "K::helper", "free"]);
        assert!(ast.fns[0].is_method);
        assert!(!ast.fns[2].is_method);
    }

    #[test]
    fn trait_impls_record_both_names() {
        let ast = parse_src("impl Wire for Frame { fn encode(&self) {} }");
        assert_eq!(ast.fns[0].self_ty, "Frame");
        assert_eq!(ast.fns[0].trait_name, "Wire");
    }

    #[test]
    fn patterns_vs_expressions() {
        let ast = parse_src(
            "fn f(x: E) -> E {\n\
               match x { E::A => E::B, E::B => make(), _ => E::A }\n\
             }",
        );
        let pats: Vec<&Vec<String>> = ast.fns[0]
            .body
            .iter()
            .filter_map(|e| match e {
                Event::PathRef {
                    path,
                    in_pattern: true,
                    ..
                } => Some(path),
                _ => None,
            })
            .collect();
        assert_eq!(
            pats.len(),
            2,
            "E::A and E::B matched: {:?}",
            ast.fns[0].body
        );
        let exprs: Vec<&Vec<String>> = ast.fns[0]
            .body
            .iter()
            .filter_map(|e| match e {
                Event::PathRef {
                    path,
                    in_pattern: false,
                    ..
                } => Some(path),
                _ => None,
            })
            .collect();
        assert_eq!(exprs.len(), 2, "E::B and E::A constructed");
    }

    #[test]
    fn if_let_patterns_and_guards() {
        let ast = parse_src(
            "fn f(x: E) {\n\
               if let E::A = x {}\n\
               match x { E::B if check(E::C) => {} _ => {} }\n\
             }",
        );
        let pat_names: Vec<String> = ast.fns[0]
            .body
            .iter()
            .filter_map(|e| match e {
                Event::PathRef {
                    path,
                    in_pattern: true,
                    ..
                } => Some(path.join("::")),
                _ => None,
            })
            .collect();
        assert_eq!(
            pat_names,
            ["E::A", "E::B"],
            "guard expr E::C is not a pattern"
        );
    }

    #[test]
    fn locks_and_sends() {
        let ast = parse_src(
            "fn f(&self) {\n\
               let g = self.slots[i].lock();\n\
               tx.send(1);\n\
             }",
        );
        let body = &ast.fns[0].body;
        assert!(body.iter().any(|e| matches!(
            e,
            Event::Lock { recv, held_for_block: true, .. } if recv == "slots"
        )));
        assert!(body.iter().any(|e| matches!(
            e,
            Event::ChannelOp { name, recv, .. } if name == "send" && recv == "tx"
        )));
    }

    #[test]
    fn tuple_variant_in_pattern_is_a_pathref() {
        let ast = parse_src("fn f(x: E) { match x { E::B(v) => {} _ => {} } }");
        assert!(ast.fns[0].body.iter().any(|e| matches!(
            e,
            Event::PathRef { path, in_pattern: true, .. } if path.join("::") == "E::B"
        )));
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "#[cfg(test)] mod tests { fn helper() {} }\n#[test]\nfn t() {}\nfn real() {}";
        let lexed = lexer::lex(src);
        let mask = vec![false; lexed.toks.len()];
        let ast = parse("crates/kernel/src/x.rs", &lexed.toks, &mask);
        let by_name: std::collections::BTreeMap<&str, bool> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert!(by_name["helper"]);
        assert!(by_name["t"]);
        assert!(!by_name["real"]);
    }
}
