//! Diagnostics: stable codes, spans, human and machine renderings.

use std::fmt;

/// The stable rule codes. The numeric part never changes meaning; retired
/// rules leave holes rather than being reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Code {
    /// Malformed `lint:allow` directive (missing code or reason).
    D000,
    /// Unordered hash collections in sim-visible crates.
    D001,
    /// Wall-clock time / ambient randomness outside `bench`.
    D002,
    /// Catch-all `_ =>` arm in a match over a protocol/engine enum.
    D003,
    /// `unwrap`/`expect`/`panic!` in kernel/net/core handler paths.
    D004,
    /// Unchecked `as` integer cast inside the `types` codecs.
    D005,
}

impl Code {
    /// All enforceable rule codes (excludes the directive-error D000).
    pub const RULES: [Code; 5] = [Code::D001, Code::D002, Code::D003, Code::D004, Code::D005];

    /// Parse `"D001"` → `Code::D001`.
    pub fn parse(s: &str) -> Option<Code> {
        match s {
            "D000" => Some(Code::D000),
            "D001" => Some(Code::D001),
            "D002" => Some(Code::D002),
            "D003" => Some(Code::D003),
            "D004" => Some(Code::D004),
            "D005" => Some(Code::D005),
            _ => None,
        }
    }

    /// Short rule synopsis, shown in `--explain`-style listings.
    pub fn synopsis(self) -> &'static str {
        match self {
            Code::D000 => "malformed lint:allow directive",
            Code::D001 => {
                "hash collections are iteration-order nondeterministic in sim-visible crates"
            }
            Code::D002 => "wall-clock time or ambient randomness breaks seeded replay",
            Code::D003 => "catch-all `_ =>` hides new protocol/engine enum variants from handlers",
            Code::D004 => "kernel/net/core handlers must degrade, not die",
            Code::D005 => "byte-exact codecs must use checked integer conversions, not `as`",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One finding, anchored to a file/line/column.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule code.
    pub code: Code,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Human one-line rendering: `error[D001]: ... --> file:line:col`.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}",
            self.code, self.message, self.file, self.line, self.col
        )
    }

    /// JSON object rendering (no external deps; keys are fixed).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.code,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// The result of a whole-tree check.
#[derive(Default)]
pub struct Report {
    /// Findings in (file, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files analyzed.
    pub checked_files: usize,
    /// Number of findings suppressed by a `lint:allow` directive.
    pub suppressed: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable rendering of the whole report.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"checked_files\":{},\"suppressed\":{},\"diagnostics\":[{}]}}",
            self.checked_files,
            self.suppressed,
            items.join(",")
        )
    }

    /// Human rendering: every finding plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "demos-lint: {} file(s) checked, {} finding(s), {} suppressed by lint:allow\n",
            self.checked_files,
            self.diagnostics.len(),
            self.suppressed
        ));
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
