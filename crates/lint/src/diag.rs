//! Diagnostics: stable codes, spans, human, JSON and SARIF renderings,
//! and stale-`lint:allow` warnings.

use std::fmt;

/// The stable rule codes. The numeric part never changes meaning; retired
/// rules leave holes rather than being reused. D001–D005 are lexical
/// (token-stream, per-file); D006–D010 are semantic (AST + workspace
/// call graph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Code {
    /// Malformed `lint:allow` directive (missing code or reason).
    D000,
    /// Unordered hash collections in sim-visible crates.
    D001,
    /// Wall-clock time / ambient randomness outside `bench`.
    D002,
    /// Catch-all `_ =>` arm in a match over a protocol/engine enum.
    D003,
    /// `unwrap`/`expect`/`panic!` in kernel/net/core handler paths.
    D004,
    /// Unchecked `as` integer cast inside the `types` codecs.
    D005,
    /// Panic reachable *transitively* from a kernel/net/engine handler.
    D006,
    /// Wire-enum variant never constructed or never matched by a
    /// consumer outside its codec (dead / half-wired protocol surface).
    D007,
    /// Determinism taint: sim-visible code calls a function that
    /// (transitively) reads wall-clock/entropy or iterates a hash map.
    D008,
    /// `Frame::Data`/`Frame::Ack` payloads touched without flowing
    /// through the connection-epoch check.
    D009,
    /// Lock-order inversion, nested same-mutex acquisition, or a
    /// blocking channel op while holding a mutex.
    D010,
}

impl Code {
    /// All enforceable rule codes (excludes the directive-error D000).
    pub const RULES: [Code; 10] = [
        Code::D001,
        Code::D002,
        Code::D003,
        Code::D004,
        Code::D005,
        Code::D006,
        Code::D007,
        Code::D008,
        Code::D009,
        Code::D010,
    ];

    /// The semantic (workspace-pass) codes: a `lint:allow` for these
    /// always requires a justification string.
    pub const SEMANTIC: [Code; 5] = [Code::D006, Code::D007, Code::D008, Code::D009, Code::D010];

    /// Parse `"D001"` → `Code::D001`.
    pub fn parse(s: &str) -> Option<Code> {
        match s {
            "D000" => Some(Code::D000),
            "D001" => Some(Code::D001),
            "D002" => Some(Code::D002),
            "D003" => Some(Code::D003),
            "D004" => Some(Code::D004),
            "D005" => Some(Code::D005),
            "D006" => Some(Code::D006),
            "D007" => Some(Code::D007),
            "D008" => Some(Code::D008),
            "D009" => Some(Code::D009),
            "D010" => Some(Code::D010),
            _ => None,
        }
    }

    /// Short rule synopsis, shown in `--explain`-style listings and as
    /// the SARIF rule description.
    pub fn synopsis(self) -> &'static str {
        match self {
            Code::D000 => "malformed lint:allow directive",
            Code::D001 => {
                "hash collections are iteration-order nondeterministic in sim-visible crates"
            }
            Code::D002 => "wall-clock time or ambient randomness breaks seeded replay",
            Code::D003 => "catch-all `_ =>` hides new protocol/engine enum variants from handlers",
            Code::D004 => "kernel/net/core handlers must degrade, not die",
            Code::D005 => "byte-exact codecs must use checked integer conversions, not `as`",
            Code::D006 => "no panic may be reachable (transitively) from a protocol handler",
            Code::D007 => "every wire-enum variant must be constructed and consumed somewhere",
            Code::D008 => "determinism taint must not flow into sim-visible code through calls",
            Code::D009 => "frame payload handling must flow through the connection-epoch check",
            Code::D010 => {
                "mutexes need a stable acquisition order; never block on a channel under a lock"
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One finding, anchored to a file/line/column.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule code.
    pub code: Code,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Human one-line rendering: `error[D001]: ... --> file:line:col`.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}",
            self.code, self.message, self.file, self.line, self.col
        )
    }

    /// JSON object rendering (no external deps; keys are fixed).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.code,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// A `lint:allow` directive that suppressed nothing: almost always a
/// leftover from fixed code, and itself a finding (CI requires zero).
#[derive(Clone, Debug)]
pub struct StaleAllow {
    /// File containing the directive.
    pub file: String,
    /// Line of the directive comment.
    pub line: u32,
    /// The code it names.
    pub code: Code,
}

impl StaleAllow {
    /// Human rendering.
    pub fn render(&self) -> String {
        format!(
            "warning[stale-allow]: lint:allow({}) suppresses nothing — remove it (or run --fix)\n  --> {}:{}",
            self.code, self.file, self.line
        )
    }
}

/// The result of a whole-tree check.
#[derive(Default)]
pub struct Report {
    /// Findings in (file, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// `lint:allow` directives that matched no finding.
    pub stale_allows: Vec<StaleAllow>,
    /// Number of `.rs` files analyzed.
    pub checked_files: usize,
    /// Number of findings suppressed by a `lint:allow` directive.
    pub suppressed: usize,
}

impl Report {
    /// True when the tree is clean: no findings *and* no stale allows.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty() && self.stale_allows.is_empty()
    }

    /// Machine-readable rendering of the whole report.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        let stale: Vec<String> = self
            .stale_allows
            .iter()
            .map(|s| {
                format!(
                    "{{\"code\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                    s.code,
                    json_escape(&s.file),
                    s.line
                )
            })
            .collect();
        format!(
            "{{\"checked_files\":{},\"suppressed\":{},\"diagnostics\":[{}],\"stale_allows\":[{}]}}",
            self.checked_files,
            self.suppressed,
            items.join(","),
            stale.join(",")
        )
    }

    /// SARIF 2.1.0 rendering for GitHub code scanning. Stale allows are
    /// emitted as `warning`-level results under the synthetic rule id
    /// `stale-allow`; rule findings are `error`-level.
    pub fn to_sarif(&self) -> String {
        let mut rules = String::new();
        for (i, c) in Code::RULES.iter().enumerate() {
            if i > 0 {
                rules.push(',');
            }
            rules.push_str(&format!(
                "{{\"id\":\"{c}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                json_escape(c.synopsis())
            ));
        }
        rules.push_str(
            ",{\"id\":\"stale-allow\",\"shortDescription\":{\"text\":\
             \"lint:allow directive that suppresses nothing\"}}",
        );
        let mut results = String::new();
        let mut first = true;
        for d in &self.diagnostics {
            if !first {
                results.push(',');
            }
            first = false;
            results.push_str(&format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
                d.code,
                json_escape(&d.message),
                json_escape(&d.file),
                d.line,
                d.col
            ));
        }
        for s in &self.stale_allows {
            if !first {
                results.push(',');
            }
            first = false;
            results.push_str(&format!(
                "{{\"ruleId\":\"stale-allow\",\"level\":\"warning\",\"message\":{{\"text\":\
                 \"lint:allow({}) suppresses nothing; remove it\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                s.code,
                json_escape(&s.file),
                s.line
            ));
        }
        format!(
            "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
             Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":\
             {{\"driver\":{{\"name\":\"demos-lint\",\"informationUri\":\
             \"https://github.com/demos-mp/demos-mp\",\"version\":\"2.0.0\",\"rules\":[{rules}]}}}},\
             \"results\":[{results}]}}]}}"
        )
    }

    /// Human rendering: every finding plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        for s in &self.stale_allows {
            out.push_str(&s.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "demos-lint: {} file(s) checked, {} finding(s), {} stale allow(s), {} suppressed by lint:allow\n",
            self.checked_files,
            self.diagnostics.len(),
            self.stale_allows.len(),
            self.suppressed
        ));
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
