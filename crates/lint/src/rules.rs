//! The D-rules, implemented over the token stream from [`crate::lexer`].
//!
//! Every rule reports a [`Diagnostic`] with a stable code, an exact span
//! and an actionable message. Findings inside `#[cfg(test)]` regions and
//! `#[test]` functions are skipped — the rules guard *shipping* kernel
//! paths, and tests legitimately panic, sleep and poke at wall clocks.

use crate::diag::{Code, Diagnostic};
use crate::lexer::{Tok, TokKind};

/// Which rules apply to the file being analyzed (decided from its path by
/// the engine; fixture tests force everything on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scope {
    /// D001: ordered collections only.
    pub d001: bool,
    /// D002: no wall-clock / ambient randomness.
    pub d002: bool,
    /// D003: exhaustive matches over watched enums.
    pub d003: bool,
    /// D004: no unwrap/expect/panic in handler paths.
    pub d004: bool,
    /// D005: checked integer conversions in codecs.
    pub d005: bool,
}

impl Scope {
    /// Everything on — used by fixture tests.
    pub fn all() -> Scope {
        Scope {
            d001: true,
            d002: true,
            d003: true,
            d004: true,
            d005: true,
        }
    }

    /// Everything off.
    pub fn none() -> Scope {
        Scope {
            d001: false,
            d002: false,
            d003: false,
            d004: false,
            d005: false,
        }
    }
}

/// Hash-based collection types whose iteration order depends on the
/// hasher (D001). `BTreeMap`/`BTreeSet`/sorted `Vec`s are the sanctioned
/// replacements.
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Ambient entropy sources (D002). `Instant` is only flagged as
/// `Instant::now` so type positions (struct fields in the native runtime)
/// still name the type; the *call* is the nondeterminism.
const ENTROPY_IDENTS: [&str; 4] = ["SystemTime", "thread_rng", "OsRng", "from_entropy"];

/// Protocol / engine enums whose matches must stay exhaustive (D003).
/// Adding a variant to any of these must produce a compile error at every
/// handler, never a silent fall-through.
const WATCHED_ENUMS: [&str; 16] = [
    // Wire protocols (§2.2, §3.1, §4-5).
    "KernelOp",
    "MigrateMsg",
    "MoveDataMsg",
    "LinkMaintMsg",
    "KernelMgmt",
    "RejectReason",
    "AreaSel",
    // Transport frames and events.
    "Frame",
    "NetEvent",
    // Engine / migration state machines and the trace-event stream.
    "TraceEvent",
    "MigrationPhase",
    "Stage",
    "ExecStatus",
    "MdAction",
    "PullPurpose",
    // Error taxonomy: every variant must pick its status code consciously.
    "DemosError",
];

/// Macros that abort the kernel (D004).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Integer types a truncating `as` cast can target (D005).
const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Run every in-scope rule over `toks`. `test_mask[i]` marks tokens inside
/// test-only regions; `file` is the workspace-relative path used in spans.
pub fn run(toks: &[Tok], test_mask: &[bool], scope: Scope, file: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if scope.d001 {
        d001(toks, test_mask, file, &mut diags);
    }
    if scope.d002 {
        d002(toks, test_mask, file, &mut diags);
    }
    if scope.d003 {
        d003(toks, test_mask, file, &mut diags);
    }
    if scope.d004 {
        d004(toks, test_mask, file, &mut diags);
    }
    if scope.d005 {
        d005(toks, test_mask, file, &mut diags);
    }
    diags.sort_by_key(|d| (d.line, d.col, d.code));
    diags
}

fn push(diags: &mut Vec<Diagnostic>, code: Code, file: &str, t: &Tok, message: String) {
    diags.push(Diagnostic {
        code,
        file: file.to_string(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// D001 — hash collections in sim-visible crates.
fn d001(toks: &[Tok], mask: &[bool], file: &str, diags: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if HASH_TYPES.contains(&t.text.as_str()) {
            push(
                diags,
                Code::D001,
                file,
                t,
                format!(
                    "`{}` iterates in hasher-dependent order, which breaks seeded replay; \
                     use `BTreeMap`/`BTreeSet` or a sorted `Vec` in sim-visible crates",
                    t.text
                ),
            );
        }
    }
}

/// D002 — wall-clock time / ambient randomness.
fn d002(toks: &[Tok], mask: &[bool], file: &str, diags: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if ENTROPY_IDENTS.contains(&name) {
            push(
                diags,
                Code::D002,
                file,
                t,
                format!(
                    "`{name}` injects ambient time/entropy; route time through the sim clock \
                     and randomness through the seeded RNG (only `crates/bench` may touch \
                     the wall clock)"
                ),
            );
            continue;
        }
        // `Instant::now` — the call, not the type.
        if name == "Instant"
            && toks.get(i + 1).is_some_and(|t| t.text == "::")
            && toks.get(i + 2).is_some_and(|t| t.text == "now")
        {
            push(
                diags,
                Code::D002,
                file,
                t,
                "`Instant::now()` reads the wall clock; sim-visible code must take time \
                 from the simulation clock so identical seeds replay identically"
                    .to_string(),
            );
        }
    }
}

/// D003 — catch-all `_ =>` arms in matches over watched enums.
///
/// A match is "over a watched enum" when any *pattern* (the tokens before
/// an arm's `=>`, including tuple/`Option` wrappers) names
/// `WatchedEnum::Variant`. Matches over integer tags (wire decoders) are
/// untouched: their patterns are literals.
fn d003(toks: &[Tok], mask: &[bool], file: &str, diags: &mut Vec<Diagnostic>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "match" || mask[i] {
            i += 1;
            continue;
        }
        // Find the `{` opening the match body: the first depth-0 `{` after
        // the scrutinee (struct literals are not allowed in scrutinee
        // position without parentheses, so this is unambiguous).
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => break, // `match` used as an identifier-ish thing; bail
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        // Split the body into arms at depth 0 (relative to the body).
        let mut k = open + 1;
        let mut depth = 0i32;
        let mut pat_start = k;
        let mut in_pattern = true;
        let mut watched = false;
        let mut wildcard: Option<usize> = None;
        while k < toks.len() {
            let txt = toks[k].text.as_str();
            match txt {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    if depth == 0 {
                        break; // end of match body
                    }
                    depth -= 1;
                    // A brace-block arm body just closed at depth 0 →
                    // next token starts a new pattern (optionally after a
                    // comma, handled below).
                    if depth == 0 && !in_pattern {
                        in_pattern = true;
                        pat_start = k + 1;
                    }
                }
                "=>" if depth == 0 && in_pattern => {
                    // Pattern is toks[pat_start..k]; inspect it.
                    let pat = &toks[pat_start..k];
                    if pat_names_watched_enum(pat) {
                        watched = true;
                    }
                    if is_catch_all(pat) {
                        wildcard = Some(pat_start);
                    }
                    in_pattern = false;
                }
                // A depth-0 comma in a match body only ever terminates an
                // arm (patterns never contain bare commas — tuple/slice
                // commas sit inside (), []).
                "," if depth == 0 => {
                    in_pattern = true;
                    pat_start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        if watched {
            if let Some(w) = wildcard {
                push(
                    diags,
                    Code::D003,
                    file,
                    &toks[w],
                    "catch-all `_ =>` in a match over a protocol/engine enum: new variants \
                     would silently fall through here; list every variant (or bind \
                     `other @ ...` per-variant) so additions are compile-visible"
                        .to_string(),
                );
            }
        }
        // Continue scanning *inside* the body too (nested matches are found
        // by the outer while loop since we only advance past the keyword).
        i += 1;
    }
}

/// Does a pattern reference `WatchedEnum::...`?
fn pat_names_watched_enum(pat: &[Tok]) -> bool {
    pat.iter().enumerate().any(|(i, t)| {
        t.kind == TokKind::Ident
            && WATCHED_ENUMS.contains(&t.text.as_str())
            && pat.get(i + 1).is_some_and(|n| n.text == "::")
    })
}

/// Is a pattern a catch-all: `_` or `_ if guard`?
fn is_catch_all(pat: &[Tok]) -> bool {
    match pat {
        [t] => t.text == "_",
        [t, g, ..] => t.text == "_" && g.text == "if",
        _ => false,
    }
}

/// D004 — unwrap/expect/panic in handler paths.
fn d004(toks: &[Tok], mask: &[bool], file: &str, diags: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        // `.unwrap()` / `.expect(` — method position only.
        if (name == "unwrap" || name == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            push(
                diags,
                Code::D004,
                file,
                t,
                format!(
                    "`.{name}()` can abort a kernel mid-protocol; message-handling paths \
                     must degrade (drop/trace/bounce) instead of dying — restructure with \
                     `let .. else`, `if let`, or propagate a `DemosError`"
                ),
            );
            continue;
        }
        if PANIC_MACROS.contains(&name) && toks.get(i + 1).is_some_and(|n| n.text == "!") {
            push(
                diags,
                Code::D004,
                file,
                t,
                format!(
                    "`{name}!` aborts the kernel; handler paths must degrade, not die — \
                     trace the anomaly and drop the message, or return a `DemosError`"
                ),
            );
        }
    }
}

/// D005 — `as` integer casts in the `types` codecs.
fn d005(toks: &[Tok], mask: &[bool], file: &str, diags: &mut Vec<Diagnostic>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if ty.kind == TokKind::Ident && INT_TYPES.contains(&ty.text.as_str()) {
            push(
                diags,
                Code::D005,
                file,
                t,
                format!(
                    "`as {}` silently truncates/wraps; byte-exact codecs must use \
                     `{}::from` for widening or `{}::try_from` for narrowing so every \
                     lossy conversion is an explicit, handled error",
                    ty.text, ty.text, ty.text
                ),
            );
        }
    }
}
