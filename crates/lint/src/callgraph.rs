//! Name-based call-graph resolution over the workspace symbol table.
//!
//! Rust's full name resolution needs type inference; a linter that must
//! stay dependency-free approximates it with three conservative layers:
//!
//! 1. **`self.m()`** resolves to methods named `m` on the enclosing impl
//!    type — precise for the intra-type calls that dominate kernel code.
//! 2. **`Type::m()` / `Self::m()`** resolves through the impl type.
//! 3. **`x.m()`** on an arbitrary receiver resolves to *every* workspace
//!    method named `m` — unless `m` collides with a common std method
//!    name (`get`, `insert`, `iter`, …), where resolving by bare name
//!    would wire most of the workspace together spuriously.
//!
//! Every candidate edge is then filtered by the crate dependency closure:
//! code in `crates/types` cannot call into `crates/kernel`, whatever the
//! names say. The result over-approximates real calls slightly (which is
//! what a reachability rule wants) without drowning in false edges.

use std::collections::BTreeMap;

use crate::ast::{Event, FileAst};
use crate::symbols::{FnId, Symbols};

/// Method names shared with std collection/iterator/option APIs: a bare
/// `x.get()` is overwhelmingly a std call, so no workspace edge is made
/// for them unless the receiver is `self` (layer 1) or the path is
/// qualified (layer 2).
const STD_AMBIGUOUS: [&str; 58] = [
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "next",
    "clone",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "drain",
    "take",
    "replace",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "and_then",
    "or_else",
    "ok_or",
    "filter",
    "fold",
    "collect",
    "into_iter",
    "to_vec",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "split",
    "join",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "sum",
    "count",
    "last",
    "first",
    "rev",
    "zip",
    "chain",
    "any",
    "all",
    "find",
    "position",
    "entry",
    "keys",
    "values",
];

/// The resolved graph: `edges[caller] = (callee, event_span)` pairs, in
/// body order, deduplicated per callee.
pub struct CallGraph {
    /// Outgoing edges per function id.
    pub edges: Vec<Vec<(FnId, crate::ast::Span)>>,
}

impl CallGraph {
    /// Resolve every call event in every non-test function.
    pub fn build(files: &[FileAst], sym: &Symbols) -> CallGraph {
        // Impl-type index: self_ty → fn ids (methods and associated fns).
        let mut by_type: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, &(fi, gi)) in sym.fns.iter().enumerate() {
            let f = &files[fi].fns[gi];
            if !f.self_ty.is_empty() {
                by_type.entry(f.self_ty.as_str()).or_default().push(id);
            }
        }

        let mut edges: Vec<Vec<(FnId, crate::ast::Span)>> = vec![Vec::new(); sym.fns.len()];
        for (id, &(fi, gi)) in sym.fns.iter().enumerate() {
            let file = &files[fi];
            let f = &file.fns[gi];
            if f.is_test {
                continue;
            }
            let mut out: Vec<(FnId, crate::ast::Span)> = Vec::new();
            for ev in &f.body {
                match ev {
                    Event::Call { path, span } => {
                        let callees = resolve_path_call(path, fi, &f.self_ty, files, sym, &by_type);
                        for c in callees {
                            out.push((c, *span));
                        }
                    }
                    Event::Method { name, recv, span } => {
                        let callees =
                            resolve_method(name, recv, fi, &f.self_ty, files, sym, &by_type);
                        for c in callees {
                            out.push((c, *span));
                        }
                    }
                    _ => {}
                }
            }
            // Dedup by callee, keeping the first (earliest) span.
            let mut seen = std::collections::BTreeSet::new();
            out.retain(|(c, _)| seen.insert(*c));
            edges[id] = out;
        }
        CallGraph { edges }
    }

    /// Forward BFS from `roots`; returns for each reachable fn the id of
    /// its BFS parent (roots map to themselves).
    pub fn reach_from(&self, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &(c, _) in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(f);
                    queue.push_back(c);
                }
            }
        }
        parent
    }

    /// The call path root → … → `target` implied by a `reach_from`
    /// parent map, rendered as qualified names.
    pub fn path_to(
        &self,
        parent: &BTreeMap<FnId, FnId>,
        target: FnId,
        files: &[FileAst],
        sym: &Symbols,
    ) -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = target;
        loop {
            let (fi, gi) = sym.fns[cur];
            path.push(files[fi].fns[gi].qual());
            match parent.get(&cur) {
                Some(&p) if p != cur => cur = p,
                _ => break,
            }
        }
        path.reverse();
        path
    }
}

/// Candidates for `foo(…)` / `Type::foo(…)` / `a::b::foo(…)`.
fn resolve_path_call(
    path: &[String],
    caller_file: usize,
    caller_self_ty: &str,
    files: &[FileAst],
    sym: &Symbols,
    by_type: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<FnId> {
    let Some(name) = path.last() else {
        return Vec::new();
    };
    let Some(cands) = sym.by_name.get(name) else {
        return Vec::new();
    };
    let caller_crate = files[caller_file].krate.clone();
    let dep_ok = |id: &FnId| {
        let (fi, _) = sym.fns[*id];
        sym.can_depend(&caller_crate, &files[fi].krate)
    };
    let not_test = |id: &FnId| {
        let (fi, gi) = sym.fns[*id];
        !files[fi].fns[gi].is_test
    };
    if path.len() == 1 {
        // Bare `foo(…)`: same file first, then same crate; free fns only.
        let free: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|id| {
                let (fi, gi) = sym.fns[*id];
                files[fi].fns[gi].self_ty.is_empty() && !files[fi].fns[gi].is_test
            })
            .collect();
        let same_file: Vec<FnId> = free
            .iter()
            .copied()
            .filter(|id| sym.fns[*id].0 == caller_file)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        return free
            .into_iter()
            .filter(|id| {
                let (fi, _) = sym.fns[*id];
                files[fi].krate == caller_crate
            })
            .collect();
    }
    // Qualified: resolve through the second-to-last segment.
    let qual = &path[path.len() - 2];
    let qual = if qual == "Self" {
        caller_self_ty
    } else {
        qual.as_str()
    };
    if by_type.contains_key(qual) {
        return cands
            .iter()
            .copied()
            .filter(|id| {
                let (fi, gi) = sym.fns[*id];
                files[fi].fns[gi].self_ty == qual
            })
            .filter(not_test)
            .filter(dep_ok)
            .collect();
    }
    // Module-qualified free fn (`wire::put_bytes`): match the file stem.
    let stem_matches: Vec<FnId> = cands
        .iter()
        .copied()
        .filter(|id| {
            let (fi, gi) = sym.fns[*id];
            files[fi].fns[gi].self_ty.is_empty()
                && files[fi]
                    .rel
                    .rsplit('/')
                    .next()
                    .is_some_and(|f| f.strip_suffix(".rs") == Some(qual))
        })
        .filter(not_test)
        .filter(dep_ok)
        .collect();
    if !stem_matches.is_empty() {
        return stem_matches;
    }
    // Fall back to any free fn of that name in the dependency closure.
    cands
        .iter()
        .copied()
        .filter(|id| {
            let (fi, gi) = sym.fns[*id];
            files[fi].fns[gi].self_ty.is_empty()
        })
        .filter(not_test)
        .filter(dep_ok)
        .collect()
}

/// Candidates for `recv.name(…)`.
fn resolve_method(
    name: &str,
    recv: &str,
    caller_file: usize,
    caller_self_ty: &str,
    files: &[FileAst],
    sym: &Symbols,
    by_type: &BTreeMap<&str, Vec<FnId>>,
) -> Vec<FnId> {
    let Some(cands) = sym.by_name.get(name) else {
        return Vec::new();
    };
    let caller_crate = files[caller_file].krate.clone();
    let dep_ok = |id: &FnId| {
        let (fi, _) = sym.fns[*id];
        sym.can_depend(&caller_crate, &files[fi].krate)
    };
    let not_test = |id: &FnId| {
        let (fi, gi) = sym.fns[*id];
        !files[fi].fns[gi].is_test
    };
    // `self.m()` → the enclosing impl type's own method, if it has one.
    if recv == "self" && !caller_self_ty.is_empty() {
        if let Some(ids) = by_type.get(caller_self_ty) {
            let own: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|id| {
                    let (fi, gi) = sym.fns[*id];
                    files[fi].fns[gi].name == name
                })
                .filter(not_test)
                .collect();
            if !own.is_empty() {
                return own;
            }
        }
    }
    // Ambiguous-with-std names never resolve by bare receiver.
    if STD_AMBIGUOUS.contains(&name) {
        return Vec::new();
    }
    cands
        .iter()
        .copied()
        .filter(|id| {
            let (fi, gi) = sym.fns[*id];
            files[fi].fns[gi].is_method
        })
        .filter(not_test)
        .filter(dep_ok)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser;

    fn build(srcs: &[(&str, &str)]) -> (Vec<FileAst>, Symbols, CallGraph) {
        let files: Vec<FileAst> = srcs
            .iter()
            .map(|(rel, src)| {
                let lexed = lexer::lex(src);
                let mask = vec![false; lexed.toks.len()];
                parser::parse(rel, &lexed.toks, &mask)
            })
            .collect();
        let sym = Symbols::build(&files, BTreeMap::new());
        let graph = CallGraph::build(&files, &sym);
        (files, sym, graph)
    }

    fn qual_of(files: &[FileAst], sym: &Symbols, id: FnId) -> String {
        let (fi, gi) = sym.fns[id];
        files[fi].fns[gi].qual()
    }

    #[test]
    fn self_calls_resolve_within_the_impl() {
        let (files, sym, g) = build(&[(
            "crates/kernel/src/a.rs",
            "impl K { fn top(&self) { self.helper(); } fn helper(&self) {} }\n\
             impl Other { fn helper(&self) {} }",
        )]);
        let callees: Vec<String> = g.edges[0]
            .iter()
            .map(|&(c, _)| qual_of(&files, &sym, c))
            .collect();
        assert_eq!(callees, ["K::helper"]);
    }

    #[test]
    fn cross_file_method_and_reachability() {
        let (files, sym, g) = build(&[
            (
                "crates/kernel/src/a.rs",
                "impl K { fn on_frame(&self, m: M) { m.encode_wire(); } }",
            ),
            (
                "crates/types/src/b.rs",
                "impl M { fn encode_wire(&self) { self.deep(); } fn deep(&self) {} }",
            ),
        ]);
        let roots = vec![0usize];
        let reach = g.reach_from(&roots);
        assert_eq!(reach.len(), 3, "on_frame → encode_wire → deep");
        let deep_id = sym.by_name["deep"][0];
        let path = g.path_to(&reach, deep_id, &files, &sym);
        assert_eq!(path, ["K::on_frame", "M::encode_wire", "M::deep"]);
    }

    #[test]
    fn std_ambiguous_names_do_not_wire_the_workspace() {
        let (_files, _sym, g) = build(&[
            (
                "crates/kernel/src/a.rs",
                "impl K { fn f(&self, t: T) { t.get(0); } }",
            ),
            (
                "crates/types/src/b.rs",
                "impl T { fn get(&self, i: usize) { panic!(); } }",
            ),
        ]);
        assert!(g.edges[0].is_empty(), "bare .get() must not resolve");
    }
}
