//! Human-readable cluster report — the `demos-top` view.
//!
//! One aligned table with a row per machine and a TOTAL row: queue
//! depths, kernel table sizes, memory, and transport retransmit
//! counters; followed by a cluster-wide traffic-by-class section. The
//! output is plain text so experiment binaries can print it and golden
//! tests can pin it.

use crate::snapshot::{ClusterSnapshot, MachineSnapshot};
use std::fmt::Write as _;

const HEADERS: [&str; 11] = [
    "machine", "procs", "runq", "msgq", "pend", "links", "fwd", "mem", "retx", "dupack", "dedup",
];

fn row_of(s: &MachineSnapshot, label: String) -> [String; 11] {
    [
        label,
        s.procs.to_string(),
        s.runq.to_string(),
        s.msgq.to_string(),
        s.pending.to_string(),
        s.links.to_string(),
        s.forwarding.to_string(),
        s.mem_used.to_string(),
        s.retransmits.to_string(),
        s.dup_acks.to_string(),
        s.dedup_drops.to_string(),
    ]
}

/// Render the `demos-top`-style cluster report.
pub fn render(snap: &ClusterSnapshot) -> String {
    let totals = snap.totals();
    let mut rows: Vec<[String; 11]> = snap
        .machines
        .iter()
        .map(|m| row_of(m, format!("m{}", m.machine)))
        .collect();
    rows.push(row_of(&totals, "TOTAL".to_string()));

    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster @ {} — {} machines, {} procs",
        snap.at,
        snap.machines.len(),
        totals.procs
    );
    let line = |cells: &[String]| -> String {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            } else {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
        }
        s.trim_end().to_string()
    };
    let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        let _ = writeln!(out, "{}", line(&row));
    }

    if !totals.traffic.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "traffic by class (cluster total):");
        let wc = totals
            .traffic
            .iter()
            .map(|(c, _, _)| c.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for (class, msgs, bytes) in &totals.traffic {
            let _ = writeln!(out, "  {class:<wc$}  {msgs:>8} msgs  {bytes:>10} B");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::Time;

    #[test]
    fn renders_rows_totals_and_traffic() {
        let snap = ClusterSnapshot {
            at: Time::from_micros(2_000_000),
            machines: vec![
                MachineSnapshot {
                    machine: 0,
                    procs: 2,
                    runq: 1,
                    msgq: 3,
                    pending: 0,
                    links: 8,
                    forwarding: 1,
                    mem_used: 2048,
                    retransmits: 5,
                    dup_acks: 2,
                    dedup_drops: 1,
                    traffic: vec![("user", 10, 1000)],
                },
                MachineSnapshot {
                    machine: 1,
                    procs: 1,
                    ..Default::default()
                },
            ],
        };
        let text = render(&snap);
        assert!(
            text.contains("cluster @ 2.000s — 2 machines, 3 procs"),
            "{text}"
        );
        assert!(text.contains("machine"), "{text}");
        assert!(
            text.lines()
                .any(|l| l.starts_with("m0") && l.ends_with("1")),
            "{text}"
        );
        assert!(text.lines().any(|l| l.starts_with("TOTAL")), "{text}");
        assert!(text.contains("user") && text.contains("1000 B"), "{text}");
    }
}
