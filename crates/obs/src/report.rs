//! Human-readable cluster report — the `demos-top` view.
//!
//! One aligned table with a row per machine and a TOTAL row: queue
//! depths, kernel table sizes, memory, and transport retransmit
//! counters; followed by a cluster-wide traffic-by-class section. The
//! output is plain text so experiment binaries can print it and golden
//! tests can pin it.

use crate::snapshot::{ClusterSnapshot, MachineSnapshot};
use std::fmt::Write as _;

const HEADERS: [&str; 11] = [
    "machine", "procs", "runq", "msgq", "pend", "links", "fwd", "mem", "retx", "dupack", "dedup",
];

fn row_of(s: &MachineSnapshot, label: String) -> [String; 11] {
    [
        label,
        s.procs.to_string(),
        s.runq.to_string(),
        s.msgq.to_string(),
        s.pending.to_string(),
        s.links.to_string(),
        s.forwarding.to_string(),
        s.mem_used.to_string(),
        s.retransmits.to_string(),
        s.dup_acks.to_string(),
        s.dedup_drops.to_string(),
    ]
}

/// Render the `demos-top`-style cluster report.
pub fn render(snap: &ClusterSnapshot) -> String {
    let totals = snap.totals();
    let mut rows: Vec<[String; 11]> = snap
        .machines
        .iter()
        .map(|m| row_of(m, format!("m{}", m.machine)))
        .collect();
    rows.push(row_of(&totals, "TOTAL".to_string()));

    let mut widths: Vec<usize> = HEADERS.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster @ {} — {} machines, {} procs",
        snap.at,
        snap.machines.len(),
        totals.procs
    );
    let line = |cells: &[String]| -> String {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            } else {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
        }
        s.trim_end().to_string()
    };
    let header: Vec<String> = HEADERS.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        let _ = writeln!(out, "{}", line(&row));
    }

    if !totals.traffic.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "traffic by class (cluster total):");
        let wc = totals
            .traffic
            .iter()
            .map(|(c, _, _)| c.len())
            .max()
            .unwrap_or(0)
            .max(5);
        for (class, msgs, bytes) in &totals.traffic {
            let _ = writeln!(out, "  {class:<wc$}  {msgs:>8} msgs  {bytes:>10} B");
        }
    }
    out
}

/// One migration's row in the phase panel. Times are microsecond
/// durations (`None` = phase never reached); the producer (`demos-sim`'s
/// phase profiler) fills them from reconstructed lifecycle spans.
#[derive(Debug, Clone, Default)]
pub struct PhasePanelRow {
    /// Process label (`p0.1`).
    pub pid: String,
    /// `src->dest` label (`m0->m2`; `m0->?` if no destination committed).
    pub route: String,
    /// `completed`, `rejected`, `aborted` or `in-flight`.
    pub outcome: String,
    /// Frozen → allocated (steps 1–3).
    pub negotiation_us: Option<u64>,
    /// Allocated → image transferred (steps 4–5).
    pub transfer_us: Option<u64>,
    /// Bytes moved during state+image transfer.
    pub bytes: u64,
    /// Image transferred → restarted (step 8).
    pub restart_us: Option<u64>,
    /// Frozen → restarted: the process's total off-cpu window.
    pub frozen_us: Option<u64>,
    /// Cleanup → last forwarded message / collection: how long the
    /// forwarding address stayed hot (§4).
    pub residual_us: Option<u64>,
    /// Messages that chased the forwarding address.
    pub forwards: u64,
}

/// Render the `demos-top` migration-phase panel: one aligned row per
/// migration, §6's cost table shape.
pub fn render_phase_panel(rows: &[PhasePanelRow]) -> String {
    const PH: [&str; 10] = [
        "pid", "route", "outcome", "negot", "xfer", "bytes", "restart", "frozen", "resid", "fwds",
    ];
    let opt = |v: Option<u64>| v.map(|u| u.to_string()).unwrap_or_else(|| "-".to_string());
    let cells: Vec<[String; 10]> = rows
        .iter()
        .map(|r| {
            [
                r.pid.clone(),
                r.route.clone(),
                r.outcome.clone(),
                opt(r.negotiation_us),
                opt(r.transfer_us),
                r.bytes.to_string(),
                opt(r.restart_us),
                opt(r.frozen_us),
                opt(r.residual_us),
                r.forwards.to_string(),
            ]
        })
        .collect();
    let mut widths: Vec<usize> = PH.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let line = |row: &[String]| -> String {
        let mut s = String::new();
        for (i, c) in row.iter().enumerate() {
            if i < 3 {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            } else {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
        }
        s.trim_end().to_string()
    };
    let mut out = String::new();
    let _ = writeln!(out, "migration phases (durations in us):");
    let header: Vec<String> = PH.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in &cells {
        let _ = writeln!(out, "{}", line(row));
    }
    if rows.is_empty() {
        let _ = writeln!(out, "(no migrations)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::Time;

    #[test]
    fn phase_panel_renders_rows_and_dashes() {
        let rows = vec![
            PhasePanelRow {
                pid: "p0.1".into(),
                route: "m0->m2".into(),
                outcome: "completed".into(),
                negotiation_us: Some(120),
                transfer_us: Some(800),
                bytes: 4096,
                restart_us: Some(60),
                frozen_us: Some(1000),
                residual_us: Some(2500),
                forwards: 3,
            },
            PhasePanelRow {
                pid: "p0.2".into(),
                route: "m0->?".into(),
                outcome: "rejected".into(),
                ..Default::default()
            },
        ];
        let text = render_phase_panel(&rows);
        assert!(text.contains("migration phases"), "{text}");
        assert!(text.lines().any(|l| l.starts_with("p0.1")), "{text}");
        assert!(text.contains("4096"), "{text}");
        let rejected = text.lines().find(|l| l.starts_with("p0.2")).unwrap();
        assert!(
            rejected.contains("rejected") && rejected.contains("-"),
            "{rejected}"
        );
        let empty = render_phase_panel(&[]);
        assert!(empty.contains("(no migrations)"), "{empty}");
    }

    #[test]
    fn renders_rows_totals_and_traffic() {
        let snap = ClusterSnapshot {
            at: Time::from_micros(2_000_000),
            machines: vec![
                MachineSnapshot {
                    machine: 0,
                    procs: 2,
                    runq: 1,
                    msgq: 3,
                    pending: 0,
                    links: 8,
                    forwarding: 1,
                    mem_used: 2048,
                    retransmits: 5,
                    dup_acks: 2,
                    dedup_drops: 1,
                    traffic: vec![("user", 10, 1000)],
                },
                MachineSnapshot {
                    machine: 1,
                    procs: 1,
                    ..Default::default()
                },
            ],
        };
        let text = render(&snap);
        assert!(
            text.contains("cluster @ 2.000s — 2 machines, 3 procs"),
            "{text}"
        );
        assert!(text.contains("machine"), "{text}");
        assert!(
            text.lines()
                .any(|l| l.starts_with("m0") && l.ends_with("1")),
            "{text}"
        );
        assert!(text.lines().any(|l| l.starts_with("TOTAL")), "{text}");
        assert!(text.contains("user") && text.contains("1000 B"), "{text}");
    }
}
