//! Correlation-id delivery ledger: the exactly-once bookkeeping behind
//! the chaos harness's delivery invariant.
//!
//! Every message is stamped with a [`CorrId`] on submission, and the
//! span reconstructor recovers its journey from the trace. This module
//! reduces those journeys to set arithmetic: the set of ids submitted,
//! the set delivered, the set that died non-deliverable. "No loss" is
//! `submitted ⊆ delivered ∪ failed` at quiescence; "no duplication" is
//! that no id is delivered twice without an intervening forward (a
//! held-then-forwarded message is legitimately enqueued once per hop of
//! its §4 forwarding chain, so a plain delivery count would over-flag).

use std::collections::{BTreeMap, BTreeSet};

use demos_types::CorrId;

/// One observed step of a message's life, as the ledger cares about it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryEvent {
    /// Stamped and entered the delivery system.
    Submitted,
    /// Reached a process queue or the kernel.
    Delivered,
    /// Resubmitted along a forwarding address (§4); the next delivery is
    /// a re-delivery of the same message, not a duplicate.
    Forwarded,
    /// Dropped as non-deliverable.
    Failed,
}

#[derive(Clone, Copy, Debug, Default)]
struct CorrState {
    submitted: bool,
    deliveries: u32,
    deliveries_since_forward: u32,
    failed: bool,
}

/// Per-[`CorrId`] delivery accounting. Feed it every traced event (in
/// trace order) via [`DeliveryLedger::record`], then ask for violations.
#[derive(Clone, Debug, Default)]
pub struct DeliveryLedger {
    per: BTreeMap<CorrId, CorrState>,
    duplicates: BTreeSet<CorrId>,
}

impl DeliveryLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event of `corr`'s journey. Events must arrive in trace
    /// (= virtual time) order for duplicate detection to be meaningful.
    pub fn record(&mut self, corr: CorrId, ev: DeliveryEvent) {
        let st = self.per.entry(corr).or_default();
        match ev {
            DeliveryEvent::Submitted => st.submitted = true,
            DeliveryEvent::Delivered => {
                st.deliveries += 1;
                st.deliveries_since_forward += 1;
                if st.deliveries_since_forward > 1 {
                    self.duplicates.insert(corr);
                }
            }
            DeliveryEvent::Forwarded => st.deliveries_since_forward = 0,
            DeliveryEvent::Failed => st.failed = true,
        }
    }

    /// Ids submitted but neither delivered nor failed — lost messages, if
    /// the cluster is quiescent.
    pub fn undelivered(&self) -> Vec<CorrId> {
        self.per
            .iter()
            .filter(|(_, s)| s.submitted && s.deliveries == 0 && !s.failed)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Ids delivered more than once without an intervening forward.
    pub fn duplicates(&self) -> Vec<CorrId> {
        self.duplicates.iter().copied().collect()
    }

    /// Ids that ended non-deliverable.
    pub fn failed(&self) -> Vec<CorrId> {
        self.per
            .iter()
            .filter(|(_, s)| s.failed)
            .map(|(c, _)| *c)
            .collect()
    }

    /// The set of submitted ids.
    pub fn submitted_set(&self) -> BTreeSet<CorrId> {
        self.per
            .iter()
            .filter(|(_, s)| s.submitted)
            .map(|(c, _)| *c)
            .collect()
    }

    /// The set of delivered ids.
    pub fn delivered_set(&self) -> BTreeSet<CorrId> {
        self.per
            .iter()
            .filter(|(_, s)| s.deliveries > 0)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Number of ids the ledger has seen any event for.
    pub fn len(&self) -> usize {
        self.per.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.per.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::MachineId;

    fn c(n: u64) -> CorrId {
        CorrId::new(MachineId(0), n)
    }

    #[test]
    fn clean_journey_has_no_violations() {
        let mut l = DeliveryLedger::new();
        l.record(c(1), DeliveryEvent::Submitted);
        l.record(c(1), DeliveryEvent::Delivered);
        assert!(l.undelivered().is_empty());
        assert!(l.duplicates().is_empty());
        assert_eq!(l.delivered_set().len(), 1);
    }

    #[test]
    fn lost_message_is_undelivered() {
        let mut l = DeliveryLedger::new();
        l.record(c(1), DeliveryEvent::Submitted);
        l.record(c(2), DeliveryEvent::Submitted);
        l.record(c(2), DeliveryEvent::Delivered);
        assert_eq!(l.undelivered(), vec![c(1)]);
    }

    #[test]
    fn forwarded_redelivery_is_not_a_duplicate() {
        let mut l = DeliveryLedger::new();
        l.record(c(1), DeliveryEvent::Submitted);
        // Enqueued on the frozen process, forwarded after the move,
        // enqueued again at the destination (§3.1 step 6).
        l.record(c(1), DeliveryEvent::Delivered);
        l.record(c(1), DeliveryEvent::Forwarded);
        l.record(c(1), DeliveryEvent::Delivered);
        assert!(l.duplicates().is_empty());
        // A second delivery with no forward in between IS a duplicate.
        l.record(c(1), DeliveryEvent::Delivered);
        assert_eq!(l.duplicates(), vec![c(1)]);
    }

    #[test]
    fn failed_message_is_accounted_not_lost() {
        let mut l = DeliveryLedger::new();
        l.record(c(1), DeliveryEvent::Submitted);
        l.record(c(1), DeliveryEvent::Failed);
        assert!(l.undelivered().is_empty());
        assert_eq!(l.failed(), vec![c(1)]);
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }
}
