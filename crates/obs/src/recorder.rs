//! The flight recorder: a bounded, allocation-free binary ring of
//! compact kernel events.
//!
//! Full traces grow without bound — no long-running cluster can keep
//! one. The flight recorder is the black box instead: every node owns a
//! fixed-capacity ring of 32-byte [`Record`]s, always on, overwriting
//! the oldest entry once full. When something goes wrong (a chaos
//! invariant trips, a machine is declared dead) the ring is dumped
//! post-mortem; per-node dumps merge by virtual time into one cluster
//! timeline.
//!
//! This crate defines the *format* — the record layout, the kind/phase
//! namespaces, the dump framing — but never sees the kernel's
//! `TraceEvent` type (obs depends only on `demos-types`). The
//! event→record encoder lives in `demos-sim`, which sees both sides.
//!
//! ## Record layout (32 bytes, little-endian)
//!
//! | field     | bytes | meaning                                        |
//! |-----------|-------|------------------------------------------------|
//! | `at`      | 8     | virtual time, microseconds                     |
//! | `a`       | 8     | corr id (message kinds) / packed pid (others)  |
//! | `b`       | 8     | second operand: packed pid, bytes moved, …     |
//! | `c`       | 4     | small operand: msg type, machine, count        |
//! | `machine` | 2     | recording machine                              |
//! | `kind`    | 1     | event kind (see [`kind`])                      |
//! | `arg`     | 2×1   | sub-kind: migration phase, hops, status        |
//!
//! Pids pack as `machine << 32 | local_uid` (48 bits). The encoding is
//! deliberately lossy — program names and log text are dropped — because
//! the recorder's job is bounded cost, not archival; the unbounded
//! [`crate::json`] trace still exists for tests.

use crate::hist::Histogram;

/// Event-kind namespace. Values are wire format — append, never renumber.
pub mod kind {
    /// Process created.
    pub const SPAWNED: u8 = 1;
    /// Process exited.
    pub const EXITED: u8 = 2;
    /// Message entered the delivery system (corr id assigned).
    pub const SUBMITTED: u8 = 3;
    /// Message enqueued on a local process.
    pub const ENQUEUED: u8 = 4;
    /// Message delivered to a kernel (`DELIVERTOKERNEL`).
    pub const KERNEL_RECEIVED: u8 = 5;
    /// Message hit a forwarding address and was resubmitted (§4).
    pub const FORWARDED: u8 = 6;
    /// Link update sent toward a stale sender (§5).
    pub const LINK_UPDATE_SENT: u8 = 7;
    /// Link update applied (links patched) (§5).
    pub const LINK_UPDATE_APPLIED: u8 = 8;
    /// Message had no destination and no forwarding address.
    pub const NON_DELIVERABLE: u8 = 9;
    /// Migration lifecycle marker; `arg` is a [`super::phase`] constant,
    /// `a` the packed pid, `b` the bytes stamped on transfer phases.
    pub const MIGRATION: u8 = 10;
    /// Forwarding address installed (step 7); `c` is the target machine.
    pub const FORWARDING_INSTALLED: u8 = 11;
    /// Forwarding address garbage-collected.
    pub const FORWARDING_COLLECTED: u8 = 12;
    /// Move-data operation finished; `b` bytes, `arg` status.
    pub const MOVE_DATA_DONE: u8 = 13;
    /// Program log line (text dropped; only the pid survives).
    pub const LOG: u8 = 14;
}

/// Migration-phase namespace for [`kind::MIGRATION`] records, in §3.1
/// step order. Values are wire format — append, never renumber.
pub mod phase {
    /// Step 1: frozen at the source.
    pub const FROZEN: u8 = 0;
    /// Step 2: offered to the destination.
    pub const OFFERED: u8 = 1;
    /// Step 3: allocated at the destination.
    pub const ALLOCATED: u8 = 2;
    /// Offer refused.
    pub const REJECTED: u8 = 3;
    /// Step 4: process state transferred.
    pub const STATE_TRANSFERRED: u8 = 4;
    /// Step 5: memory image transferred.
    pub const IMAGE_TRANSFERRED: u8 = 5;
    /// Step 6: pending messages forwarded.
    pub const PENDING_FORWARDED: u8 = 6;
    /// Step 7: source cleaned up, forwarding address left.
    pub const CLEANED_UP: u8 = 7;
    /// Step 8: restarted at the destination.
    pub const RESTARTED: u8 = 8;
    /// Migration abandoned; process resumed at the source.
    pub const ABORTED: u8 = 9;
}

/// Human name of a [`kind`] constant.
pub fn kind_name(k: u8) -> &'static str {
    match k {
        kind::SPAWNED => "spawned",
        kind::EXITED => "exited",
        kind::SUBMITTED => "submitted",
        kind::ENQUEUED => "enqueued",
        kind::KERNEL_RECEIVED => "kernel_received",
        kind::FORWARDED => "forwarded",
        kind::LINK_UPDATE_SENT => "link_update_sent",
        kind::LINK_UPDATE_APPLIED => "link_update_applied",
        kind::NON_DELIVERABLE => "non_deliverable",
        kind::MIGRATION => "migration",
        kind::FORWARDING_INSTALLED => "forwarding_installed",
        kind::FORWARDING_COLLECTED => "forwarding_collected",
        kind::MOVE_DATA_DONE => "move_data_done",
        kind::LOG => "log",
        _ => "unknown",
    }
}

/// Human name of a [`phase`] constant.
pub fn phase_name(p: u8) -> &'static str {
    match p {
        phase::FROZEN => "frozen",
        phase::OFFERED => "offered",
        phase::ALLOCATED => "allocated",
        phase::REJECTED => "rejected",
        phase::STATE_TRANSFERRED => "state_transferred",
        phase::IMAGE_TRANSFERRED => "image_transferred",
        phase::PENDING_FORWARDED => "pending_forwarded",
        phase::CLEANED_UP => "cleaned_up",
        phase::RESTARTED => "restarted",
        phase::ABORTED => "aborted",
        _ => "unknown",
    }
}

/// [`phase`] constant for a lowercase name (CLI filter syntax).
pub fn phase_by_name(name: &str) -> Option<u8> {
    (0..=phase::ABORTED).find(|&p| phase_name(p).eq_ignore_ascii_case(name))
}

/// Pack a process id (creating machine, local uid) into 48 bits.
pub fn pack_pid(machine: u16, uid: u32) -> u64 {
    (machine as u64) << 32 | uid as u64
}

/// Unpack [`pack_pid`]'s encoding.
pub fn unpack_pid(packed: u64) -> (u16, u32) {
    ((packed >> 32) as u16, packed as u32)
}

/// One fixed-size recorder entry. See the module docs for the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Record {
    /// Virtual time, microseconds.
    pub at: u64,
    /// Primary operand: corr id for message kinds, packed pid otherwise.
    pub a: u64,
    /// Secondary operand (packed pid, bytes, …).
    pub b: u64,
    /// Small operand (msg type, machine id, count).
    pub c: u32,
    /// Machine whose kernel recorded the event.
    pub machine: u16,
    /// Event kind (a [`kind`] constant).
    pub kind: u8,
    /// Sub-kind: migration phase, hop count, status.
    pub arg: u8,
}

/// Encoded size of one record.
pub const RECORD_BYTES: usize = 32;

impl Record {
    /// Serialize little-endian into exactly [`RECORD_BYTES`] bytes.
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..8].copy_from_slice(&self.at.to_le_bytes());
        out[8..16].copy_from_slice(&self.a.to_le_bytes());
        out[16..24].copy_from_slice(&self.b.to_le_bytes());
        out[24..28].copy_from_slice(&self.c.to_le_bytes());
        out[28..30].copy_from_slice(&self.machine.to_le_bytes());
        out[30] = self.kind;
        out[31] = self.arg;
        out
    }

    /// Deserialize [`to_bytes`](Self::to_bytes)' encoding.
    pub fn from_bytes(b: &[u8; RECORD_BYTES]) -> Record {
        let u64at = |r: std::ops::Range<usize>| {
            let mut x = [0u8; 8];
            x.copy_from_slice(&b[r]);
            u64::from_le_bytes(x)
        };
        Record {
            at: u64at(0..8),
            a: u64at(8..16),
            b: u64at(16..24),
            c: u32::from_le_bytes([b[24], b[25], b[26], b[27]]),
            machine: u16::from_le_bytes([b[28], b[29]]),
            kind: b[30],
            arg: b[31],
        }
    }
}

/// Render one record as a text line (postmortems, `demos-trace`).
pub fn render_record(r: &Record) -> String {
    let pid = |p: u64| {
        let (m, u) = unpack_pid(p);
        format!("p{m}.{u}")
    };
    let corr = |c: u64| {
        if c == 0 {
            "corr:-".to_string()
        } else {
            format!("corr:m{}/{}", c >> 48, c & 0xFFFF_FFFF_FFFF)
        }
    };
    let body = match r.kind {
        kind::MIGRATION => format!("{} {} bytes={}", pid(r.a), phase_name(r.arg), r.b),
        kind::SPAWNED | kind::EXITED | kind::LOG | kind::FORWARDING_COLLECTED => pid(r.a),
        kind::FORWARDING_INSTALLED => format!("{} -> m{}", pid(r.a), r.c),
        kind::MOVE_DATA_DONE => format!("op={} bytes={} status={}", r.a, r.b, r.arg),
        kind::FORWARDED => format!(
            "{} {} -> m{} type={}",
            corr(r.a),
            pid(r.b),
            r.c >> 16,
            r.c & 0xFFFF
        ),
        kind::ENQUEUED => format!(
            "{} {} type={} hops={}",
            corr(r.a),
            pid(r.b & 0xFFFF_FFFF_FFFF),
            r.c & 0xFFFF,
            r.arg
        ),
        kind::LINK_UPDATE_SENT | kind::LINK_UPDATE_APPLIED => {
            format!("{} {} c={}", corr(r.a), pid(r.b), r.c)
        }
        kind::SUBMITTED | kind::KERNEL_RECEIVED | kind::NON_DELIVERABLE => {
            format!("{} {} type={}", corr(r.a), pid(r.b), r.c & 0xFFFF)
        }
        _ => format!("a={:#x} b={:#x} c={}", r.a, r.b, r.c),
    };
    format!(
        "[{:>10}us m{}] {:<20} {}",
        r.at,
        r.machine,
        kind_name(r.kind),
        body
    )
}

/// Dump-section magic: format version 1.
pub const MAGIC: [u8; 8] = *b"DMFR1\0\0\0";

/// Encoded size of one per-node dump header.
pub const HEADER_BYTES: usize = 32;

/// One node's bounded event ring.
///
/// Allocation happens once, in [`new`](Self::new); recording is an index
/// write. A capacity of zero disables the recorder entirely (recording
/// becomes a no-op) — the benchmark's A/B switch.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    machine: u16,
    cap: usize,
    buf: Vec<Record>,
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder for `machine` holding at most `capacity` records.
    pub fn new(machine: u16, capacity: usize) -> Self {
        FlightRecorder {
            machine,
            cap: capacity,
            buf: Vec::with_capacity(capacity),
            next: 0,
            total: 0,
        }
    }

    /// The recording machine.
    pub fn machine(&self) -> u16 {
        self.machine
    }

    /// Ring capacity (zero = disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events recorded over the recorder's lifetime (including ones the
    /// ring has since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Record one event, overwriting the oldest once the ring is full.
    pub fn record(&mut self, rec: Record) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
        }
        self.next += 1;
        if self.next == self.cap {
            self.next = 0;
        }
        self.total += 1;
    }

    /// Held records in chronological order (oldest first), unrolling the
    /// ring.
    pub fn records(&self) -> Vec<Record> {
        if self.buf.len() < self.cap || self.cap == 0 {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// The last `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Record> {
        let recs = self.records();
        let skip = recs.len().saturating_sub(n);
        recs[skip..].to_vec()
    }

    /// Append this node's dump section (header + records) to `out`.
    pub fn dump_into(&self, out: &mut Vec<u8>) {
        let recs = self.records();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.machine.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
        out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.cap as u64).to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        for r in &recs {
            out.extend_from_slice(&r.to_bytes());
        }
    }

    /// This node's dump as a standalone byte vector.
    pub fn dump(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.len() * RECORD_BYTES);
        self.dump_into(&mut out);
        out
    }
}

/// One parsed per-node dump section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDump {
    /// The recording machine.
    pub machine: u16,
    /// Ring capacity at dump time.
    pub capacity: u64,
    /// Lifetime events recorded (≥ `records.len()`).
    pub total: u64,
    /// Held records, oldest first.
    pub records: Vec<Record>,
}

impl NodeDump {
    /// Events the ring overwrote before the dump.
    pub fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.records.len() as u64)
    }
}

/// Parse a dump: one or more concatenated per-node sections.
pub fn parse_dump(bytes: &[u8]) -> Result<Vec<NodeDump>, String> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < HEADER_BYTES {
            return Err(format!("truncated header at offset {off}"));
        }
        if rest[0..8] != MAGIC {
            return Err(format!("bad magic at offset {off}"));
        }
        let machine = u16::from_le_bytes([rest[8], rest[9]]);
        let len = u32::from_le_bytes([rest[12], rest[13], rest[14], rest[15]]) as usize;
        let mut x = [0u8; 8];
        x.copy_from_slice(&rest[16..24]);
        let capacity = u64::from_le_bytes(x);
        x.copy_from_slice(&rest[24..32]);
        let total = u64::from_le_bytes(x);
        let body = len
            .checked_mul(RECORD_BYTES)
            .ok_or_else(|| format!("length overflow at offset {off}"))?;
        if rest.len() < HEADER_BYTES + body {
            return Err(format!(
                "truncated records at offset {off}: want {body} bytes"
            ));
        }
        let mut records = Vec::with_capacity(len);
        for i in 0..len {
            let start = HEADER_BYTES + i * RECORD_BYTES;
            let mut rb = [0u8; RECORD_BYTES];
            rb.copy_from_slice(&rest[start..start + RECORD_BYTES]);
            records.push(Record::from_bytes(&rb));
        }
        out.push(NodeDump {
            machine,
            capacity,
            total,
            records,
        });
        off += HEADER_BYTES + body;
    }
    Ok(out)
}

/// Merge per-node dumps into one cluster timeline, ordered by virtual
/// time (ties broken by machine id; each node's own order is preserved —
/// the sort is stable).
pub fn merge(dumps: &[NodeDump]) -> Vec<Record> {
    let mut all: Vec<Record> = dumps
        .iter()
        .flat_map(|d| d.records.iter().copied())
        .collect();
    all.sort_by_key(|r| (r.at, r.machine));
    all
}

/// Per-phase duration histograms reconstructed from the
/// [`kind::MIGRATION`] records of a merged timeline. The recorder's own
/// phase view — `demos-trace` builds its percentile tables from this
/// without ever seeing the kernel's types.
#[derive(Debug, Clone, Default)]
pub struct PhaseTable {
    /// Frozen → allocated (steps 1–3): negotiation.
    pub negotiation: Histogram,
    /// Allocated → image transferred (steps 4–5): state+image transfer.
    pub transfer: Histogram,
    /// Image transferred → restarted (step 8): restart.
    pub restart: Histogram,
    /// Frozen → restarted: total freeze time.
    pub total: Histogram,
    /// Bytes stamped on transfer-phase records.
    pub bytes: Histogram,
    /// Completed migrations seen.
    pub completed: u64,
    /// Rejected or aborted migrations seen.
    pub failed: u64,
}

impl PhaseTable {
    /// Build from a time-ordered record slice.
    pub fn from_records(records: &[Record]) -> PhaseTable {
        // Open lifecycle per packed pid: (frozen, allocated, image, bytes).
        let mut open: std::collections::BTreeMap<u64, (u64, Option<u64>, Option<u64>, u64)> =
            std::collections::BTreeMap::new();
        let mut t = PhaseTable::default();
        for r in records {
            if r.kind != kind::MIGRATION {
                continue;
            }
            match r.arg {
                phase::FROZEN => {
                    open.insert(r.a, (r.at, None, None, 0));
                }
                phase::ALLOCATED => {
                    if let Some(lc) = open.get_mut(&r.a) {
                        lc.1.get_or_insert(r.at);
                    }
                }
                phase::STATE_TRANSFERRED | phase::IMAGE_TRANSFERRED => {
                    if let Some(lc) = open.get_mut(&r.a) {
                        if r.arg == phase::IMAGE_TRANSFERRED {
                            lc.2.get_or_insert(r.at);
                        }
                        lc.3 = lc.3.max(r.b);
                    }
                }
                phase::RESTARTED => {
                    if let Some((frozen, allocated, image, bytes)) = open.remove(&r.a) {
                        if let Some(a) = allocated {
                            t.negotiation.record(a.saturating_sub(frozen));
                            if let Some(i) = image {
                                t.transfer.record(i.saturating_sub(a));
                                t.restart.record(r.at.saturating_sub(i));
                            }
                        }
                        t.total.record(r.at.saturating_sub(frozen));
                        if bytes > 0 {
                            t.bytes.record(bytes);
                        }
                        t.completed += 1;
                    }
                }
                phase::REJECTED | phase::ABORTED if open.remove(&r.a).is_some() => {
                    t.failed += 1;
                }
                _ => {}
            }
        }
        t
    }

    /// Percentile table, one row per phase — the `demos-trace` output.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "phase", "n", "p50", "p90", "p99", "p999", "max"
        );
        for (name, h) in [
            ("negotiation", &self.negotiation),
            ("transfer", &self.transfer),
            ("restart", &self.restart),
            ("total", &self.total),
            ("bytes", &self.bytes),
        ] {
            s.push_str(&format!(
                "{:<14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.max()
            ));
        }
        s.push_str(&format!(
            "migrations: {} completed, {} rejected/aborted\n",
            self.completed, self.failed
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, machine: u16, kind_: u8, a: u64) -> Record {
        Record {
            at,
            a,
            b: 0,
            c: 0,
            machine,
            kind: kind_,
            arg: 0,
        }
    }

    #[test]
    fn record_roundtrips_through_bytes() {
        let r = Record {
            at: 123_456_789,
            a: pack_pid(3, 42),
            b: u64::MAX - 5,
            c: 0xDEAD_BEEF,
            machine: 7,
            kind: kind::MIGRATION,
            arg: phase::RESTARTED,
        };
        assert_eq!(Record::from_bytes(&r.to_bytes()), r);
    }

    #[test]
    fn pid_packing_roundtrips() {
        for (m, u) in [(0u16, 0u32), (1, 7), (u16::MAX, u32::MAX)] {
            assert_eq!(unpack_pid(pack_pid(m, u)), (m, u));
        }
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut fr = FlightRecorder::new(0, 4);
        for i in 0..10u64 {
            fr.record(rec(i, 0, kind::EXITED, i));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total_recorded(), 10);
        let ats: Vec<u64> = fr.records().iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![6, 7, 8, 9], "oldest overwritten, order kept");
        assert_eq!(fr.tail(2).iter().map(|r| r.at).collect::<Vec<_>>(), [8, 9]);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut fr = FlightRecorder::new(0, 0);
        fr.record(rec(1, 0, kind::EXITED, 1));
        assert!(fr.is_empty());
        assert_eq!(fr.total_recorded(), 0);
        let parsed = parse_dump(&fr.dump()).unwrap();
        assert_eq!(parsed[0].records.len(), 0);
    }

    #[test]
    fn dump_parse_merge_roundtrip() {
        let mut a = FlightRecorder::new(0, 8);
        let mut b = FlightRecorder::new(1, 8);
        a.record(rec(10, 0, kind::SPAWNED, pack_pid(0, 1)));
        a.record(rec(30, 0, kind::EXITED, pack_pid(0, 1)));
        b.record(rec(20, 1, kind::SPAWNED, pack_pid(1, 1)));
        let mut bytes = a.dump();
        b.dump_into(&mut bytes);
        let dumps = parse_dump(&bytes).unwrap();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].machine, 0);
        assert_eq!(dumps[0].records.len(), 2);
        assert_eq!(dumps[1].machine, 1);
        let merged = merge(&dumps);
        let ats: Vec<u64> = merged.iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![10, 20, 30], "merged by virtual time");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_dump(&[0u8; 10]).is_err(), "truncated header");
        let mut fr = FlightRecorder::new(0, 2);
        fr.record(rec(1, 0, kind::EXITED, 0));
        let mut bytes = fr.dump();
        bytes[0] = b'X';
        assert!(parse_dump(&bytes).is_err(), "bad magic");
        let mut fr2 = FlightRecorder::new(0, 2);
        fr2.record(rec(1, 0, kind::EXITED, 0));
        let mut short = fr2.dump();
        short.truncate(short.len() - 1);
        assert!(parse_dump(&short).is_err(), "truncated records");
    }

    #[test]
    fn dumps_are_deterministic() {
        let build = || {
            let mut fr = FlightRecorder::new(2, 16);
            for i in 0..40u64 {
                fr.record(rec(i * 3, 2, kind::ENQUEUED, i));
            }
            fr.dump()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn phase_table_reconstructs_a_lifecycle() {
        let p = pack_pid(0, 1);
        let mig = |at: u64, ph: u8, b: u64| Record {
            at,
            a: p,
            b,
            c: 0,
            machine: 0,
            kind: kind::MIGRATION,
            arg: ph,
        };
        let recs = vec![
            mig(100, phase::FROZEN, 0),
            mig(110, phase::OFFERED, 4096),
            mig(120, phase::ALLOCATED, 0),
            mig(150, phase::STATE_TRANSFERRED, 1024),
            mig(200, phase::IMAGE_TRANSFERRED, 4096),
            mig(230, phase::RESTARTED, 0),
        ];
        let t = PhaseTable::from_records(&recs);
        assert_eq!(t.completed, 1);
        assert_eq!(t.failed, 0);
        assert_eq!(t.negotiation.count(), 1);
        assert_eq!(t.negotiation.max(), 20);
        assert_eq!(t.transfer.max(), 80);
        assert_eq!(t.restart.max(), 30);
        assert_eq!(t.total.max(), 130);
        assert_eq!(t.bytes.max(), 4096);
        let table = t.render();
        assert!(table.contains("p50"), "{table}");
        assert!(table.contains("p999"), "{table}");
    }

    #[test]
    fn phase_table_counts_failures() {
        let p = pack_pid(0, 2);
        let mig = |at: u64, ph: u8| Record {
            at,
            a: p,
            b: 0,
            c: 0,
            machine: 0,
            kind: kind::MIGRATION,
            arg: ph,
        };
        let t = PhaseTable::from_records(&[
            mig(10, phase::FROZEN),
            mig(20, phase::OFFERED),
            mig(30, phase::REJECTED),
        ]);
        assert_eq!(t.completed, 0);
        assert_eq!(t.failed, 1);
        assert!(t.total.is_empty());
    }

    #[test]
    fn render_record_names_the_kind() {
        let r = Record {
            at: 42,
            a: pack_pid(1, 9),
            b: 2048,
            c: 0,
            machine: 1,
            kind: kind::MIGRATION,
            arg: phase::STATE_TRANSFERRED,
        };
        let line = render_record(&r);
        assert!(line.contains("migration"), "{line}");
        assert!(line.contains("p1.9"), "{line}");
        assert!(line.contains("state_transferred"), "{line}");
        assert!(line.contains("bytes=2048"), "{line}");
    }

    #[test]
    fn phase_names_roundtrip() {
        for p in 0..=phase::ABORTED {
            assert_eq!(phase_by_name(phase_name(p)), Some(p));
        }
        assert_eq!(phase_by_name("nope"), None);
    }
}
