//! Virtual-time series: registries sampled on a fixed cadence.
//!
//! The simulator calls [`SeriesStore::record`] whenever a sample is
//! [`SeriesStore::due`]; each metric of each machine becomes its own
//! [`TimeSeries`] keyed `"m{machine}.{metric}"`. Points are appended in
//! virtual-time order, so queries are simple scans over sorted data.

use crate::registry::MetricsRegistry;
use demos_types::{MachineId, Time};
use std::collections::BTreeMap;

/// One metric's samples over virtual time.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(Time, u64)>,
}

impl TimeSeries {
    /// Append a sample (times must be non-decreasing).
    pub fn push(&mut self, at: Time, value: u64) {
        debug_assert!(
            self.points.last().is_none_or(|&(t, _)| t <= at),
            "samples out of order"
        );
        self.points.push((at, value));
    }

    /// All samples in time order.
    pub fn points(&self) -> &[(Time, u64)] {
        &self.points
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(Time, u64)> {
        self.points.last().copied()
    }

    /// Largest sampled value.
    pub fn max(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Samples falling in `[from, to)`.
    pub fn between(&self, from: Time, to: Time) -> impl Iterator<Item = (Time, u64)> + '_ {
        self.points
            .iter()
            .copied()
            .filter(move |&(t, _)| from <= t && t < to)
    }
}

/// All time series of one simulation run, sampled on a fixed cadence.
#[derive(Debug, Clone)]
pub struct SeriesStore {
    cadence: demos_types::Duration,
    next_due: Time,
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesStore {
    /// Store sampling every `cadence` of virtual time (first sample at
    /// the epoch).
    pub fn new(cadence: demos_types::Duration) -> Self {
        assert!(cadence.as_micros() > 0, "sampling cadence must be positive");
        SeriesStore {
            cadence,
            next_due: Time::ZERO,
            series: BTreeMap::new(),
        }
    }

    /// The configured cadence.
    pub fn cadence(&self) -> demos_types::Duration {
        self.cadence
    }

    /// Whether a sample is due at `now`.
    pub fn due(&self, now: Time) -> bool {
        now >= self.next_due
    }

    /// The next instant at which a sample becomes due. The sharded
    /// executor clips its parallel windows here so samples are taken at
    /// the same virtual instants, in the same machine order, as the
    /// sequential loop.
    pub fn next_due(&self) -> Time {
        self.next_due
    }

    /// Record one machine's registry at `now`. The caller samples every
    /// machine at the same instant, then calls [`SeriesStore::advance`].
    pub fn record(&mut self, now: Time, machine: MachineId, registry: &MetricsRegistry) {
        for (name, v) in registry.counters().chain(registry.gauges()) {
            self.series
                .entry(format!("m{}.{}", machine.0, name))
                .or_default()
                .push(now, v);
        }
    }

    /// Advance the next-due instant past `now`, keeping the grid aligned
    /// to multiples of the cadence so cadence changes in config don't
    /// shift sample times of unrelated metrics.
    pub fn advance(&mut self, now: Time) {
        let c = self.cadence.as_micros();
        let next = (now.as_micros() / c + 1) * c;
        self.next_due = Time::from_micros(next);
    }

    /// Fetch one series by key (`"m0.runq_depth"`, …).
    pub fn series(&self, key: &str) -> Option<&TimeSeries> {
        self.series.get(key)
    }

    /// All series, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> + '_ {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demos_types::Duration;

    #[test]
    fn cadence_gates_samples() {
        let mut s = SeriesStore::new(Duration::from_millis(10));
        assert!(s.due(Time::ZERO));
        let mut r = MetricsRegistry::new();
        r.gauge_set("runq", 3);
        s.record(Time::ZERO, MachineId(0), &r);
        s.advance(Time::ZERO);
        assert!(!s.due(Time::from_micros(9_999)));
        assert!(s.due(Time::from_micros(10_000)));
        r.gauge_set("runq", 5);
        s.record(Time::from_micros(10_000), MachineId(0), &r);
        s.advance(Time::from_micros(10_000));
        let series = s.series("m0.runq").unwrap();
        assert_eq!(
            series.points(),
            &[(Time::ZERO, 3), (Time::from_micros(10_000), 5)]
        );
        assert_eq!(series.max(), 5);
    }

    #[test]
    fn advance_keeps_grid_aligned() {
        let mut s = SeriesStore::new(Duration::from_millis(1));
        // Sample fires late (event at 2.7 ms); next due snaps to 3 ms.
        s.advance(Time::from_micros(2_700));
        assert!(!s.due(Time::from_micros(2_999)));
        assert!(s.due(Time::from_micros(3_000)));
    }

    #[test]
    fn between_filters_half_open() {
        let mut ts = TimeSeries::default();
        for i in 0..5 {
            ts.push(Time::from_micros(i * 10), i);
        }
        let got: Vec<_> = ts
            .between(Time::from_micros(10), Time::from_micros(40))
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
    }
}
