//! Point-in-time cluster state for reports and exporters.
//!
//! A [`MachineSnapshot`] is what `demos-top` shows for one machine: how
//! many processes, how deep the queues, how big the kernel tables, and
//! what the reliable transport has been doing. [`ClusterSnapshot`] is
//! one instant across every machine plus derived totals.

use crate::json::Json;
use demos_types::{MachineId, Time};

/// One machine's observable state at an instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineSnapshot {
    /// Which machine.
    pub machine: u16,
    /// Resident processes.
    pub procs: usize,
    /// Runnable processes queued for CPU.
    pub runq: usize,
    /// Messages queued at process message queues.
    pub msgq: usize,
    /// Messages held on pending queues of in-migration processes (§3.1
    /// step 2 — these are forwarded at step 6).
    pub pending: usize,
    /// Link-table entries across resident processes.
    pub links: usize,
    /// Forwarding-address table entries (§4).
    pub forwarding: usize,
    /// Bytes of process memory in use.
    pub mem_used: u64,
    /// Data frames retransmitted by this machine's transport.
    pub retransmits: u64,
    /// Duplicate (no-progress) acks received.
    pub dup_acks: u64,
    /// Already-delivered data frames dropped by the dedup window.
    pub dedup_drops: u64,
    /// Remote messages sent, by class: `(class, messages, bytes)`.
    pub traffic: Vec<(&'static str, u64, u64)>,
}

impl MachineSnapshot {
    /// Serialize for the JSON-lines exporter.
    pub fn to_json(&self, at: Time) -> Json {
        Json::obj([
            ("kind", Json::str("machine")),
            ("at_us", Json::num(at.as_micros())),
            ("machine", Json::num(self.machine as u64)),
            ("procs", Json::num(self.procs as u64)),
            ("runq", Json::num(self.runq as u64)),
            ("msgq", Json::num(self.msgq as u64)),
            ("pending", Json::num(self.pending as u64)),
            ("links", Json::num(self.links as u64)),
            ("forwarding", Json::num(self.forwarding as u64)),
            ("mem_used", Json::num(self.mem_used)),
            ("retransmits", Json::num(self.retransmits)),
            ("dup_acks", Json::num(self.dup_acks)),
            ("dedup_drops", Json::num(self.dedup_drops)),
            (
                "traffic",
                Json::Arr(
                    self.traffic
                        .iter()
                        .map(|&(class, msgs, bytes)| {
                            Json::obj([
                                ("class", Json::str(class)),
                                ("msgs", Json::num(msgs)),
                                ("bytes", Json::num(bytes)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Every machine at one instant.
#[derive(Debug, Clone, Default)]
pub struct ClusterSnapshot {
    /// Virtual time of the snapshot.
    pub at: Time,
    /// Per-machine state, in machine order.
    pub machines: Vec<MachineSnapshot>,
}

impl ClusterSnapshot {
    /// Summed state across machines (the `TOTAL` row of the report).
    pub fn totals(&self) -> MachineSnapshot {
        let mut t = MachineSnapshot {
            machine: u16::MAX,
            ..Default::default()
        };
        let mut classes: Vec<(&'static str, u64, u64)> = Vec::new();
        for m in &self.machines {
            t.procs += m.procs;
            t.runq += m.runq;
            t.msgq += m.msgq;
            t.pending += m.pending;
            t.links += m.links;
            t.forwarding += m.forwarding;
            t.mem_used += m.mem_used;
            t.retransmits += m.retransmits;
            t.dup_acks += m.dup_acks;
            t.dedup_drops += m.dedup_drops;
            for &(class, msgs, bytes) in &m.traffic {
                match classes.iter_mut().find(|(c, _, _)| *c == class) {
                    Some(e) => {
                        e.1 += msgs;
                        e.2 += bytes;
                    }
                    None => classes.push((class, msgs, bytes)),
                }
            }
        }
        t.traffic = classes;
        t
    }

    /// Look up one machine's snapshot.
    pub fn machine(&self, m: MachineId) -> Option<&MachineSnapshot> {
        self.machines.iter().find(|s| s.machine == m.0)
    }

    /// Serialize every machine as one JSON line each.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for m in &self.machines {
            out.push_str(&m.to_json(self.at).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> ClusterSnapshot {
        ClusterSnapshot {
            at: Time::from_micros(1_000),
            machines: vec![
                MachineSnapshot {
                    machine: 0,
                    procs: 2,
                    runq: 1,
                    msgq: 4,
                    pending: 0,
                    links: 10,
                    forwarding: 1,
                    mem_used: 4096,
                    retransmits: 3,
                    dup_acks: 1,
                    dedup_drops: 2,
                    traffic: vec![("user", 7, 700), ("migrate", 4, 80)],
                },
                MachineSnapshot {
                    machine: 1,
                    procs: 1,
                    runq: 0,
                    msgq: 0,
                    pending: 5,
                    links: 3,
                    forwarding: 0,
                    mem_used: 1024,
                    retransmits: 0,
                    dup_acks: 0,
                    dedup_drops: 0,
                    traffic: vec![("user", 1, 100)],
                },
            ],
        }
    }

    #[test]
    fn totals_sum_machines_and_classes() {
        let t = sample().totals();
        assert_eq!(t.procs, 3);
        assert_eq!(t.pending, 5);
        assert_eq!(t.retransmits, 3);
        assert_eq!(t.traffic, vec![("user", 8, 800), ("migrate", 4, 80)]);
    }

    #[test]
    fn json_lines_roundtrip_via_parser() {
        let snap = sample();
        let lines = snap.to_json_lines();
        let parsed = json::parse_lines(&lines).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].u64_field("machine"), Some(0));
        assert_eq!(parsed[0].u64_field("retransmits"), Some(3));
        assert_eq!(parsed[1].u64_field("pending"), Some(5));
        let traffic = parsed[0].get("traffic").unwrap().as_arr().unwrap();
        assert_eq!(traffic[0].str_field("class"), Some("user"));
        assert_eq!(traffic[0].u64_field("bytes"), Some(700));
    }
}
