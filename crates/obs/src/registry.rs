//! Per-kernel metrics registry.
//!
//! A deliberately tiny abstraction: named monotonic **counters** and
//! instantaneous **gauges**, both `u64`. Names are `&'static str` so
//! recording a metric is a `BTreeMap` lookup with no allocation; the
//! ordered map keeps every export deterministic, which the simulator's
//! replay tests require of anything that can feed a trace.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Named counters, gauges and histograms for one kernel (one machine).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the counter `name` to `value` — for mirroring an externally
    /// maintained monotonic total (e.g. a kernel's lifetime stats).
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name` (zero if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Record `value` into the histogram `name` (creating it empty).
    pub fn hist_record(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// The histogram `name`, if any values were recorded into it.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All histograms, in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Merge another registry into this one: counters and gauges both
    /// add, so merging per-machine registries yields cluster totals
    /// (a cluster's "queue depth" gauge is the sum of its machines');
    /// histograms merge bucket-wise, so per-machine latency tails roll
    /// up into the cluster-wide distribution.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges() {
            *self.gauges.entry(name).or_insert(0) += v;
        }
        for (name, h) in other.hists() {
            self.hists.entry(name).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter_add("msgs", 2);
        r.counter_add("msgs", 3);
        r.gauge_set("runq", 7);
        r.gauge_set("runq", 4);
        assert_eq!(r.counter("msgs"), 5);
        assert_eq!(r.gauge("runq"), 4);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("absent"), 0);
    }

    #[test]
    fn merge_sums_both_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("msgs", 1);
        a.gauge_set("runq", 2);
        let mut b = MetricsRegistry::new();
        b.counter_add("msgs", 10);
        b.counter_add("drops", 1);
        b.gauge_set("runq", 5);
        a.merge(&b);
        assert_eq!(a.counter("msgs"), 11);
        assert_eq!(a.counter("drops"), 1);
        assert_eq!(a.gauge("runq"), 7);
    }

    #[test]
    fn histograms_record_and_merge() {
        let mut a = MetricsRegistry::new();
        a.hist_record("lat", 10);
        a.hist_record("lat", 1000);
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert!(a.hist("absent").is_none());
        let mut b = MetricsRegistry::new();
        b.hist_record("lat", 50);
        b.hist_record("other", 7);
        a.merge(&b);
        assert_eq!(a.hist("lat").unwrap().count(), 3);
        assert_eq!(a.hist("other").unwrap().count(), 1);
        let names: Vec<_> = a.hists().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["lat", "other"]);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zz", 1);
        r.counter_add("aa", 1);
        let names: Vec<_> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
