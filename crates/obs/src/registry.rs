//! Per-kernel metrics registry.
//!
//! A deliberately tiny abstraction: named monotonic **counters** and
//! instantaneous **gauges**, both `u64`. Names are `&'static str` so
//! recording a metric is a `BTreeMap` lookup with no allocation; the
//! ordered map keeps every export deterministic, which the simulator's
//! replay tests require of anything that can feed a trace.

use std::collections::BTreeMap;

/// Named counters and gauges for one kernel (one machine).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set the counter `name` to `value` — for mirroring an externally
    /// maintained monotonic total (e.g. a kernel's lifetime stats).
    pub fn counter_set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name` (zero if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Merge another registry into this one: counters and gauges both
    /// add, so merging per-machine registries yields cluster totals
    /// (a cluster's "queue depth" gauge is the sum of its machines').
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges() {
            *self.gauges.entry(name).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter_add("msgs", 2);
        r.counter_add("msgs", 3);
        r.gauge_set("runq", 7);
        r.gauge_set("runq", 4);
        assert_eq!(r.counter("msgs"), 5);
        assert_eq!(r.gauge("runq"), 4);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge("absent"), 0);
    }

    #[test]
    fn merge_sums_both_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("msgs", 1);
        a.gauge_set("runq", 2);
        let mut b = MetricsRegistry::new();
        b.counter_add("msgs", 10);
        b.counter_add("drops", 1);
        b.gauge_set("runq", 5);
        a.merge(&b);
        assert_eq!(a.counter("msgs"), 11);
        assert_eq!(a.counter("drops"), 1);
        assert_eq!(a.gauge("runq"), 7);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = MetricsRegistry::new();
        r.counter_add("zz", 1);
        r.counter_add("aa", 1);
        let names: Vec<_> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
