//! Schedule-coverage features decoded from flight-recorder streams.
//!
//! A *feature* is one element of the deterministic coverage map the
//! chaos fuzzer steers by: a protocol-state edge a kernel traversed, a
//! migration-phase transition, a forwarding-chain depth reached. Each is
//! a packed `u64` — `class << 56 | a << 28 | b` — so a whole run's
//! coverage is a small ordered integer set that merges, diffs and
//! serializes bytewise-deterministically ([`FeatureSet`]).
//!
//! This module owns the *encoding* (the id namespace every layer agrees
//! on) and the record-level *decoding*: [`extract_records`] derives the
//! record-visible classes from any flight-recorder dump, so
//! `demos-trace --coverage` can report coverage for a dump post-hoc
//! without the simulator in the loop. Classes that need more context
//! than the ring keeps — fault×phase pairs (the fault schedule lives in
//! the chaos scenario) and recovery-episode overlap (episodes live in
//! the sim's recovery manager) — are encoded here but extracted by the
//! layers that see that context (`demos-sim::coverage`, `demos-chaos`).

use crate::recorder::{kind, kind_name, phase_name, NodeDump, Record};
use std::collections::BTreeSet;

/// Feature-class namespace. Values are part of the corpus text format —
/// append, never renumber.
pub mod class {
    /// Protocol-state edge: consecutive record kinds on one machine,
    /// `a` = predecessor kind, `b` = successor kind.
    pub const KIND_EDGE: u8 = 1;
    /// Migration-phase edge for one migration: `a` = predecessor phase
    /// + 1 (0 = lifecycle start), `b` = phase.
    pub const PHASE_EDGE: u8 = 2;
    /// Forwarding-chain depth a delivery reached: `a` = hop bucket
    /// (0, 1, 2, 3, 4 = "4 or more").
    pub const FWD_DEPTH: u8 = 3;
    /// Fault kind × migration phase it landed in: `a` = fault kind
    /// (chaos event alphabet), `b` = phase + 1 (0 = no migration in
    /// flight). Extracted by `demos-chaos`, which sees the schedule.
    pub const FAULT_PHASE: u8 = 4;
    /// Concurrent recovery-episode count: `a` = overlap depth (capped
    /// at 3). Extracted by `demos-sim`, which sees the episodes.
    pub const RECOVERY_OVERLAP: u8 = 5;
    /// Invariant-violation variant observed: `a` = variant code.
    /// Extracted by `demos-chaos`.
    pub const VIOLATION: u8 = 6;
}

/// Pack a feature id. `a` and `b` must fit in 28 bits each.
pub fn feature(class: u8, a: u32, b: u32) -> u64 {
    debug_assert!(a < 1 << 28 && b < 1 << 28, "feature operand overflow");
    (class as u64) << 56 | ((a as u64) & 0x0FFF_FFFF) << 28 | (b as u64) & 0x0FFF_FFFF
}

/// Unpack [`feature`]'s encoding into `(class, a, b)`.
pub fn unpack(f: u64) -> (u8, u32, u32) {
    (
        (f >> 56) as u8,
        (f >> 28) as u32 & 0x0FFF_FFFF,
        f as u32 & 0x0FFF_FFFF,
    )
}

/// The forwarding-depth bucket for a hop count.
pub fn depth_bucket(hops: u32) -> u32 {
    hops.min(4)
}

/// Human rendering of a feature id. Classes whose operand names live in
/// other crates (`FAULT_PHASE`'s fault alphabet) get a generic form that
/// `demos-chaos` refines.
pub fn describe(f: u64) -> String {
    let (cl, a, b) = unpack(f);
    match cl {
        class::KIND_EDGE => format!("kind-edge {} -> {}", kind_name(a as u8), kind_name(b as u8)),
        class::PHASE_EDGE => {
            let from = if a == 0 {
                "start".to_string()
            } else {
                phase_name((a - 1) as u8).to_string()
            };
            format!("phase-edge {} -> {}", from, phase_name(b as u8))
        }
        class::FWD_DEPTH => {
            if a >= 4 {
                "forwarding-depth 4+".to_string()
            } else {
                format!("forwarding-depth {a}")
            }
        }
        class::FAULT_PHASE => {
            let ph = if b == 0 {
                "idle".to_string()
            } else {
                phase_name((b - 1) as u8).to_string()
            };
            format!("fault#{a} x {ph}")
        }
        class::RECOVERY_OVERLAP => format!("recovery-overlap {a}"),
        class::VIOLATION => format!("violation#{a}"),
        _ => format!("feature {f:#018x}"),
    }
}

/// Human name of a feature class.
pub fn class_name(cl: u8) -> &'static str {
    match cl {
        class::KIND_EDGE => "kind-edge",
        class::PHASE_EDGE => "phase-edge",
        class::FWD_DEPTH => "fwd-depth",
        class::FAULT_PHASE => "fault-phase",
        class::RECOVERY_OVERLAP => "recovery-overlap",
        class::VIOLATION => "violation",
        _ => "unknown",
    }
}

/// An ordered, deduplicated set of feature ids: one run's (or one
/// campaign's) schedule coverage. Ordering makes every derived artifact
/// — the serialized form, the distilled-corpus selection, the coverage
/// report — bytewise deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FeatureSet(BTreeSet<u64>);

impl FeatureSet {
    /// An empty set.
    pub fn new() -> FeatureSet {
        FeatureSet::default()
    }

    /// Insert one feature; returns whether it was new.
    pub fn insert(&mut self, f: u64) -> bool {
        self.0.insert(f)
    }

    /// Whether the set holds `f`.
    pub fn contains(&self, f: u64) -> bool {
        self.0.contains(&f)
    }

    /// Remove one feature; returns whether it was present.
    pub fn remove(&mut self, f: u64) -> bool {
        self.0.remove(&f)
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0.iter().copied()
    }

    /// Merge `other` in; returns how many features were new.
    pub fn merge(&mut self, other: &FeatureSet) -> usize {
        let before = self.0.len();
        self.0.extend(other.iter());
        self.0.len() - before
    }

    /// Features of `self` absent from `base`.
    pub fn novel_vs(&self, base: &FeatureSet) -> FeatureSet {
        FeatureSet(self.0.difference(&base.0).copied().collect())
    }

    /// Whether every feature of `self` is in `other`.
    pub fn is_subset(&self, other: &FeatureSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Per-class feature counts, ascending by class id.
    pub fn class_counts(&self) -> Vec<(u8, usize)> {
        let mut out: Vec<(u8, usize)> = Vec::new();
        for f in self.iter() {
            let cl = (f >> 56) as u8;
            match out.last_mut() {
                Some((c, n)) if *c == cl => *n += 1,
                _ => out.push((cl, 1)),
            }
        }
        out
    }

    /// Serialize: one lowercase hex id per line (stable; `parse_text`
    /// round-trips it).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.0.len() * 17);
        for f in self.iter() {
            s.push_str(&format!("{f:016x}\n"));
        }
        s
    }

    /// Parse [`to_text`](Self::to_text)'s form; `#` comments and blank
    /// lines are ignored.
    pub fn parse_text(text: &str) -> Result<FeatureSet, String> {
        let mut out = FeatureSet::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let f = u64::from_str_radix(line, 16)
                .map_err(|_| format!("line {}: bad feature id {line:?}", ln + 1))?;
            out.insert(f);
        }
        Ok(out)
    }
}

impl FromIterator<u64> for FeatureSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> FeatureSet {
        FeatureSet(iter.into_iter().collect())
    }
}

/// Extract the record-visible feature classes from one machine's
/// chronological record stream: kind edges between consecutive records,
/// phase edges per migration, and forwarding-depth buckets.
pub fn extract_node_records(records: &[Record], out: &mut FeatureSet) {
    let mut prev_kind: Option<u8> = None;
    // Last phase seen per migrating pid (packed), for phase edges.
    let mut last_phase: std::collections::BTreeMap<u64, u8> = std::collections::BTreeMap::new();
    for r in records {
        if let Some(pk) = prev_kind {
            out.insert(feature(class::KIND_EDGE, pk as u32, r.kind as u32));
        }
        prev_kind = Some(r.kind);
        match r.kind {
            kind::MIGRATION => {
                let from = match last_phase.get(&r.a) {
                    Some(&p) => p as u32 + 1,
                    None => 0,
                };
                out.insert(feature(class::PHASE_EDGE, from, r.arg as u32));
                last_phase.insert(r.a, r.arg);
            }
            kind::ENQUEUED => {
                out.insert(feature(class::FWD_DEPTH, depth_bucket(r.arg as u32), 0));
            }
            _ => {}
        }
    }
}

/// Extract record-visible features from a parsed multi-node dump: each
/// node's stream contributes independently (kind edges are a per-kernel
/// notion), so the result is invariant under dump-section order.
pub fn extract_records(dumps: &[NodeDump]) -> FeatureSet {
    let mut out = FeatureSet::new();
    for d in dumps {
        extract_node_records(&d.records, &mut out);
    }
    out
}

/// Render a short coverage report for a feature set (the
/// `demos-trace --coverage` output).
pub fn render(set: &FeatureSet) -> String {
    let mut s = format!("{} feature(s)\n", set.len());
    for (cl, n) in set.class_counts() {
        s.push_str(&format!("  {:<18} {}\n", class_name(cl), n));
    }
    for f in set.iter() {
        s.push_str(&format!("  {f:016x}  {}\n", describe(f)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::phase;

    fn rec(at: u64, machine: u16, k: u8, a: u64, arg: u8) -> Record {
        Record {
            at,
            a,
            b: 0,
            c: 0,
            machine,
            kind: k,
            arg,
        }
    }

    #[test]
    fn feature_packs_and_unpacks() {
        let f = feature(class::FAULT_PHASE, 7, 3);
        assert_eq!(unpack(f), (class::FAULT_PHASE, 7, 3));
        assert_eq!(unpack(feature(class::KIND_EDGE, 0, 0)).0, class::KIND_EDGE);
    }

    #[test]
    fn kind_edges_are_per_machine() {
        let d0 = NodeDump {
            machine: 0,
            capacity: 8,
            total: 2,
            records: vec![
                rec(1, 0, kind::SUBMITTED, 1, 0),
                rec(2, 0, kind::ENQUEUED, 1, 0),
            ],
        };
        let d1 = NodeDump {
            machine: 1,
            capacity: 8,
            total: 1,
            records: vec![rec(3, 1, kind::SPAWNED, 9, 0)],
        };
        let set = extract_records(&[d0, d1]);
        assert!(set.contains(feature(
            class::KIND_EDGE,
            kind::SUBMITTED as u32,
            kind::ENQUEUED as u32
        )));
        // No cross-machine edge enqueued -> spawned.
        assert!(!set.contains(feature(
            class::KIND_EDGE,
            kind::ENQUEUED as u32,
            kind::SPAWNED as u32
        )));
        assert!(set.contains(feature(class::FWD_DEPTH, 0, 0)));
    }

    #[test]
    fn phase_edges_track_each_migration() {
        let recs = vec![
            rec(1, 0, kind::MIGRATION, 7, phase::FROZEN),
            rec(2, 0, kind::MIGRATION, 7, phase::OFFERED),
            rec(3, 0, kind::MIGRATION, 8, phase::FROZEN),
        ];
        let mut set = FeatureSet::new();
        extract_node_records(&recs, &mut set);
        assert!(set.contains(feature(class::PHASE_EDGE, 0, phase::FROZEN as u32)));
        assert!(set.contains(feature(
            class::PHASE_EDGE,
            phase::FROZEN as u32 + 1,
            phase::OFFERED as u32
        )));
        // The second migration contributes the start edge only once
        // (dedup), not a frozen -> frozen edge.
        assert!(!set.contains(feature(
            class::PHASE_EDGE,
            phase::FROZEN as u32 + 1,
            phase::FROZEN as u32
        )));
    }

    #[test]
    fn depth_buckets_saturate() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(3), 3);
        assert_eq!(depth_bucket(17), 4);
    }

    #[test]
    fn set_text_round_trips_and_merges() {
        let mut a: FeatureSet = [feature(class::FWD_DEPTH, 1, 0)].into_iter().collect();
        let b: FeatureSet = [
            feature(class::FWD_DEPTH, 1, 0),
            feature(class::RECOVERY_OVERLAP, 2, 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
        let back = FeatureSet::parse_text(&a.to_text()).unwrap();
        assert_eq!(back, a);
        assert!(b.is_subset(&a));
        assert_eq!(a.novel_vs(&b).len(), 0);
        assert!(FeatureSet::parse_text("zz\n").is_err());
    }

    #[test]
    fn descriptions_name_every_class() {
        for (cl, text) in [
            (class::KIND_EDGE, "kind-edge"),
            (class::PHASE_EDGE, "phase-edge"),
            (class::FWD_DEPTH, "forwarding-depth"),
            (class::FAULT_PHASE, "fault#"),
            (class::RECOVERY_OVERLAP, "recovery-overlap"),
            (class::VIOLATION, "violation#"),
        ] {
            assert!(
                describe(feature(cl, 1, 1)).contains(text),
                "class {cl}: {}",
                describe(feature(cl, 1, 1))
            );
        }
    }
}
