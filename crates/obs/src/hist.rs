//! Log-bucketed HDR-style histograms.
//!
//! The roadmap's policy tournaments and the §6 phase-cost tables need
//! tail quantiles (p99, p999) over millions of samples without keeping
//! the samples. This is the classic HDR layout: values below
//! 2^[`SUB_BITS`] are exact; above that, each power-of-two range is
//! split into 2^[`SUB_BITS`] sub-buckets, bounding the relative error of
//! any reported quantile at `1/2^SUB_BITS` (~3%). Everything is integer
//! bucket arithmetic — recording, merging and quantile extraction are
//! deterministic, so histograms can participate in replay fingerprints.

use demos_types::Duration;

/// Sub-bucket resolution: each power-of-two range has `2^SUB_BITS`
/// sub-buckets, so quantiles are exact to ~3% relative error.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two range (`2^SUB_BITS`).
const SUB: usize = 1 << SUB_BITS;

/// Number of power-of-two groups above the exact range. Group `g`
/// (1-based) holds values whose most-significant bit is `SUB_BITS+g-1`;
/// u64 values run the msb up to 63, so `63 - SUB_BITS + 1` groups.
const GROUPS: usize = 64 - SUB_BITS as usize;

/// Total bucket count: the exact range plus every group's sub-buckets.
const BUCKETS: usize = SUB + GROUPS * SUB;

/// Bucket index for a value. Values below `SUB` map exactly; above, the
/// index is formed from the msb position and the `SUB_BITS` bits below it.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let group = msb - SUB_BITS as usize + 1;
    let sub = (v >> (msb - SUB_BITS as usize)) as usize & (SUB - 1);
    group * SUB + sub
}

/// Largest value that maps to bucket `i` — the value a quantile reports,
/// so reported quantiles never understate the true sample.
fn bucket_max(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let group = i / SUB;
    let sub = (i % SUB) as u128;
    // Bucket covers [(SUB+sub) << (group-1), (SUB+sub+1) << (group-1));
    // the top bucket's bound exceeds u64, hence the u128 intermediate.
    let bound = ((SUB as u128 + sub + 1) << (group - 1)) - 1;
    bound.min(u64::MAX as u128) as u64
}

/// A mergeable log-linear histogram of `u64` values (microseconds, bytes,
/// counts — the unit is the caller's).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a virtual-time duration (as microseconds).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_micros());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean (integer division; zero when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket holding
    /// the `ceil(q·count)`-th smallest sample, clamped to the exact
    /// observed min/max so p0 and p100 are precise. Bucket walks and
    /// integer bounds only — deterministic across platforms.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_max(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another histogram into this one (bucket-wise add), so
    /// per-machine histograms roll up into cluster-wide tails.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// `(upper_bound, count)` for every non-empty bucket, ascending — the
    /// export shape for dumps and the `demos-trace` percentile tables.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_max(i), n))
            .collect()
    }

    /// One-line percentile summary: `n=..  p50=..  p90=..  p99=..  p999=..  max=..`.
    pub fn summary(&self) -> String {
        format!(
            "n={}  p50={}  p90={}  p99={}  p999={}  max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for v in 0..32u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_max(v as usize), v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn buckets_partition_the_u64_line() {
        // Every bucket's max is one less than the next bucket's smallest
        // member: no value falls between buckets or into two of them.
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_of(v);
            assert!(v <= bucket_max(i), "{v} above its bucket max");
            if i > 0 {
                assert!(v > bucket_max(i - 1), "{v} overlaps previous bucket");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 123_456, 999_999] {
            h.record(v);
            let reported = h.quantile(1.0);
            assert!(reported >= v);
            assert!(
                (reported - v) as f64 <= v as f64 / 32.0 + 1.0,
                "{reported} too far above {v}"
            );
            let mut f = Histogram::new();
            f.record(v);
            h = f;
        }
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert_eq!(h.quantile(0.0), 17, "p0 clamps to min");
        assert_eq!(h.quantile(1.0), 17_000, "p100 clamps to max");
        assert!(h.p50() >= 8_400 && h.p50() <= 8_800, "{}", h.p50());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..500u64 {
            a.record(i * 3);
            whole.record(i * 3);
        }
        for i in 0..500u64 {
            b.record(i * 7 + 1);
            whole.record(i * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn summary_contains_percentile_keys() {
        let mut h = Histogram::new();
        h.record(10);
        let s = h.summary();
        for key in ["p50=", "p90=", "p99=", "p999="] {
            assert!(s.contains(key), "{s}");
        }
    }
}
